//! Satellite (a) regression test: request handling must not spawn threads.
//!
//! The seed implementation spawned a disconnect-watcher thread per
//! *request*; the fix is one watcher per *connection*. The observable
//! contract: across 1000 sequential requests on one connection, the
//! process thread count stays flat. This test lives in its own integration
//! binary so no sibling test's servers perturb the count.

use psens_microdata::JsonValue;
use psens_server::client::Client;
use psens_server::{start, ServerConfig};
use std::time::Duration;

fn threads_now() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

#[test]
fn thread_count_stays_flat_across_1k_sequential_requests() {
    let Some(_) = threads_now() else {
        // No procfs (non-Linux): the assertion has nothing to read.
        return;
    };
    let handle = start(ServerConfig::default()).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_io_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut params = JsonValue::object();
    params.set("ms", JsonValue::Int(0));

    // Warm-up: connection thread + its watcher are up and steady.
    for _ in 0..10 {
        client.call_ok("sleep", params.clone()).unwrap();
    }
    let before = threads_now().unwrap();
    for _ in 0..1000 {
        client.call_ok("sleep", params.clone()).unwrap();
    }
    // A one-shot sample can catch a transient thread mid-teardown (another
    // test binary's runtime, a watcher unwinding). Poll with backoff: a
    // per-request leak is 1000 threads and never settles; a transient is
    // gone within the deadline.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut delay = Duration::from_millis(5);
    let mut after = threads_now().unwrap();
    while after > before && std::time::Instant::now() < deadline {
        std::thread::sleep(delay);
        delay = (delay * 2).min(Duration::from_millis(100));
        after = threads_now().unwrap();
    }
    assert!(
        after <= before,
        "thread count grew across sequential requests and never settled: \
         {before} -> {after} (a per-request thread is being spawned)"
    );
}
