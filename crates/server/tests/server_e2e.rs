//! End-to-end tests: a real server on a loopback port, real clients over
//! TCP.
//!
//! The cancellation tests are written to be deterministic-by-margin: they
//! assert lower bounds (serialization really waited) and generous upper
//! bounds (a freed slot really freed), never exact timings.

use psens_datasets::fixtures::adult_fixture;
use psens_microdata::JsonValue;
use psens_server::client::{register_params, Client};
use psens_server::{start, ServerConfig, ServerHandle};
use std::time::{Duration, Instant};

fn server(max_concurrent: usize) -> ServerHandle {
    start(ServerConfig {
        listen: "127.0.0.1:0".to_owned(),
        max_concurrent,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

fn registered_server(max_concurrent: usize) -> (ServerHandle, Client) {
    let handle = server(max_concurrent);
    let mut client = Client::connect(handle.addr()).unwrap();
    let fixture = adult_fixture(21, 120);
    client
        .call_ok(
            "register",
            register_params("adult", &fixture.csv, &fixture.spec),
        )
        .unwrap();
    (handle, client)
}

fn sleep_params(ms: i64) -> JsonValue {
    let mut params = JsonValue::object();
    params.set("ms", JsonValue::Int(ms));
    params
}

fn anonymize_params(extra: &[(&str, JsonValue)]) -> JsonValue {
    let mut params = JsonValue::object();
    params.set("dataset", JsonValue::Str("adult".into()));
    params.set("p", JsonValue::Int(2));
    params.set("k", JsonValue::Int(3));
    params.set("ts", JsonValue::Int(10));
    for (key, value) in extra {
        params.set(*key, value.clone());
    }
    params
}

#[test]
fn register_check_analyze_query_roundtrip() {
    let (_handle, mut client) = registered_server(2);

    let check = client
        .call_ok("check", {
            let mut p = JsonValue::object();
            p.set("dataset", JsonValue::Str("adult".into()));
            p.set("p", JsonValue::Int(2));
            p.set("k", JsonValue::Int(3));
            p
        })
        .unwrap();
    assert_eq!(check.require("rows").unwrap().as_u64().unwrap(), 120);
    assert!(check.require("max_k").unwrap().as_u64().unwrap() >= 1);
    check.require("satisfied").unwrap().as_bool().unwrap();

    let analyze = client
        .call_ok("analyze", {
            let mut p = JsonValue::object();
            p.set("dataset", JsonValue::Str("adult".into()));
            p.set("p", JsonValue::Int(2));
            p
        })
        .unwrap();
    assert!(analyze.require("max_p").unwrap().as_u64().unwrap() >= 1);
    analyze.require("satisfiable").unwrap().as_bool().unwrap();
    analyze
        .require("identity_risk")
        .unwrap()
        .require("uniques")
        .unwrap()
        .as_u64()
        .unwrap();

    let query = client
        .call_ok("query", {
            let mut p = JsonValue::object();
            p.set("dataset", JsonValue::Str("adult".into()));
            p.set("sql", JsonValue::Str("SELECT COUNT(*) FROM data".into()));
            p
        })
        .unwrap();
    assert_eq!(query.require("rows").unwrap().as_u64().unwrap(), 1);

    let stats = client.call_ok("stats", JsonValue::object()).unwrap();
    let datasets = stats.require("datasets").unwrap().as_array().unwrap();
    assert_eq!(datasets.len(), 1);
    assert_eq!(
        datasets[0].require("name").unwrap().as_str().unwrap(),
        "adult"
    );
}

#[test]
fn register_errors_are_typed() {
    let (_handle, mut client) = registered_server(2);
    let fixture = adult_fixture(21, 10);
    let err = client
        .call_ok(
            "register",
            register_params("adult", &fixture.csv, &fixture.spec),
        )
        .unwrap_err();
    assert!(err.starts_with("register: conflict:"), "{err}");

    let err = client
        .call_ok("check", {
            let mut p = JsonValue::object();
            p.set("dataset", JsonValue::Str("nope".into()));
            p
        })
        .unwrap_err();
    assert!(err.starts_with("check: not_found:"), "{err}");

    let err = client
        .call_ok("frobnicate", JsonValue::object())
        .unwrap_err();
    assert!(err.contains("bad_request"), "{err}");
}

#[test]
fn anonymize_warm_store_replays_verdicts() {
    let (_handle, mut client) = registered_server(2);

    let cold = client.call_ok("anonymize", anonymize_params(&[])).unwrap();
    assert!(!cold.require("warm").unwrap().as_bool().unwrap());
    let warm = client.call_ok("anonymize", anonymize_params(&[])).unwrap();
    assert!(warm.require("warm").unwrap().as_bool().unwrap());

    // The verdict object is byte-identical; only the execution-side fields
    // (warm flag, cache counters) differ.
    assert_eq!(
        cold.require("verdict").unwrap().to_json(),
        warm.require("verdict").unwrap().to_json()
    );
    let cold_stats = cold.require("search").unwrap();
    let warm_stats = warm.require("search").unwrap();
    let warm_replays = warm_stats.require("cache_hits").unwrap().as_u64().unwrap()
        + warm_stats
            .require("cache_inferred")
            .unwrap()
            .as_u64()
            .unwrap();
    assert!(
        warm_replays > 0,
        "second identical request must replay store verdicts"
    );
    assert!(
        warm_stats
            .require("nodes_evaluated")
            .unwrap()
            .as_u64()
            .unwrap()
            < cold_stats
                .require("nodes_evaluated")
                .unwrap()
                .as_u64()
                .unwrap(),
        "warm run must re-check fewer nodes than the cold run"
    );

    // no_cache opts out of the pool but reaches the same verdict.
    let uncached = client
        .call_ok(
            "anonymize",
            anonymize_params(&[("no_cache", JsonValue::Bool(true))]),
        )
        .unwrap();
    assert!(!uncached.require("warm").unwrap().as_bool().unwrap());
    assert_eq!(
        cold.require("verdict").unwrap().to_json(),
        uncached.require("verdict").unwrap().to_json()
    );

    // Different parameters get their own store: no cross-configuration
    // replay, warm=false on first use.
    let other = client
        .call_ok("anonymize", anonymize_params(&[("k", JsonValue::Int(2))]))
        .unwrap();
    assert!(!other.require("warm").unwrap().as_bool().unwrap());
}

#[test]
fn anonymize_budget_interruption_is_reported_not_fatal() {
    let (_handle, mut client) = registered_server(2);
    let result = client
        .call_ok(
            "anonymize",
            anonymize_params(&[("max_nodes", JsonValue::Int(0))]),
        )
        .unwrap();
    let verdict = result.require("verdict").unwrap();
    assert_eq!(
        verdict.require("termination").unwrap().as_str().unwrap(),
        "node_budget_exhausted"
    );
    // The connection survives an interrupted request.
    let stats = client.call_ok("stats", JsonValue::object()).unwrap();
    stats.require("requests_served").unwrap().as_u64().unwrap();
}

/// The headline interruption-path regression: one client hanging up must
/// cancel *its own* request only. With a single admission slot, a dropped
/// client's long sleep must free the slot early; a second client's request
/// then completes far sooner than the abandoned sleep would have allowed.
#[test]
fn disconnect_cancels_only_its_own_request() {
    let (_handle, mut live) = registered_server(1);

    // Doomed client: starts a 30s sleep, then vanishes without reading the
    // response.
    let mut doomed = Client::connect(_handle.addr()).unwrap();
    doomed.send("sleep", sleep_params(30_000)).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    drop(doomed);

    // The live client's request needs the single slot the doomed sleep is
    // holding. If the disconnect did not cancel the sleep, this would wait
    // ~30s; if cancellation leaked across requests (the process-global-token
    // bug), the live request would come back `interrupted` instead of ok.
    let start = Instant::now();
    let result = live.call_ok("sleep", sleep_params(50)).unwrap();
    assert_eq!(result.require("slept_ms").unwrap().as_u64().unwrap(), 50);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "doomed client's slot was not freed: waited {:?}",
        start.elapsed()
    );

    // And the server is still fully operational for real work.
    let check = live
        .call_ok("check", {
            let mut p = JsonValue::object();
            p.set("dataset", JsonValue::Str("adult".into()));
            p
        })
        .unwrap();
    assert_eq!(check.require("rows").unwrap().as_u64().unwrap(), 120);
}

#[test]
fn admission_gate_bounds_concurrency() {
    let handle = server(1);
    let addr = handle.addr();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let result = client.call_ok("sleep", sleep_params(200)).unwrap();
                assert_eq!(result.require("slept_ms").unwrap().as_u64().unwrap(), 200);
            });
        }
    });
    // One slot: the two 200ms sleeps cannot have overlapped.
    assert!(
        start.elapsed() >= Duration::from_millis(380),
        "sleeps overlapped despite max_concurrent=1: {:?}",
        start.elapsed()
    );
}

#[test]
fn shutdown_fans_out_to_inflight_requests() {
    let mut handle = server(2);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.send("sleep", sleep_params(30_000)).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let start = Instant::now();
    handle.shutdown();
    // The in-flight sleep observes the shutdown through its child token and
    // answers `interrupted` instead of finishing the 30s.
    let response = client.recv().unwrap();
    assert!(!response.require("ok").unwrap().as_bool().unwrap());
    let code = response
        .require("error")
        .unwrap()
        .require("code")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    assert_eq!(code, "interrupted");
    assert!(start.elapsed() < Duration::from_secs(10));

    // New work is refused while shutting down.
    let err = client.call_ok("sleep", sleep_params(10)).unwrap_err();
    assert!(
        err.contains("shutting_down") || err.contains("transport"),
        "{err}"
    );
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (_handle, mut client) = registered_server(2);
    let mut ids = Vec::new();
    for ms in [30, 10, 20] {
        ids.push(client.send("sleep", sleep_params(ms)).unwrap());
    }
    for id in ids {
        let response = client.recv().unwrap();
        assert_eq!(response.require("id").unwrap().as_i64().unwrap(), id);
        assert!(response.require("ok").unwrap().as_bool().unwrap());
    }
}
