//! Protocol fuzz (satellite c): arbitrary bytes fired at a live server —
//! whole, trickled one byte at a time, or framed around garbage payloads —
//! must never panic the server or hang the client. Every input ends in a
//! protocol error response or a clean close, and the server stays healthy
//! for the next well-formed request.
//!
//! One shared server serves the whole fuzz run (boot once, hammer many);
//! `max_frame_bytes` is kept small so random length prefixes routinely
//! exercise the oversized-drain path too.

use proptest::prelude::*;
use psens_microdata::JsonValue;
use psens_server::client::Client;
use psens_server::{start, ServerConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

const IO_TIMEOUT: Duration = Duration::from_secs(10);

static ADDR: OnceLock<SocketAddr> = OnceLock::new();

fn fuzz_addr() -> SocketAddr {
    *ADDR.get_or_init(|| {
        let handle = start(ServerConfig {
            max_frame_bytes: 64 * 1024,
            // A torn random frame must not pin a connection thread for long.
            stall_timeout_ms: 2_000,
            ..ServerConfig::default()
        })
        .expect("bind loopback");
        let addr = handle.addr();
        // Deliberately leaked: the server must outlive every proptest case
        // in this binary; the OS reclaims it at process exit.
        std::mem::forget(handle);
        addr
    })
}

/// After any fuzz input, the server must still answer a clean request.
fn assert_still_serving(addr: SocketAddr) {
    let mut client = Client::connect(addr).expect("server must still accept");
    client.set_io_timeout(Some(IO_TIMEOUT)).unwrap();
    let health = client
        .call_ok("health", JsonValue::object())
        .expect("server must still answer health");
    health.require("requests_served").unwrap().as_u64().unwrap();
}

/// Reads until the server closes; panics on a hang (read timeout).
fn drain_to_close(stream: &mut TcpStream) {
    let mut sink = [0u8; 4096];
    loop {
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(e) => panic!("connection neither answered nor closed: {e}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    /// Raw garbage, written in arbitrary small chunks (the TrickleReader
    /// shape: worst case one byte per write), then half-closed.
    #[test]
    fn arbitrary_bytes_get_an_answer_or_a_clean_close(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..16,
    ) {
        let addr = fuzz_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
        for piece in payload.chunks(chunk) {
            // The server may already have rejected and closed mid-write;
            // that is a legal outcome, not a fuzz failure.
            if stream.write_all(piece).is_err() {
                break;
            }
        }
        // Half-close: the server sees EOF instead of a stalled frame, so
        // every code path must resolve promptly.
        let _ = stream.shutdown(Shutdown::Write);
        drain_to_close(&mut stream);
        assert_still_serving(addr);
    }

    /// Correctly framed garbage payloads: the framing layer accepts them,
    /// the JSON/dispatch layers must answer a typed protocol error (or
    /// close after a response) without ever killing the server.
    #[test]
    fn framed_garbage_payloads_get_protocol_errors(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let addr = fuzz_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
        stream
            .write_all(&(payload.len() as u32).to_be_bytes())
            .unwrap();
        stream.write_all(&payload).unwrap();
        let _ = stream.shutdown(Shutdown::Write);
        drain_to_close(&mut stream);
        assert_still_serving(addr);
    }

    /// Valid JSON value, wrong shape (not a request object): must be
    /// answered with `bad_request` on a connection that then closes
    /// cleanly at EOF.
    #[test]
    fn well_formed_json_of_the_wrong_shape_is_answered(
        n in -1_000_000_000i64..1_000_000_000,
    ) {
        let addr = fuzz_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
        let body = format!("[{n}, {n}]");
        stream.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
        stream.write_all(body.as_bytes()).unwrap();
        let _ = stream.shutdown(Shutdown::Write);
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        let text = String::from_utf8_lossy(&response);
        prop_assert!(
            text.contains("bad_request") || text.contains("missing"),
            "expected a typed protocol error, got: {text:?}"
        );
        assert_still_serving(addr);
    }
}
