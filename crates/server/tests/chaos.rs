//! Chaos differential harness: seeded fault plans against a live server.
//!
//! The oracle is the verdict-equivalence contract from DESIGN §14: the
//! `verdict` object of an `anonymize` response is a pure function of
//! (dataset, p, k, ts). Here that contract is asserted *under faults* —
//! dropped responses, torn frames, injected worker panics, pre-dispatch
//! connection kills, delays, and probabilistic frame loss. Degradation must
//! be fail-closed: a request either returns the byte-identical verdict or a
//! typed error; never a silently different answer, never a hung connection.
//!
//! Every test drives the real server over real loopback TCP with the
//! retrying client (idempotent request ids), and finishes by asserting the
//! gate drained: `health` must report zero executing and zero queued work.

use psens_datasets::fixtures::adult_fixture;
use psens_microdata::JsonValue;
use psens_server::client::{register_params, Client, RetryPolicy, RetryStats};
use psens_server::{start, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Generous bound on any single client read/write: a fault that hangs a
/// connection turns into a visible transport error, not a stuck test.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 6,
        base_delay_ms: 5,
        max_delay_ms: 100,
        seed,
    }
}

fn chaos_server() -> (ServerHandle, Client) {
    let handle = start(ServerConfig {
        max_concurrent: 2,
        enable_inject: true,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_io_timeout(Some(IO_TIMEOUT)).unwrap();
    let fixture = adult_fixture(21, 80);
    client
        .call_ok(
            "register",
            register_params("adult", &fixture.csv, &fixture.spec),
        )
        .unwrap();
    (handle, client)
}

fn anonymize_params() -> JsonValue {
    let mut params = JsonValue::object();
    params.set("dataset", JsonValue::Str("adult".into()));
    params.set("p", JsonValue::Int(2));
    params.set("k", JsonValue::Int(3));
    params.set("ts", JsonValue::Int(10));
    params
}

fn sleep_params(ms: i64) -> JsonValue {
    let mut params = JsonValue::object();
    params.set("ms", JsonValue::Int(ms));
    params
}

fn inject(client: &mut Client, plan_text: &str) {
    let plan = JsonValue::parse(plan_text).expect("test plan must be valid JSON");
    let mut params = JsonValue::object();
    params.set("plan", plan);
    let result = client.call_ok("inject", params).unwrap();
    assert!(result.require("installed").unwrap().as_bool().unwrap());
}

fn clear_faults(client: &mut Client) {
    let mut params = JsonValue::object();
    params.set("clear", JsonValue::Bool(true));
    client.call_ok("inject", params).unwrap();
}

fn assert_gate_drained(client: &mut Client, context: &str) {
    // Clients observe their responses before the gate decrements its
    // executing counter, so a one-shot read here is a race. Poll instead:
    // the gate must drain to idle within the timeout, deterministically.
    client
        .wait_healthy(IO_TIMEOUT, |health| {
            health.require("executing").unwrap().as_i64().unwrap() == 0
                && health.require("queued").unwrap().as_i64().unwrap() == 0
        })
        .unwrap_or_else(|e| panic!("{context}: gate never drained: {e}"));
}

/// The tentpole assertion: for EVERY seeded fault plan, concurrent retrying
/// clients either obtain the baseline verdict byte-for-byte or a typed
/// error — and the server drains back to idle.
#[test]
fn differential_oracle_holds_under_every_fault_plan() {
    let (handle, mut control) = chaos_server();
    let baseline = control
        .call_ok("anonymize", anonymize_params())
        .unwrap()
        .require("verdict")
        .unwrap()
        .to_json();

    // (name, plan, max tolerated request failures across 3 clients × 4 reqs)
    let plans: &[(&str, &str, u64)] = &[
        (
            "exec-panic",
            r#"{"seed":3,"rules":[{"site":"exec","op":"anonymize","action":"panic","first":2}]}"#,
            // A contained panic answers `internal`; not transport-retried.
            2,
        ),
        (
            "exec-slow-dataset",
            r#"{"seed":3,"rules":[{"site":"exec","op":"anonymize","action":"delay_ms","ms":40,"every":2}]}"#,
            0,
        ),
        (
            "write-drop",
            r#"{"seed":5,"rules":[{"site":"write_response","op":"anonymize","action":"drop","first":2}]}"#,
            0,
        ),
        (
            "write-truncate",
            r#"{"seed":5,"rules":[{"site":"write_response","op":"anonymize","action":"truncate","first":2}]}"#,
            0,
        ),
        (
            "write-delay",
            r#"{"seed":5,"rules":[{"site":"write_response","op":"anonymize","action":"delay_ms","ms":30,"every":3}]}"#,
            0,
        ),
        (
            "predispatch-drop",
            r#"{"seed":7,"rules":[{"site":"pre_dispatch","op":"anonymize","action":"drop","first":2}]}"#,
            0,
        ),
        (
            "predispatch-delay",
            r#"{"seed":7,"rules":[{"site":"pre_dispatch","op":"anonymize","action":"delay_ms","ms":20,"every":3}]}"#,
            0,
        ),
        (
            "probabilistic-drop",
            r#"{"seed":11,"rules":[{"site":"write_response","op":"anonymize","action":"drop","prob_pct":30}]}"#,
            // P(7 consecutive dropped attempts) ≈ 0.02% per request; one
            // tolerated so a cosmically unlucky seed change stays honest.
            1,
        ),
    ];

    for (name, plan, max_failures) in plans {
        inject(&mut control, plan);
        let addr = handle.addr();
        let (verdicts, failures) = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..3)
                .map(|c| {
                    let baseline = &baseline;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        client.set_io_timeout(Some(IO_TIMEOUT)).unwrap();
                        let policy = retry_policy(0x5eed + c as u64);
                        let mut stats = RetryStats::default();
                        let mut verdicts = 0u64;
                        let mut failures = 0u64;
                        for _ in 0..4 {
                            match client.call_retry(
                                "anonymize",
                                anonymize_params(),
                                &policy,
                                &mut stats,
                            ) {
                                Ok(result) => {
                                    let verdict = result.require("verdict").unwrap().to_json();
                                    assert_eq!(
                                        &verdict, baseline,
                                        "{name}: verdict diverged under faults"
                                    );
                                    verdicts += 1;
                                }
                                Err(e) => {
                                    // Failures must be typed, never silent.
                                    assert!(
                                        e.contains("internal")
                                            || e.contains("transport")
                                            || e.contains("busy"),
                                        "{name}: unexpected failure class: {e}"
                                    );
                                    failures += 1;
                                }
                            }
                        }
                        (verdicts, failures)
                    })
                })
                .collect();
            let mut verdicts = 0u64;
            let mut failures = 0u64;
            for worker in workers {
                let (v, f) = worker.join().expect("chaos client panicked");
                verdicts += v;
                failures += f;
            }
            (verdicts, failures)
        });
        assert!(
            failures <= *max_failures,
            "{name}: {failures} failed requests (allowed {max_failures})"
        );
        assert!(verdicts > 0, "{name}: no request produced a verdict");
        clear_faults(&mut control);
        assert_gate_drained(&mut control, name);
    }

    // The control connection itself survived every storm.
    let after = control
        .call_ok("anonymize", anonymize_params())
        .unwrap()
        .require("verdict")
        .unwrap()
        .to_json();
    assert_eq!(after, baseline);
}

/// Overload protection: with one slot and a zero-depth queue, surplus
/// clients are shed with `busy` + `retry_after_ms` and drain via retries —
/// nobody errors out, nobody hangs, and the shed is counted honestly.
#[test]
fn overload_sheds_busy_and_retries_drain() {
    let handle = start(ServerConfig {
        max_concurrent: 1,
        queue_depth: 0,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.addr();
    let stats = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.set_io_timeout(Some(IO_TIMEOUT)).unwrap();
                    let policy = RetryPolicy {
                        max_retries: 50,
                        base_delay_ms: 10,
                        max_delay_ms: 200,
                        seed: c as u64 + 1,
                    };
                    let mut stats = RetryStats::default();
                    let result = client
                        .call_retry("sleep", sleep_params(150), &policy, &mut stats)
                        .expect("retries must eventually drain the backlog");
                    assert_eq!(result.require("slept_ms").unwrap().as_u64().unwrap(), 150);
                    stats
                })
            })
            .collect();
        let mut total = RetryStats::default();
        for worker in workers {
            total.absorb(&worker.join().expect("load client panicked"));
        }
        total
    });
    assert!(
        stats.busy_retries > 0,
        "four clients against one slot with no queue must observe `busy`"
    );
    assert_eq!(stats.give_ups, 0);

    let mut control = Client::connect(addr).unwrap();
    control.set_io_timeout(Some(IO_TIMEOUT)).unwrap();
    let health = control.call_ok("health", JsonValue::object()).unwrap();
    assert!(
        health.require("shed_total").unwrap().as_u64().unwrap() > 0,
        "server must count the sheds it issued"
    );
    assert_gate_drained(&mut control, "overload");
}

/// A client that sends half a length prefix and goes silent (slow-loris) is
/// reaped after the stall timeout; the socket closes and the reap is
/// counted. An idle connection with *zero* bytes sent is NOT reaped here
/// (idle reaping is disabled by default), so keep-alive stays legal.
#[test]
fn stalled_prefix_is_reaped_and_counted() {
    let handle = start(ServerConfig {
        stall_timeout_ms: 150,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
    raw.write_all(&[0, 0]).unwrap(); // half a length prefix, then silence
    let mut buf = [0u8; 8];
    match raw.read(&mut buf) {
        Ok(0) => {} // server closed: reaped
        Ok(n) => panic!("server answered {n} bytes to half a prefix"),
        Err(e) => panic!("expected clean close, got {e}"),
    }
    let mut control = Client::connect(handle.addr()).unwrap();
    control.set_io_timeout(Some(IO_TIMEOUT)).unwrap();
    // The socket close is observable before the reaper bumps its counter;
    // poll health until the count lands instead of asserting a one-shot read.
    control
        .wait_healthy(IO_TIMEOUT, |health| {
            health.require("stall_reaped").unwrap().as_u64().unwrap() >= 1
        })
        .expect("the reap must become visible in health");
}

/// Idle reaping, when enabled, closes connections that never send a byte.
#[test]
fn idle_connection_is_reaped_when_enabled() {
    let handle = start(ServerConfig {
        idle_timeout_ms: 150,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
    let mut buf = [0u8; 8];
    match raw.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("server volunteered {n} bytes to an idle client"),
        Err(e) => panic!("expected clean close, got {e}"),
    }
    let mut control = Client::connect(handle.addr()).unwrap();
    control.set_io_timeout(Some(IO_TIMEOUT)).unwrap();
    control
        .wait_healthy(IO_TIMEOUT, |health| {
            health.require("idle_reaped").unwrap().as_u64().unwrap() >= 1
        })
        .expect("the idle reap must become visible in health");
}

/// Satellite (b) end-to-end: an oversized frame is refused with a typed
/// `frame_too_large` error — the payload is drained, never buffered — and
/// the SAME connection keeps working afterwards.
#[test]
fn oversized_frame_is_refused_and_connection_survives() {
    let handle = start(ServerConfig {
        max_frame_bytes: 256,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_io_timeout(Some(IO_TIMEOUT)).unwrap();
    let mut params = JsonValue::object();
    params.set("pad", JsonValue::Str("x".repeat(4096)));
    let err = client.call_ok("sleep", params).unwrap_err();
    assert!(err.contains("frame_too_large"), "{err}");
    // Resynced: the next well-formed request on this connection succeeds.
    let result = client.call_ok("sleep", sleep_params(1)).unwrap();
    assert_eq!(result.require("slept_ms").unwrap().as_u64().unwrap(), 1);
    let health = client.call_ok("health", JsonValue::object()).unwrap();
    assert!(
        health
            .require("frames_too_large")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );
}

/// `inject` is an attack surface if left open: a server started without
/// `--enable-inject` must refuse plans outright.
#[test]
fn inject_is_refused_unless_enabled() {
    let handle = start(ServerConfig::default()).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_io_timeout(Some(IO_TIMEOUT)).unwrap();
    let mut params = JsonValue::object();
    params.set(
        "plan",
        JsonValue::parse(r#"{"rules":[{"site":"exec","action":"panic"}]}"#).unwrap(),
    );
    let err = client.call_ok("inject", params).unwrap_err();
    assert!(err.contains("disabled"), "{err}");
}

/// A malformed fault plan must be rejected without installing anything.
#[test]
fn malformed_plan_is_rejected_wholesale() {
    let (_handle, mut client) = chaos_server();
    let mut params = JsonValue::object();
    params.set(
        "plan",
        JsonValue::parse(r#"{"rules":[{"site":"nowhere","action":"panic"}]}"#).unwrap(),
    );
    let err = client.call_ok("inject", params).unwrap_err();
    assert!(err.contains("bad_request"), "{err}");
    let health = client.call_ok("health", JsonValue::object()).unwrap();
    assert_eq!(
        health.require("faults").unwrap().to_json(),
        "null",
        "a refused plan must not be installed"
    );
}
