//! Crash chaos for the incremental update path: a server killed mid
//! delta-stream must recover the journaled prefix verbatim and, after the
//! client resumes the remaining batches (using `deltas_applied` as the
//! resume cursor), converge to byte-identical verdicts with a server that
//! lived through the whole stream uninterrupted.
//!
//! The `update`/`watch` contract is exercised end to end on the way:
//! net-zero churn must keep warm verdicts and republish nothing, and a
//! table collapse must flip the watched verdict exactly once.

use psens_datasets::fixtures::adult_fixture;
use psens_microdata::JsonValue;
use psens_server::client::{register_params, Client};
use psens_server::{start, ServerConfig, ServerHandle};
use std::path::{Path, PathBuf};
use std::time::Duration;

const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Fresh scratch dir per test, safe under parallel test execution.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psens-inc-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stateful_server(dir: &Path) -> ServerHandle {
    start(ServerConfig {
        state_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

fn stateless_server() -> ServerHandle {
    start(ServerConfig::default()).expect("bind loopback")
}

fn client_for(handle: &ServerHandle) -> Client {
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_io_timeout(Some(IO_TIMEOUT)).unwrap();
    client
}

fn anonymize_params() -> JsonValue {
    let mut params = JsonValue::object();
    params.set("dataset", JsonValue::Str("adult".into()));
    params.set("p", JsonValue::Int(2));
    params.set("k", JsonValue::Int(3));
    params.set("ts", JsonValue::Int(10));
    params
}

/// The fixture's data rows as rendered cell strings (header skipped). The
/// Adult fixture emits plain unquoted cells, so a comma split is exact.
fn csv_rows(csv: &str) -> Vec<Vec<String>> {
    csv.lines()
        .skip(1)
        .filter(|l| !l.is_empty())
        .map(|l| l.split(',').map(str::to_owned).collect())
        .collect()
}

fn update_params(appends: &[Vec<String>], deletes: &[usize]) -> JsonValue {
    let mut params = JsonValue::object();
    params.set("dataset", JsonValue::Str("adult".into()));
    if !appends.is_empty() {
        params.set(
            "appends",
            JsonValue::Array(
                appends
                    .iter()
                    .map(|row| {
                        JsonValue::Array(row.iter().map(|c| JsonValue::Str(c.clone())).collect())
                    })
                    .collect(),
            ),
        );
    }
    if !deletes.is_empty() {
        params.set(
            "deletes",
            JsonValue::Array(deletes.iter().map(|&d| JsonValue::Int(d as i64)).collect()),
        );
    }
    params
}

/// A deterministic 12-batch stream over the 80-row fixture: deletes at
/// small indices, appends recycled from the original CSV. Every batch is
/// valid against the evolving table (row count never drops below 70).
fn delta_plan(rows: &[Vec<String>]) -> Vec<(Vec<Vec<String>>, Vec<usize>)> {
    (0..12)
        .map(|i| match i % 4 {
            0 => (vec![], vec![0, 1]),
            1 => (vec![rows[i].clone(), rows[i + 7].clone()], vec![]),
            2 => (vec![rows[i].clone()], vec![2]),
            _ => (vec![], vec![3]),
        })
        .collect()
}

fn apply_batch(client: &mut Client, batch: &(Vec<Vec<String>>, Vec<usize>)) -> JsonValue {
    client
        .call_ok("update", update_params(&batch.0, &batch.1))
        .unwrap()
}

/// kill -9 mid-delta: the victim applies a prefix of the stream, dies
/// without a snapshot and with a torn delta record at the journal tail.
/// After restart the journaled prefix must have replayed exactly, and
/// resuming from `deltas_applied` must converge to the same verdict as an
/// uninterrupted control server.
#[test]
fn mid_stream_crash_recovers_prefix_and_converges() {
    let fixture = adult_fixture(21, 80);
    let rows = csv_rows(&fixture.csv);
    let plan = delta_plan(&rows);

    // Control: one uninterrupted life through the full stream.
    let control_verdict = {
        let handle = stateless_server();
        let mut client = client_for(&handle);
        client
            .call_ok(
                "register",
                register_params("adult", &fixture.csv, &fixture.spec),
            )
            .unwrap();
        for batch in &plan {
            apply_batch(&mut client, batch);
        }
        let result = client.call_ok("anonymize", anonymize_params()).unwrap();
        result.require("verdict").unwrap().to_json()
    };

    // Victim: crash after 7 of 12 batches.
    let dir = scratch("mid-stream");
    let rows_after_prefix;
    {
        let mut handle = stateful_server(&dir);
        let mut client = client_for(&handle);
        client
            .call_ok(
                "register",
                register_params("adult", &fixture.csv, &fixture.spec),
            )
            .unwrap();
        let mut last_rows = 0;
        for batch in &plan[..7] {
            last_rows = apply_batch(&mut client, batch)
                .require("rows")
                .unwrap()
                .as_u64()
                .unwrap();
        }
        rows_after_prefix = last_rows;
        drop(client);
        handle.shutdown();
    }
    // The crash: no snapshot survived, and the 8th delta was torn mid-append.
    let _ = std::fs::remove_file(dir.join("pools.snap"));
    let journal = dir.join("registry.journal");
    let mut bytes = std::fs::read(&journal).unwrap();
    bytes.extend_from_slice(br#"{"kind":"delta","dataset":"adult","appen"#);
    std::fs::write(&journal, &bytes).unwrap();

    // Restart: the 7-delta prefix replays; the torn tail is reported.
    let handle = stateful_server(&dir);
    let recovery = handle.recovery();
    assert_eq!(recovery.datasets, 1);
    assert_eq!(recovery.deltas, 7, "journaled delta prefix must replay");
    assert!(
        recovery.warnings.iter().any(|w| w.contains("torn")),
        "torn tail must be reported: {:?}",
        recovery.warnings
    );

    let mut client = client_for(&handle);
    let stats = client.call_ok("stats", JsonValue::object()).unwrap();
    let datasets = stats
        .require("datasets")
        .unwrap()
        .as_array()
        .unwrap()
        .to_vec();
    assert_eq!(datasets.len(), 1);
    let resumed_from = datasets[0]
        .require("deltas_applied")
        .unwrap()
        .as_u64()
        .unwrap() as usize;
    assert_eq!(resumed_from, 7, "the resume cursor is the replayed count");
    assert_eq!(
        datasets[0].require("rows").unwrap().as_u64().unwrap(),
        rows_after_prefix,
        "the recovered table must match the last acknowledged update"
    );

    // Resume exactly where the journal left off and finish the stream.
    for batch in &plan[resumed_from..] {
        apply_batch(&mut client, batch);
    }
    let result = client.call_ok("anonymize", anonymize_params()).unwrap();
    assert_eq!(
        result.require("verdict").unwrap().to_json(),
        control_verdict,
        "crash + replay + resume must converge to the uninterrupted verdict"
    );
}

/// Watch + selective invalidation end to end: net-zero churn keeps warm
/// verdicts and republishes nothing; collapsing the table flips the
/// watched verdict exactly once; re-watching an existing spec is
/// idempotent.
#[test]
fn watch_republishes_only_on_verdict_change() {
    let fixture = adult_fixture(21, 80);
    let rows = csv_rows(&fixture.csv);
    let handle = stateless_server();
    let mut client = client_for(&handle);
    client
        .call_ok(
            "register",
            register_params("adult", &fixture.csv, &fixture.spec),
        )
        .unwrap();

    // Register the watch (warming its verdict pool) and pin the baseline.
    let mut watch_params = anonymize_params();
    watch_params.set("model", JsonValue::Str("psens-k".into()));
    let watched = client.call_ok("watch", watch_params.clone()).unwrap();
    assert!(watched.require("registered").unwrap().as_bool().unwrap());
    let baseline = watched.require("verdict").unwrap().to_json();

    let again = client.call_ok("watch", watch_params).unwrap();
    assert!(
        !again.require("registered").unwrap().as_bool().unwrap(),
        "re-watching the same spec must be idempotent"
    );
    assert_eq!(again.require("verdict").unwrap().to_json(), baseline);

    // Net-zero churn: delete row 0, append the identical row. Every cached
    // verdict must be kept and the watch must not republish.
    let result = client
        .call_ok("update", update_params(&[rows[0].clone()], &[0]))
        .unwrap();
    assert!(result.require("net_zero").unwrap().as_bool().unwrap());
    let invalidation = result.require("invalidation").unwrap();
    assert!(
        invalidation.require("kept").unwrap().as_u64().unwrap() > 0,
        "net-zero churn must keep the warm pool"
    );
    assert_eq!(
        invalidation
            .require("invalidated")
            .unwrap()
            .as_u64()
            .unwrap(),
        0
    );
    let watches = result.require("watches").unwrap();
    assert_eq!(watches.require("checked").unwrap().as_u64().unwrap(), 1);
    assert_eq!(watches.require("flipped").unwrap().as_u64().unwrap(), 0);
    assert!(
        watches
            .require("changed")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty(),
        "an unchanged verdict must not be republished"
    );

    // Collapse the table to 2 rows: the verdict must flip, once.
    let deletes: Vec<usize> = (0..78).collect();
    let result = client
        .call_ok("update", update_params(&[], &deletes))
        .unwrap();
    assert_eq!(result.require("rows").unwrap().as_u64().unwrap(), 2);
    let watches = result.require("watches").unwrap();
    assert_eq!(watches.require("flipped").unwrap().as_u64().unwrap(), 1);
    let changed = watches
        .require("changed")
        .unwrap()
        .as_array()
        .unwrap()
        .to_vec();
    assert_eq!(changed.len(), 1, "exactly one republished verdict");
    let republished = changed[0].require("verdict").unwrap().to_json();
    assert_ne!(republished, baseline);

    // The republished verdict is what a fresh check sees.
    let result = client.call_ok("anonymize", anonymize_params()).unwrap();
    assert_eq!(result.require("verdict").unwrap().to_json(), republished);
}
