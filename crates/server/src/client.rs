//! A minimal synchronous client for the psens-server protocol, shared by
//! the `psens-load` driver, the CLI `client` subcommand, and the tests.

use crate::protocol::{read_frame, request, write_frame};
use psens_microdata::JsonValue;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};

/// One connection to a psens-server. Requests are answered in order, so a
/// `call` is a `send` followed by a `recv`; `send`/`recv` can be split to
/// pipeline.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: i64,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// Sends a request without waiting for its response; returns its id.
    pub fn send(&mut self, op: &str, params: JsonValue) -> io::Result<i64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, &request(id, op, params))?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Receives the next response frame.
    pub fn recv(&mut self) -> io::Result<JsonValue> {
        read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Sends `op` and waits for its response.
    pub fn call(&mut self, op: &str, params: JsonValue) -> io::Result<JsonValue> {
        self.send(op, params)?;
        self.recv()
    }

    /// [`Client::call`], unwrapping a success response's `result` and
    /// turning a failure response into a readable error string.
    pub fn call_ok(&mut self, op: &str, params: JsonValue) -> Result<JsonValue, String> {
        let response = self
            .call(op, params)
            .map_err(|e| format!("{op}: transport: {e}"))?;
        response_result(&response).map_err(|e| format!("{op}: {e}"))
    }
}

/// Extracts `result` from a success response, or `error.code: error.message`
/// from a failure.
pub fn response_result(response: &JsonValue) -> Result<JsonValue, String> {
    let ok = response
        .require("ok")
        .and_then(JsonValue::as_bool)
        .map_err(|e| e.to_string())?;
    if ok {
        return response
            .require("result")
            .cloned()
            .map_err(|e| e.to_string());
    }
    let error = response.require("error").map_err(|e| e.to_string())?;
    let code = error
        .get("code")
        .and_then(|v| v.as_str().ok())
        .unwrap_or("unknown");
    let message = error
        .get("message")
        .and_then(|v| v.as_str().ok())
        .unwrap_or("");
    Err(format!("{code}: {message}"))
}

/// Builds the params object for `register` from a fixture-style bundle.
pub fn register_params(name: &str, csv: &str, spec: &psens_datasets::Spec) -> JsonValue {
    let mut params = JsonValue::object();
    params.set("name", JsonValue::Str(name.to_owned()));
    params.set("csv", JsonValue::Str(csv.to_owned()));
    params.set("spec", spec.to_json());
    params
}
