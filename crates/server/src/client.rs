//! A minimal synchronous client for the psens-server protocol, shared by
//! the `psens-load` driver, the CLI `client` subcommand, and the tests.
//!
//! [`Client::call_retry`] layers overload-aware retries on top: `busy`
//! responses and transport failures are retried with seeded exponential
//! backoff + jitter under an **idempotent request id** — the id is
//! allocated once per logical request and reused across attempts, so the
//! server (and anyone reading a packet capture) can tell a retry from a new
//! request. All server ops are idempotent by construction (`register` of
//! the same payload conflicts harmlessly; everything else is a pure read or
//! a pure function of its parameters), which is what makes blind retry
//! safe.

use crate::fault::xorshift64;
use crate::protocol::{read_frame, request, write_frame};
use psens_microdata::JsonValue;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Retry behaviour for [`Client::call_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// First backoff delay; doubles per attempt.
    pub base_delay_ms: u64,
    /// Backoff ceiling.
    pub max_delay_ms: u64,
    /// Jitter seed — fixed seed, fixed jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_delay_ms: 20,
            max_delay_ms: 2_000,
            seed: 1,
        }
    }
}

impl RetryPolicy {
    /// No retries: surface the first `busy` / transport failure.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }
}

/// What the retry loop did, accumulated across calls for honest reporting
/// (psens-load publishes these in BENCH_8.json).
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryStats {
    /// Attempts re-issued after a `busy` shed.
    pub busy_retries: u64,
    /// Attempts re-issued after a connect/read/write failure.
    pub transport_retries: u64,
    /// Logical requests that exhausted their retry budget.
    pub give_ups: u64,
}

impl RetryStats {
    /// Merges another accumulator into this one.
    pub fn absorb(&mut self, other: &RetryStats) {
        self.busy_retries += other.busy_retries;
        self.transport_retries += other.transport_retries;
        self.give_ups += other.give_ups;
    }
}

/// One connection to a psens-server. Requests are answered in order, so a
/// `call` is a `send` followed by a `recv`; `send`/`recv` can be split to
/// pipeline.
pub struct Client {
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: i64,
    io_timeout: Option<Duration>,
    rng: u64,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let (reader, writer) = Client::open(addr, None)?;
        Ok(Client {
            addr,
            reader,
            writer,
            next_id: 1,
            io_timeout: None,
            rng: 0x9e37_79b9_7f4a_7c15,
        })
    }

    fn open(
        addr: SocketAddr,
        io_timeout: Option<Duration>,
    ) -> io::Result<(BufReader<TcpStream>, BufWriter<TcpStream>)> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        Ok((BufReader::new(stream.try_clone()?), BufWriter::new(stream)))
    }

    /// Bounds every read/write on this connection: a server that drops or
    /// stalls a response surfaces as a transport error after `timeout`
    /// instead of hanging the caller forever. `None` restores blocking I/O.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.io_timeout = timeout;
        let stream = self.reader.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }

    /// Drops the current socket and dials a fresh one, keeping the id
    /// counter monotonic so replayed ids stay unambiguous server-side.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let (reader, writer) = Client::open(self.addr, self.io_timeout)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// Sends a request without waiting for its response; returns its id.
    pub fn send(&mut self, op: &str, params: JsonValue) -> io::Result<i64> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_with_id(id, op, params)?;
        Ok(id)
    }

    fn send_with_id(&mut self, id: i64, op: &str, params: JsonValue) -> io::Result<()> {
        write_frame(&mut self.writer, &request(id, op, params))?;
        self.writer.flush()
    }

    /// Receives the next response frame.
    pub fn recv(&mut self) -> io::Result<JsonValue> {
        read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Sends `op` and waits for its response.
    pub fn call(&mut self, op: &str, params: JsonValue) -> io::Result<JsonValue> {
        self.send(op, params)?;
        self.recv()
    }

    /// [`Client::call`], unwrapping a success response's `result` and
    /// turning a failure response into a readable error string.
    pub fn call_ok(&mut self, op: &str, params: JsonValue) -> Result<JsonValue, String> {
        let response = self
            .call(op, params)
            .map_err(|e| format!("{op}: transport: {e}"))?;
        response_result(&response).map_err(|e| format!("{op}: {e}"))
    }

    /// Polls the `health` op with linear backoff until `ready` accepts the
    /// report or `timeout` elapses, returning the last report either way
    /// (`Err` carries it rendered, alongside the last transport error if
    /// any). Deterministic readiness for tests and scripts: asserting on a
    /// counter the server increments *around* an observable event (a socket
    /// close, a drained queue) is a race when read once, and a sleep is a
    /// guess — this loop is neither.
    pub fn wait_healthy(
        &mut self,
        timeout: Duration,
        mut ready: impl FnMut(&JsonValue) -> bool,
    ) -> Result<JsonValue, String> {
        let deadline = std::time::Instant::now() + timeout;
        let mut delay = Duration::from_millis(5);
        loop {
            let last = match self.call_ok("health", JsonValue::object()) {
                Ok(health) => {
                    if ready(&health) {
                        return Ok(health);
                    }
                    Ok(health)
                }
                Err(e) => Err(e),
            };
            if std::time::Instant::now() >= deadline {
                return Err(match last {
                    Ok(health) => format!(
                        "health never became ready; last report: {}",
                        health.to_json()
                    ),
                    Err(e) => format!("health unreachable: {e}"),
                });
            }
            std::thread::sleep(delay);
            delay = (delay * 2).min(Duration::from_millis(100));
        }
    }

    /// [`Client::call_ok`] with retries on `busy` sheds and transport
    /// failures, per `policy`. The request id is allocated once and reused
    /// verbatim on every attempt (idempotent retry); `stats` accumulates
    /// what happened for honest reporting.
    pub fn call_retry(
        &mut self,
        op: &str,
        params: JsonValue,
        policy: &RetryPolicy,
        stats: &mut RetryStats,
    ) -> Result<JsonValue, String> {
        if self.rng == 0x9e37_79b9_7f4a_7c15 && policy.seed != 0 {
            // First retry-aware call on this client: mix in the policy seed
            // so different workers jitter differently but reproducibly.
            self.rng = policy.seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut attempt: u32 = 0;
        loop {
            let outcome = self
                .send_with_id(id, op, params.clone())
                .and_then(|()| self.recv());
            let (shed_hint, failure) = match outcome {
                Ok(response) => match response_result(&response) {
                    Ok(result) => return Ok(result),
                    Err(message) if message.starts_with("busy") => {
                        let hint = response
                            .get("error")
                            .and_then(|e| e.get("retry_after_ms"))
                            .and_then(|v| v.as_u64().ok());
                        (hint, format!("{op}: {message}"))
                    }
                    Err(message) => return Err(format!("{op}: {message}")),
                },
                Err(e) => (None, format!("{op}: transport: {e}")),
            };
            if attempt >= policy.max_retries {
                stats.give_ups += 1;
                return Err(format!("{failure} (after {attempt} retries)"));
            }
            attempt += 1;
            if shed_hint.is_some() {
                stats.busy_retries += 1;
            } else {
                stats.transport_retries += 1;
                // The socket may be mid-frame or dead; start clean. A failed
                // reconnect burns this attempt's backoff and tries again.
                let _ = self.reconnect();
            }
            let exp = policy
                .base_delay_ms
                .saturating_mul(1u64 << attempt.min(16))
                .min(policy.max_delay_ms);
            let base = shed_hint.unwrap_or(exp / 2).min(policy.max_delay_ms);
            let jitter = if exp / 2 > 0 {
                xorshift64(&mut self.rng) % (exp / 2 + 1)
            } else {
                0
            };
            std::thread::sleep(Duration::from_millis(base + jitter));
        }
    }
}

/// Extracts `result` from a success response, or `error.code: error.message`
/// from a failure.
pub fn response_result(response: &JsonValue) -> Result<JsonValue, String> {
    let ok = response
        .require("ok")
        .and_then(JsonValue::as_bool)
        .map_err(|e| e.to_string())?;
    if ok {
        return response
            .require("result")
            .cloned()
            .map_err(|e| e.to_string());
    }
    let error = response.require("error").map_err(|e| e.to_string())?;
    let code = error
        .get("code")
        .and_then(|v| v.as_str().ok())
        .unwrap_or("unknown");
    let message = error
        .get("message")
        .and_then(|v| v.as_str().ok())
        .unwrap_or("");
    Err(format!("{code}: {message}"))
}

/// Builds the params object for `register` from a fixture-style bundle.
pub fn register_params(name: &str, csv: &str, spec: &psens_datasets::Spec) -> JsonValue {
    let mut params = JsonValue::object();
    params.set("name", JsonValue::Str(name.to_owned()));
    params.set("csv", JsonValue::Str(csv.to_owned()));
    params.set("spec", spec.to_json());
    params
}
