//! # psens-server
//!
//! A long-running anonymization daemon over the workspace's search stack.
//! The CLI parses, interns, and evaluates a dataset per invocation; the
//! server does that work once at `register` and then serves `check` /
//! `analyze` / `anonymize` / `query` requests against the interned table,
//! keeping a pool of warm [`psens_core::VerdictStore`]s per dataset (keyed
//! by `(p, k, ts)` — a store's monotonicity closure is only sound for one
//! configuration) so repeated anonymize calls amortize lattice work.
//!
//! - [`protocol`]: 4-byte big-endian length-prefixed JSON frames; request /
//!   response shapes and error codes.
//! - [`registry`]: the name → dataset map and the warm store pools.
//! - [`server`]: accept loop, admission gate, per-request cancellation
//!   (client disconnect → that request's token only; SIGINT / `shutdown` →
//!   every request, via [`psens_core::CancelToken::child`] parent links).
//! - [`client`]: the synchronous client used by `psens-load`, the CLI
//!   `client` subcommand, and the tests; retries `busy` / transport errors
//!   with seeded exponential backoff and idempotent request ids.
//! - [`fault`]: deterministic fault injection (test-only `inject` verb) for
//!   the chaos harness.
//! - [`state`]: write-ahead registry journal and verdict-store snapshots
//!   behind `--state-dir`; replayed with hash verification on boot.
//!
//! DESIGN.md §14–15 document the architecture; EXPERIMENTS.md's BENCH_7/8
//! hold the sustained-traffic and robustness numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod state;

pub use client::{Client, RetryPolicy, RetryStats};
pub use fault::FaultPlan;
pub use registry::Registry;
pub use server::{start, ServerConfig, ServerHandle};
pub use state::StateDir;
