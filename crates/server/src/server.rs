//! The daemon: a TCP accept loop, per-connection handler threads, a bounded
//! admission gate with explicit load-shedding, per-request cancellation,
//! deterministic fault injection, and crash-recoverable state.
//!
//! ## Cancellation topology
//!
//! Every request gets its own [`CancelToken`] created as a *child* of the
//! server's shutdown token ([`CancelToken::child`]). Tripping the server
//! token (SIGINT, `shutdown` op) fans out to every in-flight request;
//! tripping one request's token — which is what the connection watcher does
//! when that request's client goes away — cannot leak into any other
//! request. The CLI's cancellation hook is a process-global one-shot SIGINT
//! token; reusing it for disconnects would make one client's hangup abort
//! every concurrent search, which the
//! `disconnect_cancels_only_its_own_request` test pins against.
//!
//! ## Admission and overload
//!
//! Work ops (`register`, `check`, `analyze`, `anonymize`, `query`,
//! `update`, `watch`, `sleep`) pass through a counting [`Gate`] before
//! executing. The queue behind the
//! gate is **bounded** (`queue_depth`): a request arriving to a full queue
//! is shed immediately with a `busy` error carrying `retry_after_ms`,
//! instead of blocking unboundedly — under overload the server stays
//! responsive and honest rather than building an invisible backlog. Queued
//! requests poll their cancel token, so a dead client releases its queue
//! slot promptly. Per-connection read timeouts (idle and stall) reap
//! silent and slow-loris connections; `anonymize` deadlines are measured
//! from request *arrival*, so time spent queued counts against the budget
//! and no request outlives its deadline just because the server was busy.
//!
//! ## Degradation is fail-closed
//!
//! Every degraded path — shed, reaped, evicted, panicked, recovering —
//! either answers with an error or closes the connection. None of them
//! alters a verdict: verdicts stay a pure function of
//! `(dataset, model, k, ts)`, which the differential oracle and the chaos
//! harness assert byte-for-byte under injected faults.

use crate::fault::{Action, FaultPlan, Site};
use crate::protocol::{
    busy_response, codes, error_response, ok_response, read_request, write_frame, FrameLimits,
    ReadOutcome, MAX_FRAME_BYTES,
};
use crate::registry::{parse_cells, RecoveryStats, Registry};
use crate::state::{SnapshotStats, StateDir};
use psens_algorithms::samarati::{
    pk_minimal_generalization_model_with_stats, Pruning, SearchOutcome,
};
use psens_algorithms::Tuning;
use psens_core::{
    check_p_sensitivity, check_table_model, max_k, max_p_of_masked, CancelToken, ModelSpec,
    NoopObserver, SearchBudget,
};
use psens_datasets::Spec;
use psens_hierarchy::QiSpace;
use psens_metrics::{attribute_risk, identity_risk};
use psens_microdata::csv::to_csv_string;
use psens_microdata::{DeltaBatch, JsonValue};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Poll period for the shared per-connection read timeout. `SO_RCVTIMEO`
/// is a property of the socket, not of an fd clone, so the frame reader and
/// the connection watcher share this value; it bounds both
/// disconnect-detection lag and shutdown latency for idle connections.
const POLL: Duration = Duration::from_millis(20);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Maximum work ops executing at once; further requests queue at the
    /// admission gate. `0` is treated as `1`.
    pub max_concurrent: usize,
    /// Maximum requests waiting at the gate before new arrivals are shed
    /// with `busy`. `0` sheds immediately once all slots are taken.
    pub queue_depth: usize,
    /// Request frames larger than this are refused with `frame_too_large`
    /// (the connection survives).
    pub max_frame_bytes: u32,
    /// Reap a connection that sends nothing for this long. `0` disables
    /// idle reaping (the default: idle keep-alive connections are legal).
    pub idle_timeout_ms: u64,
    /// Reap a connection whose frame stalls mid-transfer (slow-loris) for
    /// this long. `0` disables stall reaping.
    pub stall_timeout_ms: u64,
    /// Bound on blocking response writes; a client that stops draining its
    /// socket forfeits the connection. `0` disables.
    pub write_timeout_ms: u64,
    /// Combined warm-pool byte budget; least-recently-used pools are
    /// evicted above it. `0` disables eviction.
    pub max_pool_bytes: u64,
    /// Directory for the write-ahead registry journal and verdict
    /// snapshot; `None` runs fully in-memory.
    pub state_dir: Option<PathBuf>,
    /// Allows the test-only `inject` op (and a boot-time fault plan).
    /// Never enable in production.
    pub enable_inject: bool,
    /// Fault plan JSON installed at boot (requires `enable_inject`).
    pub fault_plan: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".to_owned(),
            max_concurrent: 2,
            queue_depth: 32,
            max_frame_bytes: MAX_FRAME_BYTES,
            idle_timeout_ms: 0,
            stall_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            max_pool_bytes: 0,
            state_dir: None,
            enable_inject: false,
            fault_plan: None,
        }
    }
}

struct GateInner {
    permits: usize,
    waiting: usize,
}

/// Counting semaphore bounding concurrent work-op executions, with a
/// bounded wait queue.
struct Gate {
    inner: Mutex<GateInner>,
    cv: Condvar,
    max_permits: usize,
    queue_depth: usize,
}

/// Holds one admission permit; released (and the queue notified) on drop.
struct GatePermit<'a> {
    gate: &'a Gate,
}

/// Outcome of asking the gate for a slot.
enum Admission<'a> {
    /// Admitted; run the op.
    Permit(GatePermit<'a>),
    /// Queue full; shed with `busy`. Carries the queue length observed.
    Busy { waiting: usize },
    /// The request was cancelled (disconnect / shutdown) while queued.
    Cancelled,
}

impl Gate {
    fn new(permits: usize, queue_depth: usize) -> Gate {
        let max_permits = permits.max(1);
        Gate {
            inner: Mutex::new(GateInner {
                permits: max_permits,
                waiting: 0,
            }),
            cv: Condvar::new(),
            max_permits,
            queue_depth,
        }
    }

    /// Takes a permit, queues within the depth bound, or sheds.
    fn acquire(&self, cancel: &CancelToken) -> Admission<'_> {
        let mut inner = self.inner.lock().expect("gate poisoned");
        if inner.permits > 0 {
            inner.permits -= 1;
            return Admission::Permit(GatePermit { gate: self });
        }
        if inner.waiting >= self.queue_depth {
            return Admission::Busy {
                waiting: inner.waiting,
            };
        }
        inner.waiting += 1;
        loop {
            if cancel.is_cancelled() {
                inner.waiting -= 1;
                return Admission::Cancelled;
            }
            if inner.permits > 0 {
                inner.permits -= 1;
                inner.waiting -= 1;
                return Admission::Permit(GatePermit { gate: self });
            }
            let (guard, _) = self.cv.wait_timeout(inner, POLL).expect("gate poisoned");
            inner = guard;
        }
    }

    /// `(executing, queued)` — a point-in-time load sample for `health`.
    fn load(&self) -> (usize, usize) {
        let inner = self.inner.lock().expect("gate poisoned");
        (self.max_permits - inner.permits, inner.waiting)
    }
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        self.gate.inner.lock().expect("gate poisoned").permits += 1;
        self.gate.cv.notify_one();
    }
}

struct WatchShared {
    /// Token of the request currently executing on this connection, if any.
    active: Mutex<Option<CancelToken>>,
    /// Set once the peer is observed gone; sticky for the connection.
    dead: AtomicBool,
    stop: AtomicBool,
}

/// One watcher thread per **connection** (not per request — the previous
/// per-request spawn is the ROADMAP item this replaces): it peeks the
/// socket on the shared poll timeout and, when the peer goes away, cancels
/// whichever request is active at that moment. Requests hand their token in
/// and out through the RAII [`ActiveRequest`] guard.
struct ConnWatch {
    shared: Arc<WatchShared>,
    handle: Option<JoinHandle<()>>,
}

/// Marks a request as the connection's active one for its execution span.
struct ActiveRequest<'a> {
    shared: &'a WatchShared,
}

impl ConnWatch {
    fn spawn(stream: &TcpStream) -> io::Result<ConnWatch> {
        let peek = stream.try_clone()?;
        let shared = Arc::new(WatchShared {
            active: Mutex::new(None),
            dead: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = thread::spawn(move || {
            let mut buf = [0u8; 1];
            while !thread_shared.stop.load(Ordering::Acquire) {
                match peek.peek(&mut buf) {
                    // EOF: the client closed its end.
                    Ok(0) => {
                        thread_shared.dead.store(true, Ordering::Release);
                        if let Some(token) =
                            thread_shared.active.lock().expect("watch poisoned").take()
                        {
                            token.cancel();
                        }
                        return;
                    }
                    // Bytes waiting (a pipelined request): client is alive;
                    // back off so the poll doesn't spin while data sits.
                    Ok(_) => thread::sleep(POLL),
                    // The shared SO_RCVTIMEO poll tick.
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut => {}
                    Err(_) => {
                        thread_shared.dead.store(true, Ordering::Release);
                        if let Some(token) =
                            thread_shared.active.lock().expect("watch poisoned").take()
                        {
                            token.cancel();
                        }
                        return;
                    }
                }
            }
        });
        Ok(ConnWatch {
            shared,
            handle: Some(handle),
        })
    }

    fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::Acquire)
    }

    /// Registers `token` as the connection's active request. If the peer is
    /// already known dead the token is cancelled on the spot, so a doomed
    /// request never starts real work.
    fn activate(&self, token: CancelToken) -> ActiveRequest<'_> {
        if self.is_dead() {
            token.cancel();
        }
        *self.shared.active.lock().expect("watch poisoned") = Some(token);
        ActiveRequest {
            shared: &self.shared,
        }
    }
}

impl Drop for ActiveRequest<'_> {
    fn drop(&mut self) {
        self.shared.active.lock().expect("watch poisoned").take();
    }
}

impl Drop for ConnWatch {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// State shared by the acceptor and every connection handler.
pub struct ServerState {
    /// The dataset registry.
    pub registry: Registry,
    gate: Gate,
    shutdown: CancelToken,
    addr: SocketAddr,
    started: Instant,
    config: ServerConfig,
    recovery: RecoveryStats,
    faults: Mutex<Option<FaultPlan>>,
    requests_served: AtomicU64,
    shed_total: AtomicU64,
    idle_reaped: AtomicU64,
    stall_reaped: AtomicU64,
    frames_too_large: AtomicU64,
    malformed_frames: AtomicU64,
    worker_panics: AtomicU64,
}

impl ServerState {
    /// Consults the fault plan, if any. A server without an installed plan
    /// pays one mutex lock and a `None` check per site.
    fn fault(&self, site: Site, op: &str) -> Option<Action> {
        let mut faults = self.faults.lock().expect("fault plan poisoned");
        faults.as_mut().and_then(|plan| plan.decide(site, op))
    }
}

/// A running server: bound address plus the handle to stop and join it.
pub struct ServerHandle {
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The server's shutdown token; `cancel()` initiates shutdown exactly
    /// like SIGINT or the `shutdown` op.
    pub fn shutdown_token(&self) -> CancelToken {
        self.state.shutdown.clone()
    }

    /// What boot-time recovery reconstructed (empty without `--state-dir`).
    pub fn recovery(&self) -> &RecoveryStats {
        &self.state.recovery
    }

    /// Trips the shutdown token, wakes the acceptor, joins it, and — on the
    /// first call, with a state dir configured — writes the verdict
    /// snapshot. Requests already executing observe the cancellation
    /// through their child tokens and finish as interrupted.
    pub fn shutdown(&mut self) -> Option<SnapshotStats> {
        self.state.shutdown.cancel();
        wake_acceptor(self.state.addr);
        match self.acceptor.take() {
            Some(handle) => {
                let _ = handle.join();
                self.state.registry.write_snapshot()
            }
            None => None,
        }
    }

    /// Total requests served so far (all ops, success or failure).
    pub fn requests_served(&self) -> u64 {
        self.state.requests_served.load(Ordering::Relaxed)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The acceptor blocks in `accept`; a throwaway connection wakes it so it
/// can observe the tripped shutdown token and exit.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
}

/// Binds `config.listen`, replays any `--state-dir` journal + snapshot, and
/// starts the accept loop on a background thread.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.listen)?;
    let addr = listener.local_addr()?;
    let state_dir = match &config.state_dir {
        Some(dir) => Some(Arc::new(StateDir::open(dir)?)),
        None => None,
    };
    let registry = Registry::with_state(state_dir, config.max_pool_bytes);
    let recovery = registry.recover();
    let faults = match (&config.fault_plan, config.enable_inject) {
        (Some(plan), true) => Some(
            FaultPlan::from_json_text(plan)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?,
        ),
        (Some(_), false) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a boot fault plan requires fault injection to be enabled",
            ));
        }
        (None, _) => None,
    };
    let state = Arc::new(ServerState {
        registry,
        gate: Gate::new(config.max_concurrent, config.queue_depth),
        shutdown: CancelToken::new(),
        addr,
        started: Instant::now(),
        recovery,
        faults: Mutex::new(faults),
        config,
        requests_served: AtomicU64::new(0),
        shed_total: AtomicU64::new(0),
        idle_reaped: AtomicU64::new(0),
        stall_reaped: AtomicU64::new(0),
        frames_too_large: AtomicU64::new(0),
        malformed_frames: AtomicU64::new(0),
        worker_panics: AtomicU64::new(0),
    });
    let accept_state = Arc::clone(&state);
    let acceptor = thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_state.shutdown.is_cancelled() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let conn_state = Arc::clone(&accept_state);
            thread::spawn(move || handle_connection(&conn_state, stream));
        }
    });
    Ok(ServerHandle {
        state,
        acceptor: Some(acceptor),
    })
}

/// Reads frames off one connection and answers them in order. Returns when
/// the client closes, framing is lost, a timeout reaps the connection, or
/// the server shuts down — every exit either answered the last request or
/// closed the socket, never leaving a client waiting on a frame that will
/// not come.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    // Responses are one small frame per request; letting Nagle hold them
    // for the delayed-ACK timer adds ~40ms to every round trip.
    let _ = stream.set_nodelay(true);
    // One poll-interval read timeout for the connection's lifetime, shared
    // by the frame reader and the watcher (SO_RCVTIMEO is per-socket, not
    // per-clone). The reader treats the resulting WouldBlock/TimedOut as
    // "check deadlines and shutdown, then keep reading".
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    if state.config.write_timeout_ms > 0 {
        let _ =
            stream.set_write_timeout(Some(Duration::from_millis(state.config.write_timeout_ms)));
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // A failed watcher spawn just means no disconnect detection; requests
    // still honor deadlines and server shutdown.
    let watch = ConnWatch::spawn(&stream).ok();
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(&stream);
    let ms = |n: u64| (n > 0).then(|| Duration::from_millis(n));
    let limits = FrameLimits {
        max_frame_bytes: state.config.max_frame_bytes,
        idle_timeout: ms(state.config.idle_timeout_ms),
        stall_timeout: ms(state.config.stall_timeout_ms),
    };
    loop {
        let mut should_stop = || {
            state.shutdown.is_cancelled() || watch.as_ref().map(ConnWatch::is_dead).unwrap_or(false)
        };
        let (request, arrival) = match read_request(&mut reader, &limits, &mut should_stop) {
            ReadOutcome::Frame(request) => (request, Instant::now()),
            ReadOutcome::Closed | ReadOutcome::Stopped => return,
            ReadOutcome::IdleTimedOut => {
                state.idle_reaped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            ReadOutcome::Stalled => {
                state.stall_reaped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            ReadOutcome::TooLarge(len) => {
                state.frames_too_large.fetch_add(1, Ordering::Relaxed);
                state.requests_served.fetch_add(1, Ordering::Relaxed);
                let response = error_response(
                    0,
                    codes::FRAME_TOO_LARGE,
                    &format!(
                        "frame of {len} bytes exceeds the {}-byte limit",
                        state.config.max_frame_bytes
                    ),
                );
                if write_frame(&mut writer, &response).is_err() {
                    return;
                }
                continue;
            }
            ReadOutcome::Malformed { message, resynced } => {
                state.malformed_frames.fetch_add(1, Ordering::Relaxed);
                if !resynced {
                    return;
                }
                state.requests_served.fetch_add(1, Ordering::Relaxed);
                let response = error_response(0, codes::BAD_REQUEST, &message);
                if write_frame(&mut writer, &response).is_err() {
                    return;
                }
                continue;
            }
            ReadOutcome::Failed(_) => return,
        };
        let id = request.get("id").and_then(|v| v.as_i64().ok()).unwrap_or(0);
        let op = request
            .get("op")
            .and_then(|v| v.as_str().ok())
            .unwrap_or("")
            .to_owned();
        // Pre-dispatch faults: a delay stalls the request before admission;
        // anything else kills the connection before an answer exists —
        // exactly what a crash between read and dispatch looks like.
        match state.fault(Site::PreDispatch, &op) {
            Some(Action::DelayMs(delay)) => thread::sleep(Duration::from_millis(delay)),
            Some(_) => return,
            None => {}
        }
        let response = dispatch(state, id, &request, arrival, watch.as_ref());
        state.requests_served.fetch_add(1, Ordering::Relaxed);
        // Write-response faults: drop closes without answering, truncate
        // tears the frame mid-payload, delay stalls the write.
        match state.fault(Site::WriteResponse, &op) {
            Some(Action::Drop) | Some(Action::Panic) => return,
            Some(Action::Truncate) => {
                let payload = response.to_json();
                let bytes = payload.as_bytes();
                let _ = writer.write_all(&(bytes.len() as u32).to_be_bytes());
                let _ = writer.write_all(&bytes[..bytes.len() / 2]);
                let _ = writer.flush();
                return;
            }
            Some(Action::DelayMs(delay)) => thread::sleep(Duration::from_millis(delay)),
            None => {}
        }
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
        // The shutdown op answers its own request, then closes.
        if op == "shutdown" {
            return;
        }
    }
}

/// Routes one request to its op handler, wrapping admission, per-request
/// cancellation, and worker-panic containment around the work ops.
fn dispatch(
    state: &Arc<ServerState>,
    id: i64,
    request: &JsonValue,
    arrival: Instant,
    watch: Option<&ConnWatch>,
) -> JsonValue {
    let op = match request.get("op").and_then(|v| v.as_str().ok()) {
        Some(op) => op,
        None => return error_response(id, codes::BAD_REQUEST, "missing `op`"),
    };
    match op {
        "stats" => ok_response(id, stats_op(state)),
        "health" => ok_response(id, health_op(state)),
        "inject" => match inject_op(state, request) {
            Ok(result) => ok_response(id, result),
            Err((code, message)) => error_response(id, code, &message),
        },
        "shutdown" => {
            state.shutdown.cancel();
            wake_acceptor(state.addr);
            let mut result = JsonValue::object();
            result.set("stopping", JsonValue::Bool(true));
            ok_response(id, result)
        }
        "register" | "check" | "analyze" | "anonymize" | "query" | "update" | "watch" | "sleep" => {
            if state.shutdown.is_cancelled() {
                return error_response(id, codes::SHUTTING_DOWN, "server is shutting down");
            }
            // Per-request token: observes server shutdown through the parent
            // link; tripped individually by this connection's watcher when
            // the client goes away mid-request.
            let token = state.shutdown.child();
            let _active = watch.map(|w| w.activate(token.clone()));
            match state.gate.acquire(&token) {
                Admission::Cancelled => error_response(
                    id,
                    codes::INTERRUPTED,
                    "request cancelled while queued for admission",
                ),
                Admission::Busy { waiting } => {
                    state.shed_total.fetch_add(1, Ordering::Relaxed);
                    // Scale the hint with observed queue length so a deep
                    // backlog spreads retries further apart.
                    let hint = (20 * (waiting as u64 + 1)).min(500);
                    busy_response(id, hint)
                }
                Admission::Permit(_permit) => {
                    let exec_fault = state.fault(Site::Exec, op);
                    if let Some(Action::DelayMs(delay)) = exec_fault {
                        // A slow dataset: the op holds its admission slot
                        // while the delay runs, exactly like a real stall.
                        thread::sleep(Duration::from_millis(delay));
                    }
                    let inject_panic = matches!(exec_fault, Some(Action::Panic));
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if inject_panic {
                            panic!("injected worker panic (exec site, op `{op}`)");
                        }
                        match op {
                            "register" => register_op(state, request),
                            "check" => check_op(state, request),
                            "analyze" => analyze_op(state, request),
                            "anonymize" => anonymize_op(state, request, &token, arrival),
                            "query" => query_op(state, request),
                            "update" => update_op(state, request, &token),
                            "watch" => watch_op(state, request, &token),
                            "sleep" => sleep_op(request, &token),
                            _ => unreachable!("matched above"),
                        }
                    }));
                    let outcome = match outcome {
                        Ok(outcome) => outcome,
                        Err(_) => {
                            // The worker died; the connection, its permit,
                            // and every other request are unaffected. The
                            // client gets a definite error, not a hang.
                            state.worker_panics.fetch_add(1, Ordering::Relaxed);
                            Err((
                                codes::INTERNAL,
                                "worker panicked; request aborted (contained)".to_owned(),
                            ))
                        }
                    };
                    match outcome {
                        Ok(result) => ok_response(id, result),
                        Err((code, message)) => error_response(id, code, &message),
                    }
                }
            }
        }
        other => error_response(id, codes::BAD_REQUEST, &format!("unknown op `{other}`")),
    }
}

type OpResult = Result<JsonValue, (&'static str, String)>;

fn bad(message: impl Into<String>) -> (&'static str, String) {
    (codes::BAD_REQUEST, message.into())
}

fn param_str<'a>(request: &'a JsonValue, key: &str) -> Result<&'a str, (&'static str, String)> {
    request
        .get(key)
        .ok_or_else(|| bad(format!("missing `{key}`")))?
        .as_str()
        .map_err(|e| bad(format!("`{key}`: {e}")))
}

fn param_u32(request: &JsonValue, key: &str, default: u32) -> Result<u32, (&'static str, String)> {
    match request.get(key) {
        None => Ok(default),
        Some(value) => value
            .as_u64()
            .ok()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| bad(format!("`{key}` must be a u32"))),
    }
}

fn param_usize(
    request: &JsonValue,
    key: &str,
    default: usize,
) -> Result<usize, (&'static str, String)> {
    match request.get(key) {
        None => Ok(default),
        Some(value) => value.as_usize().map_err(|e| bad(format!("`{key}`: {e}"))),
    }
}

fn param_bool(
    request: &JsonValue,
    key: &str,
    default: bool,
) -> Result<bool, (&'static str, String)> {
    match request.get(key) {
        None => Ok(default),
        Some(value) => value.as_bool().map_err(|e| bad(format!("`{key}`: {e}"))),
    }
}

/// Parses the request's privacy model: optional `model` name (default
/// `psens-k`) plus its parameter — `p` for psens-k (default `default_p`,
/// which differs between ops for compatibility), `l` for the diversity
/// models, `t_ppm` (parts-per-million of t) for t-closeness.
fn param_model(request: &JsonValue, default_p: u32) -> Result<ModelSpec, (&'static str, String)> {
    let name = match request.get("model") {
        Some(value) => value.as_str().map_err(|e| bad(format!("`model`: {e}")))?,
        None => "psens-k",
    };
    match name {
        "psens-k" => Ok(ModelSpec::PSensitiveK {
            p: param_u32(request, "p", default_p)?,
        }),
        "distinct-l" => Ok(ModelSpec::DistinctL {
            l: param_u32(request, "l", 2)?,
        }),
        "entropy-l" => Ok(ModelSpec::EntropyL {
            l: param_u32(request, "l", 2)?,
        }),
        "t-closeness" => Ok(ModelSpec::TCloseness {
            t_ppm: param_u32(request, "t_ppm", 200_000)?,
        }),
        other => Err(bad(format!(
            "unknown privacy model `{other}` (expected psens-k, distinct-l, entropy-l, or t-closeness)"
        ))),
    }
}

fn lookup_dataset(
    state: &ServerState,
    request: &JsonValue,
) -> Result<Arc<crate::registry::Dataset>, (&'static str, String)> {
    let name = param_str(request, "dataset")?;
    state
        .registry
        .get(name)
        .ok_or((codes::NOT_FOUND, format!("no dataset `{name}`")))
}

fn recovered_json(recovery: &RecoveryStats) -> JsonValue {
    let mut out = JsonValue::object();
    out.set("datasets", JsonValue::Int(recovery.datasets as i64));
    out.set("pools", JsonValue::Int(recovery.pools as i64));
    out.set("deltas", JsonValue::Int(recovery.deltas as i64));
    out.set("verdicts", JsonValue::Int(recovery.verdicts as i64));
    out.set("warnings", JsonValue::Int(recovery.warnings.len() as i64));
    out
}

fn stats_op(state: &ServerState) -> JsonValue {
    let mut result = state.registry.to_json();
    result.set(
        "requests_served",
        JsonValue::Int(state.requests_served.load(Ordering::Relaxed) as i64),
    );
    result.set(
        "max_concurrent",
        JsonValue::Int(state.config.max_concurrent.max(1) as i64),
    );
    result.set("recovered", recovered_json(&state.recovery));
    result
}

/// `health {}`: load, shed, reap, eviction, and recovery counters — the
/// numbers an operator (or the chaos harness) needs to tell "degraded but
/// honest" from "wedged". Never gated: health must answer under overload.
fn health_op(state: &ServerState) -> JsonValue {
    let (executing, queued) = state.gate.load();
    let mut result = JsonValue::object();
    result.set(
        "uptime_ms",
        JsonValue::Int(state.started.elapsed().as_millis() as i64),
    );
    result.set(
        "max_concurrent",
        JsonValue::Int(state.config.max_concurrent.max(1) as i64),
    );
    result.set(
        "queue_depth",
        JsonValue::Int(state.config.queue_depth as i64),
    );
    result.set("executing", JsonValue::Int(executing as i64));
    result.set("queued", JsonValue::Int(queued as i64));
    let counter = |n: &AtomicU64| JsonValue::Int(n.load(Ordering::Relaxed) as i64);
    result.set("requests_served", counter(&state.requests_served));
    result.set("shed_total", counter(&state.shed_total));
    result.set("idle_reaped", counter(&state.idle_reaped));
    result.set("stall_reaped", counter(&state.stall_reaped));
    result.set("frames_too_large", counter(&state.frames_too_large));
    result.set("malformed_frames", counter(&state.malformed_frames));
    result.set("worker_panics", counter(&state.worker_panics));
    result.set(
        "pool_bytes",
        JsonValue::Int(state.registry.pool_bytes() as i64),
    );
    result.set(
        "pool_evictions",
        JsonValue::Int(state.registry.evictions() as i64),
    );
    result.set("recovered", recovered_json(&state.recovery));
    let faults = state.faults.lock().expect("fault plan poisoned");
    result.set(
        "faults",
        match faults.as_ref() {
            Some(plan) => plan.counters(),
            None => JsonValue::Null,
        },
    );
    result
}

/// `inject {plan}` / `inject {clear: true}`: installs or clears the fault
/// plan. Refused unless the server was started with injection enabled, so
/// a production deployment cannot be told to misbehave over the wire.
fn inject_op(state: &ServerState, request: &JsonValue) -> OpResult {
    if !state.config.enable_inject {
        return Err(bad(
            "fault injection is disabled (start the server with --enable-inject)",
        ));
    }
    let mut result = JsonValue::object();
    if param_bool(request, "clear", false)? {
        let mut faults = state.faults.lock().expect("fault plan poisoned");
        result.set("cleared", JsonValue::Bool(faults.is_some()));
        result.set(
            "counters",
            match faults.take() {
                Some(plan) => plan.counters(),
                None => JsonValue::Null,
            },
        );
        return Ok(result);
    }
    let plan_value = request
        .get("plan")
        .ok_or_else(|| bad("missing `plan` (or `clear`)"))?;
    let plan = FaultPlan::from_json(plan_value).map_err(bad)?;
    result.set("installed", JsonValue::Bool(true));
    result.set("rules", JsonValue::Int(plan.rule_count() as i64));
    *state.faults.lock().expect("fault plan poisoned") = Some(plan);
    Ok(result)
}

/// `register {name, csv, spec}`: parse once, serve many. `spec` is the same
/// JSON object the CLI's `--spec` file holds. With a state dir the
/// registration is journaled write-ahead before it takes effect.
fn register_op(state: &ServerState, request: &JsonValue) -> OpResult {
    let name = param_str(request, "name")?;
    let csv = param_str(request, "csv")?;
    let spec_value = request.get("spec").ok_or_else(|| bad("missing `spec`"))?;
    let spec = Spec::from_json(&spec_value.to_json()).map_err(bad)?;
    let dataset = state.registry.register(name, csv, spec).map_err(|e| {
        match e.contains("already registered") {
            true => (codes::CONFLICT, e),
            false => bad(e),
        }
    })?;
    let mut result = JsonValue::object();
    result.set("name", JsonValue::Str(dataset.name.clone()));
    result.set("rows", JsonValue::Int(dataset.n_rows() as i64));
    result.set(
        "lattice_nodes",
        JsonValue::Int(dataset.qi.lattice().node_count() as i64),
    );
    Ok(result)
}

/// `check {dataset, model?, p?/l?/t_ppm?, k?}`: the CLI `check` verdict on
/// the interned table (whole-table serial path — identical results to the
/// chunked one). The default model, `psens-k`, keeps its original response
/// shape; every model also reports `model`/`param`.
fn check_op(state: &ServerState, request: &JsonValue) -> OpResult {
    let dataset = lookup_dataset(state, request)?;
    let k = param_u32(request, "k", 2)?;
    let spec = param_model(request, 2)?;
    let table = dataset.table();
    let schema = table.schema();
    let keys = schema.key_indices();
    let conf = schema.confidential_indices();
    let maxk = max_k(&table, &keys);
    let maxp = max_p_of_masked(&table, &keys, &conf);
    let mut result = JsonValue::object();
    result.set("rows", JsonValue::Int(table.n_rows() as i64));
    match spec {
        ModelSpec::PSensitiveK { p } => {
            let report = check_p_sensitivity(&table, &keys, &conf, p, k);
            result.set("n_groups", JsonValue::Int(report.n_groups as i64));
            result.set("k", JsonValue::Int(k as i64));
            result.set("p", JsonValue::Int(p as i64));
            result.set("k_anonymous", JsonValue::Bool(report.k_anonymous));
            result.set("max_k", JsonValue::Int(maxk as i64));
            result.set("max_p", JsonValue::Int(maxp as i64));
            result.set("p_sensitive", JsonValue::Bool(report.violations.is_empty()));
            result.set("violations", JsonValue::Int(report.violations.len() as i64));
            result.set("satisfied", JsonValue::Bool(report.satisfied()));
        }
        _ => {
            let model = spec.instantiate();
            let report = check_table_model(&table, &keys, &conf, model.as_ref(), k);
            result.set("n_groups", JsonValue::Int(report.n_groups as i64));
            result.set("k", JsonValue::Int(k as i64));
            result.set("p", JsonValue::Int(spec.conditions_p() as i64));
            result.set("k_anonymous", JsonValue::Bool(report.k_anonymous));
            result.set("max_k", JsonValue::Int(maxk as i64));
            result.set("max_p", JsonValue::Int(maxp as i64));
            result.set("p_sensitive", JsonValue::Bool(report.violating_pairs == 0));
            result.set("violations", JsonValue::Int(report.violating_pairs as i64));
            result.set("satisfied", JsonValue::Bool(report.satisfied()));
            if let Some(detail) = report.detail {
                result.set("detail_kind", JsonValue::Str(detail.kind().to_owned()));
                result.set("detail_value", JsonValue::Int(detail.value() as i64));
            }
        }
    }
    result.set("model", JsonValue::Str(spec.name().to_owned()));
    result.set("param", JsonValue::Int(spec.param() as i64));
    Ok(result)
}

/// `analyze {dataset, p?}`: Condition 1 bound and disclosure risks.
fn analyze_op(state: &ServerState, request: &JsonValue) -> OpResult {
    let dataset = lookup_dataset(state, request)?;
    let requested_p = match request.get("p") {
        Some(value) => Some(
            value
                .as_u64()
                .ok()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| bad("`p` must be a u32"))?,
        ),
        None => None,
    };
    // One consistent (table, stats) snapshot; the stats come from the
    // incrementally-maintained LiveTable (byte-identical to a from-scratch
    // ConfidentialStats::compute by construction).
    let (table, stats) = dataset.snapshot();
    let keys = table.schema().key_indices();
    let id_risk = identity_risk(&table, &keys);
    let attr_risk = attribute_risk(&table, &keys, &table.schema().confidential_indices());
    let mut result = JsonValue::object();
    result.set("rows", JsonValue::Int(table.n_rows() as i64));
    result.set("max_p", JsonValue::Int(stats.max_p() as i64));
    match requested_p {
        Some(p) => {
            result.set("requested_p", JsonValue::Int(p as i64));
            result.set(
                "satisfiable",
                JsonValue::Bool((p as usize) <= stats.max_p()),
            );
        }
        None => {
            result.set("requested_p", JsonValue::Null);
            result.set("satisfiable", JsonValue::Null);
        }
    }
    let mut identity = JsonValue::object();
    identity.set("max_risk", JsonValue::Float(id_risk.max_risk));
    identity.set("avg_risk", JsonValue::Float(id_risk.avg_risk));
    identity.set("uniques", JsonValue::Int(id_risk.uniques as i64));
    result.set("identity_risk", identity);
    let mut attribute = JsonValue::object();
    attribute.set("disclosures", JsonValue::Int(attr_risk.disclosures as i64));
    attribute.set(
        "affected_groups",
        JsonValue::Int(attr_risk.affected_groups as i64),
    );
    attribute.set(
        "affected_fraction",
        JsonValue::Float(attr_risk.affected_fraction),
    );
    result.set("attribute_risk", attribute);
    Ok(result)
}

/// `anonymize {dataset, model?, p?/l?/t_ppm?, k?, ts?, threads?,
/// timeout_ms?, max_nodes?, no_cache?, include_masked?}`: Samarati's
/// search with the paper's necessary-condition pruning, budgeted by the
/// request deadline and the request's cancel token, consulting the
/// dataset's warm verdict store for `(model, k, ts)` unless `no_cache`.
/// Non-monotone models get a closure-free store from the same pool; the
/// two knobs never double-disable each other.
///
/// `timeout_ms` is measured from request **arrival**, so time queued at the
/// admission gate counts against the deadline — an overloaded server
/// answers "deadline exceeded" rather than holding the request past the
/// point the client stopped caring.
///
/// The response's `verdict` object is a pure function of (dataset,
/// parameters) for completed runs — byte-identical across repeats, warm or
/// cold, serial or concurrent — which the differential oracle relies on.
/// Execution-dependent fields (`warm`, `search` stats) live outside it.
fn anonymize_op(
    state: &ServerState,
    request: &JsonValue,
    token: &CancelToken,
    arrival: Instant,
) -> OpResult {
    let dataset = lookup_dataset(state, request)?;
    let k = param_u32(request, "k", 2)?;
    let spec = param_model(request, 1)?;
    let ts = param_usize(request, "ts", 0)?;
    let threads = param_usize(request, "threads", 0)?;
    let no_cache = param_bool(request, "no_cache", false)?;
    let include_masked = param_bool(request, "include_masked", false)?;
    let mut budget = SearchBudget::unlimited().with_cancel(token.clone());
    if let Some(value) = request.get("timeout_ms") {
        let ms = value
            .as_u64()
            .map_err(|e| bad(format!("`timeout_ms`: {e}")))?;
        budget = budget.with_deadline(arrival + Duration::from_millis(ms));
    }
    if let Some(value) = request.get("max_nodes") {
        let n = value
            .as_u64()
            .map_err(|e| bad(format!("`max_nodes`: {e}")))?;
        budget = budget.with_max_nodes(n);
    }
    // One read-lock hold yields a (store, table, stats) triple that is
    // consistent even while `update`s race: the pooled store always matches
    // the table version (apply_delta swaps invalidated pools under the same
    // lock), and the search reuses the incrementally-maintained statistics
    // instead of recomputing them from scratch.
    let (store, warm, table, stats) = match no_cache {
        true => {
            let (table, stats) = dataset.snapshot();
            (None, false, table, stats)
        }
        false => {
            let (store, warm, table, stats) =
                state.registry.snapshot_with_store(&dataset, spec, k, ts);
            (Some(store), warm, table, stats)
        }
    };
    let tuning = Tuning {
        threads,
        cache: store.as_deref(),
        chunk_rows: 0,
    };
    let outcome = pk_minimal_generalization_model_with_stats(
        &table,
        &dataset.qi,
        spec,
        k,
        ts,
        Pruning::NecessaryConditions,
        &budget,
        tuning,
        &NoopObserver,
        &stats,
    )
    .map_err(|e| (codes::INTERNAL, e.to_string()))?;
    let mut result = JsonValue::object();
    result.set(
        "verdict",
        verdict_json(&dataset.qi, spec, &outcome, include_masked),
    );
    result.set("warm", JsonValue::Bool(warm));
    result.set("search", outcome.stats.to_json());
    Ok(result)
}

/// The pure-function `verdict` object shared by `anonymize`, `watch`, and
/// `update` re-verification: byte-identical for equal (dataset, model,
/// parameters), with no execution-dependent fields.
fn verdict_json(
    qi: &QiSpace,
    spec: ModelSpec,
    outcome: &SearchOutcome,
    include_masked: bool,
) -> JsonValue {
    let mut verdict = JsonValue::object();
    verdict.set("model", JsonValue::Str(spec.name().to_owned()));
    verdict.set("param", JsonValue::Int(spec.param() as i64));
    verdict.set("satisfied", JsonValue::Bool(outcome.node.is_some()));
    verdict.set(
        "termination",
        JsonValue::Str(outcome.termination.as_str().to_owned()),
    );
    match &outcome.node {
        Some(node) => {
            verdict.set("node", JsonValue::Str(qi.describe_node(node)));
            verdict.set(
                "node_levels",
                JsonValue::Array(
                    node.levels()
                        .iter()
                        .map(|&l| JsonValue::Int(l as i64))
                        .collect(),
                ),
            );
            verdict.set("height", JsonValue::Int(node.height() as i64));
            verdict.set("suppressed", JsonValue::Int(outcome.suppressed as i64));
            if include_masked {
                let masked = outcome.masked.as_ref().expect("masked accompanies node");
                verdict.set("masked_csv", JsonValue::Str(to_csv_string(masked, true)));
            }
        }
        None => {
            verdict.set("node", JsonValue::Null);
            verdict.set("node_levels", JsonValue::Null);
            verdict.set("height", JsonValue::Null);
            verdict.set("suppressed", JsonValue::Null);
        }
    }
    verdict.set(
        "proven_min_height",
        JsonValue::Int(outcome.proven_min_height as i64),
    );
    verdict
}

/// Runs the watched search for `(model, k, ts)` against a consistent
/// snapshot of the dataset (store, table, and stats acquired under one
/// read-lock hold), consulting (and warming) the pooled verdict store, and
/// returns the pure-function verdict object.
///
/// A search that did not run to completion (the request's token was
/// cancelled) is reported as an `interrupted` error rather than a verdict:
/// watch results are compared and stored as the spec's last published
/// verdict, and a best-so-far partial answer must never enter that
/// comparison.
fn watched_verdict(
    state: &ServerState,
    dataset: &Arc<crate::registry::Dataset>,
    spec: ModelSpec,
    k: u32,
    ts: usize,
    token: &CancelToken,
) -> Result<JsonValue, (&'static str, String)> {
    let budget = SearchBudget::unlimited().with_cancel(token.clone());
    let (store, _, table, stats) = state.registry.snapshot_with_store(dataset, spec, k, ts);
    let tuning = Tuning {
        threads: 0,
        cache: Some(&store),
        chunk_rows: 0,
    };
    let outcome = pk_minimal_generalization_model_with_stats(
        &table,
        &dataset.qi,
        spec,
        k,
        ts,
        Pruning::NecessaryConditions,
        &budget,
        tuning,
        &NoopObserver,
        &stats,
    )
    .map_err(|e| (codes::INTERNAL, e.to_string()))?;
    if !outcome.termination.is_complete() {
        return Err((
            codes::INTERRUPTED,
            format!(
                "watch re-verification did not complete ({})",
                outcome.termination.as_str()
            ),
        ));
    }
    Ok(verdict_json(&dataset.qi, spec, &outcome, false))
}

/// `update {dataset, appends?, deletes?}`: applies a delta batch to the
/// live table (journaled write-ahead with a state dir), selectively
/// invalidates every warm verdict store via the Conditions 1/2 bounds
/// (`psens_core::invalidation_for`) — apply and invalidation are one
/// atomic step under the dataset's write lock, see
/// `Dataset::apply_delta` — and re-verifies active watches, republishing
/// a verdict only when it changed.
///
/// `appends` is an array of rows, each an array of rendered cell strings
/// in schema order (`""` = missing); `deletes` is an array of current row
/// indices (the batch deletes first, then appends, exactly like
/// `DeltaBatch::apply`).
///
/// Once the batch is journaled and applied, the op always acknowledges it
/// with `ok` — a watch re-verification that fails (cancelled mid-run, or a
/// search error) lands in `watches.errors` instead of failing the op,
/// because an error response for a committed update would invite a client
/// retry that double-applies the batch.
fn update_op(state: &ServerState, request: &JsonValue, token: &CancelToken) -> OpResult {
    let dataset = lookup_dataset(state, request)?;
    let appends: Vec<Vec<String>> = match request.get("appends") {
        None => Vec::new(),
        Some(value) => value
            .as_array()
            .map_err(|e| bad(format!("`appends`: {e}")))?
            .iter()
            .map(|row| {
                row.as_array()
                    .map_err(|e| bad(format!("`appends`: each row must be an array ({e})")))?
                    .iter()
                    .map(|cell| {
                        cell.as_str().map(str::to_owned).map_err(|e| {
                            bad(format!("`appends`: each cell must be a string ({e})"))
                        })
                    })
                    .collect()
            })
            .collect::<Result<_, _>>()?,
    };
    let deletes: Vec<usize> = match request.get("deletes") {
        None => Vec::new(),
        Some(value) => value
            .as_array()
            .map_err(|e| bad(format!("`deletes`: {e}")))?
            .iter()
            .map(|ix| ix.as_usize().map_err(|e| bad(format!("`deletes`: {e}"))))
            .collect::<Result<_, _>>()?,
    };
    if appends.is_empty() && deletes.is_empty() {
        return Err(bad("empty update: provide `appends` and/or `deletes`"));
    }
    let rows = {
        let table = dataset.table();
        parse_cells(table.schema(), &appends).map_err(bad)?
    };
    let batch = DeltaBatch {
        appends: rows,
        deletes,
    };
    // Apply + selective pool invalidation happen atomically under the
    // dataset's write lock; the returned outcome pairs the effect with the
    // post-batch statistics, row count, and invalidation tallies of *this*
    // batch, untainted by racing updates.
    let outcome = state.registry.apply_delta(&dataset, &batch).map_err(bad)?;
    // Re-verify watches; republish only verdicts that changed. From here
    // on the batch is committed, so per-watch failures are reported in the
    // response instead of failing the op.
    let mut checked = 0i64;
    let mut flipped = 0i64;
    let mut changed = Vec::new();
    let mut errors = Vec::new();
    for watch in dataset.watch_snapshot() {
        checked += 1;
        let verdict = match watched_verdict(state, &dataset, watch.model, watch.k, watch.ts, token)
        {
            Ok(verdict) => verdict,
            Err((code, message)) => {
                let mut entry = JsonValue::object();
                entry.set("model", JsonValue::Str(watch.model.name().to_owned()));
                entry.set("param", JsonValue::Int(watch.model.param() as i64));
                entry.set("k", JsonValue::Int(i64::from(watch.k)));
                entry.set("ts", JsonValue::Int(watch.ts as i64));
                entry.set("code", JsonValue::Str(code.to_owned()));
                entry.set("error", JsonValue::Str(message));
                errors.push(entry);
                continue;
            }
        };
        let text = verdict.to_json();
        if watch.last.as_deref() == Some(text.as_str()) {
            continue;
        }
        if watch.last.is_some() {
            flipped += 1;
        }
        dataset.set_watch_verdict(watch.model, watch.k, watch.ts, text);
        let mut entry = JsonValue::object();
        entry.set("model", JsonValue::Str(watch.model.name().to_owned()));
        entry.set("param", JsonValue::Int(watch.model.param() as i64));
        entry.set("k", JsonValue::Int(i64::from(watch.k)));
        entry.set("ts", JsonValue::Int(watch.ts as i64));
        entry.set("verdict", verdict);
        changed.push(entry);
    }
    let mut result = JsonValue::object();
    result.set("dataset", JsonValue::Str(dataset.name.clone()));
    result.set("appended", JsonValue::Int(outcome.effect.appended as i64));
    result.set("deleted", JsonValue::Int(outcome.effect.deleted as i64));
    result.set("rows", JsonValue::Int(outcome.rows as i64));
    result.set(
        "deltas_applied",
        JsonValue::Int(outcome.deltas_applied as i64),
    );
    result.set("net_zero", JsonValue::Bool(outcome.effect.net_zero));
    result.set("append_only", JsonValue::Bool(outcome.effect.append_only));
    let mut invalidation = JsonValue::object();
    invalidation.set("kept", JsonValue::Int(outcome.kept as i64));
    invalidation.set("invalidated", JsonValue::Int(outcome.invalidated as i64));
    result.set("invalidation", invalidation);
    let mut watches = JsonValue::object();
    watches.set("checked", JsonValue::Int(checked));
    watches.set("flipped", JsonValue::Int(flipped));
    watches.set("changed", JsonValue::Array(changed));
    watches.set("errors", JsonValue::Array(errors));
    result.set("watches", watches);
    Ok(result)
}

/// `watch {dataset, model?, p?/l?/t_ppm?, k?, ts?}`: registers a spec to
/// re-verify after every `update` to the dataset, runs the baseline search
/// now, and returns its verdict. Watching an already-watched spec is
/// idempotent (`registered: false`) and keeps the stored last verdict.
fn watch_op(state: &ServerState, request: &JsonValue, token: &CancelToken) -> OpResult {
    let dataset = lookup_dataset(state, request)?;
    let k = param_u32(request, "k", 2)?;
    let spec = param_model(request, 1)?;
    let ts = param_usize(request, "ts", 0)?;
    let registered = dataset.register_watch(spec, k, ts);
    let verdict = watched_verdict(state, &dataset, spec, k, ts, token)?;
    dataset.set_watch_verdict(spec, k, ts, verdict.to_json());
    let mut result = JsonValue::object();
    result.set("dataset", JsonValue::Str(dataset.name.clone()));
    result.set("model", JsonValue::Str(spec.name().to_owned()));
    result.set("param", JsonValue::Int(spec.param() as i64));
    result.set("k", JsonValue::Int(i64::from(k)));
    result.set("ts", JsonValue::Int(ts as i64));
    result.set("registered", JsonValue::Bool(registered));
    result.set("verdict", verdict);
    Ok(result)
}

/// `query {dataset, sql}`: the CLI `query` against the interned table
/// (registered as `data`).
fn query_op(state: &ServerState, request: &JsonValue) -> OpResult {
    let dataset = lookup_dataset(state, request)?;
    let sql = param_str(request, "sql")?;
    let table = dataset.table();
    let mut catalog = psens_sql::Catalog::new();
    catalog.register("data", &table);
    let table = psens_sql::execute(&catalog, sql).map_err(|e| bad(e.to_string()))?;
    let mut result = JsonValue::object();
    result.set("rows", JsonValue::Int(table.n_rows() as i64));
    result.set("text", JsonValue::Str(psens_microdata::render(&table, 100)));
    Ok(result)
}

/// `sleep {ms}`: a diagnostic op that occupies an admission slot for `ms`
/// milliseconds, polling its cancel token. Lets tests exercise queueing,
/// shedding, and disconnect-cancellation deterministically without a large
/// dataset.
fn sleep_op(request: &JsonValue, token: &CancelToken) -> OpResult {
    let ms = param_u32(request, "ms", 0)? as u64;
    let step = Duration::from_millis(10);
    let mut remaining = Duration::from_millis(ms);
    while remaining > Duration::ZERO {
        if token.is_cancelled() {
            return Err((codes::INTERRUPTED, "sleep cancelled".to_owned()));
        }
        let nap = remaining.min(step);
        thread::sleep(nap);
        remaining -= nap;
    }
    let mut result = JsonValue::object();
    result.set("slept_ms", JsonValue::Int(ms as i64));
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_datasets::fixtures::adult_fixture;

    /// A bare in-process `ServerState` — no sockets, no threads — for
    /// driving ops directly.
    fn test_state() -> ServerState {
        ServerState {
            registry: Registry::new(),
            gate: Gate::new(1, 1),
            shutdown: CancelToken::new(),
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            started: Instant::now(),
            config: ServerConfig::default(),
            recovery: RecoveryStats::default(),
            faults: Mutex::new(None),
            requests_served: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            idle_reaped: AtomicU64::new(0),
            stall_reaped: AtomicU64::new(0),
            frames_too_large: AtomicU64::new(0),
            malformed_frames: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
        }
    }

    /// A committed delta must be acknowledged even when a watch
    /// re-verification fails: the failure lands in `watches.errors`, the
    /// op returns `ok`, and no partial verdict is published — an error
    /// response here would invite a client retry that double-applies the
    /// already-journaled batch.
    #[test]
    fn committed_update_reports_watch_failures_instead_of_erroring() {
        let state = test_state();
        let fixture = adult_fixture(21, 80);
        let dataset = state
            .registry
            .register("adult", &fixture.csv, fixture.spec)
            .unwrap();
        dataset.register_watch(ModelSpec::PSensitiveK { p: 2 }, 3, 10);

        let mut request = JsonValue::object();
        request.set("dataset", JsonValue::Str("adult".into()));
        request.set("deletes", JsonValue::Array(vec![JsonValue::Int(0)]));

        // Cancel the request token before the watch search runs: the
        // search terminates `cancelled`, so re-verification cannot yield a
        // publishable verdict — but the batch is already applied.
        let token = CancelToken::new();
        token.cancel();
        let result = update_op(&state, &request, &token).expect("committed update must be ok");
        assert_eq!(result.require("rows").unwrap().as_u64().unwrap(), 79);
        assert_eq!(dataset.deltas_applied(), 1);
        let watches = result.require("watches").unwrap();
        assert_eq!(watches.require("checked").unwrap().as_u64().unwrap(), 1);
        assert_eq!(watches.require("flipped").unwrap().as_u64().unwrap(), 0);
        assert!(watches
            .require("changed")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        let errors = watches
            .require("errors")
            .unwrap()
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(errors.len(), 1, "the failed watch is reported");
        assert_eq!(
            errors[0].require("code").unwrap().as_str().unwrap(),
            codes::INTERRUPTED
        );
        assert!(
            dataset.watch_snapshot()[0].last.is_none(),
            "no partial verdict may be published as the watch's last"
        );

        // The same update with a live token re-verifies cleanly: the watch
        // publishes its baseline and `errors` is empty.
        let result = update_op(&state, &request, &CancelToken::new()).unwrap();
        let watches = result.require("watches").unwrap();
        assert!(watches
            .require("errors")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        assert_eq!(
            watches
                .require("changed")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            1,
            "first successful re-verification publishes the baseline"
        );
    }
}
