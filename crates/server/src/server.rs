//! The daemon: a TCP accept loop, per-connection handler threads, an
//! admission gate bounding concurrent work, and per-request cancellation.
//!
//! ## Cancellation topology
//!
//! Every request gets its own [`CancelToken`] created as a *child* of the
//! server's shutdown token ([`CancelToken::child`]). Tripping the server
//! token (SIGINT, `shutdown` op) fans out to every in-flight request;
//! tripping one request's token — which is what the disconnect watcher does
//! when that request's client goes away — cannot leak into any other
//! request. The CLI's cancellation hook is a process-global one-shot SIGINT
//! token; reusing it for disconnects would make one client's hangup abort
//! every concurrent search, which the
//! `disconnect_cancels_only_its_own_request` test pins against.
//!
//! ## Admission
//!
//! Work ops (`register`, `check`, `analyze`, `anonymize`, `query`, `sleep`)
//! pass through a counting [`Gate`] before executing. A queued request polls
//! its cancel token while waiting, so a client that disconnects — or a
//! server that shuts down — releases its queue slot promptly instead of
//! executing doomed work.

use crate::protocol::{codes, error_response, ok_response, read_frame, write_frame};
use crate::registry::Registry;
use psens_algorithms::samarati::{pk_minimal_generalization_tuned, Pruning};
use psens_algorithms::Tuning;
use psens_core::conditions::ConfidentialStats;
use psens_core::{
    check_p_sensitivity, max_k, max_p_of_masked, CancelToken, NoopObserver, SearchBudget,
};
use psens_datasets::Spec;
use psens_metrics::{attribute_risk, identity_risk};
use psens_microdata::csv::to_csv_string;
use psens_microdata::JsonValue;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Maximum work ops executing at once; further requests queue at the
    /// admission gate. `0` is treated as `1`.
    pub max_concurrent: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".to_owned(),
            max_concurrent: 2,
        }
    }
}

/// Counting semaphore bounding concurrent work-op executions.
struct Gate {
    permits: Mutex<usize>,
    cv: Condvar,
}

/// Holds one admission permit; released (and the queue notified) on drop.
struct GatePermit<'a> {
    gate: &'a Gate,
}

impl Gate {
    fn new(permits: usize) -> Gate {
        Gate {
            permits: Mutex::new(permits.max(1)),
            cv: Condvar::new(),
        }
    }

    /// Waits for a permit, polling `cancel` so a dead request leaves the
    /// queue instead of occupying a slot. `None` means the request was
    /// cancelled while queued.
    fn acquire(&self, cancel: &CancelToken) -> Option<GatePermit<'_>> {
        let mut permits = self.permits.lock().expect("gate poisoned");
        loop {
            if cancel.is_cancelled() {
                return None;
            }
            if *permits > 0 {
                *permits -= 1;
                return Some(GatePermit { gate: self });
            }
            let (guard, _) = self
                .cv
                .wait_timeout(permits, Duration::from_millis(20))
                .expect("gate poisoned");
            permits = guard;
        }
    }
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        *self.gate.permits.lock().expect("gate poisoned") += 1;
        self.gate.cv.notify_one();
    }
}

/// Watches a connection while a request executes: if the client goes away
/// (EOF or a socket error on `peek`), the *request's own* token is
/// cancelled. Stopped and joined on drop, so a finished request never leaves
/// a watcher behind to misfire on a later request's lifetime.
struct DisconnectWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl DisconnectWatcher {
    /// Poll period: also the worst-case latency `Drop` spends joining the
    /// watcher after a request finishes, so it is load-bearing for request
    /// latency, not just disconnect-detection lag.
    const POLL: Duration = Duration::from_millis(3);

    fn spawn(stream: &TcpStream, token: CancelToken) -> io::Result<DisconnectWatcher> {
        let peek = stream.try_clone()?;
        peek.set_read_timeout(Some(DisconnectWatcher::POLL))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = thread::spawn(move || {
            let mut buf = [0u8; 1];
            while !stop_flag.load(Ordering::Acquire) {
                match peek.peek(&mut buf) {
                    // EOF: the client closed its end mid-request.
                    Ok(0) => {
                        token.cancel();
                        break;
                    }
                    // Bytes waiting (a pipelined request): client is alive.
                    Ok(_) => thread::sleep(DisconnectWatcher::POLL),
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut => {}
                    Err(_) => {
                        token.cancel();
                        break;
                    }
                }
            }
        });
        Ok(DisconnectWatcher {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for DisconnectWatcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// State shared by the acceptor and every connection handler.
pub struct ServerState {
    /// The dataset registry.
    pub registry: Registry,
    gate: Gate,
    shutdown: CancelToken,
    addr: SocketAddr,
    requests_served: AtomicU64,
    max_concurrent: usize,
}

/// A running server: bound address plus the handle to stop and join it.
pub struct ServerHandle {
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The server's shutdown token; `cancel()` initiates shutdown exactly
    /// like SIGINT or the `shutdown` op.
    pub fn shutdown_token(&self) -> CancelToken {
        self.state.shutdown.clone()
    }

    /// Trips the shutdown token, wakes the acceptor, and joins it. Requests
    /// already executing observe the cancellation through their child
    /// tokens and finish as interrupted.
    pub fn shutdown(&mut self) {
        self.state.shutdown.cancel();
        wake_acceptor(self.state.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }

    /// Total requests served so far (all ops, success or failure).
    pub fn requests_served(&self) -> u64 {
        self.state.requests_served.load(Ordering::Relaxed)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The acceptor blocks in `accept`; a throwaway connection wakes it so it
/// can observe the tripped shutdown token and exit.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
}

/// Binds `config.listen` and starts the accept loop on a background thread.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.listen)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        registry: Registry::new(),
        gate: Gate::new(config.max_concurrent),
        shutdown: CancelToken::new(),
        addr,
        requests_served: AtomicU64::new(0),
        max_concurrent: config.max_concurrent.max(1),
    });
    let accept_state = Arc::clone(&state);
    let acceptor = thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_state.shutdown.is_cancelled() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let conn_state = Arc::clone(&accept_state);
            thread::spawn(move || handle_connection(&conn_state, stream));
        }
    });
    Ok(ServerHandle {
        state,
        acceptor: Some(acceptor),
    })
}

/// Reads frames off one connection and answers them in order. Returns when
/// the client closes, a frame is malformed, or the server shuts down.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    // Responses are one small frame per request; letting Nagle hold them
    // for the delayed-ACK timer adds ~40ms to every round trip.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(&stream);
    loop {
        let request = match read_frame(&mut reader) {
            Ok(Some(request)) => request,
            // Clean close or broken pipe: either way the conversation ends.
            Ok(None) | Err(_) => return,
        };
        let id = request.get("id").and_then(|v| v.as_i64().ok()).unwrap_or(0);
        let response = dispatch(state, id, &request, &stream);
        // The disconnect watcher's poll-period read timeout lives on the shared
        // socket (SO_RCVTIMEO is per-socket, not per-clone); restore
        // blocking reads so an idle client is not mistaken for a dead one.
        let _ = stream.set_read_timeout(None);
        state.requests_served.fetch_add(1, Ordering::Relaxed);
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
        // The shutdown op answers its own request, then closes.
        if request.get("op").and_then(|v| v.as_str().ok()) == Some("shutdown") {
            return;
        }
    }
}

/// Routes one request to its op handler, wrapping admission and per-request
/// cancellation around the work ops.
fn dispatch(
    state: &Arc<ServerState>,
    id: i64,
    request: &JsonValue,
    stream: &TcpStream,
) -> JsonValue {
    let op = match request.get("op").and_then(|v| v.as_str().ok()) {
        Some(op) => op,
        None => return error_response(id, codes::BAD_REQUEST, "missing `op`"),
    };
    match op {
        "stats" => ok_response(id, stats_op(state)),
        "shutdown" => {
            state.shutdown.cancel();
            wake_acceptor(state.addr);
            let mut result = JsonValue::object();
            result.set("stopping", JsonValue::Bool(true));
            ok_response(id, result)
        }
        "register" | "check" | "analyze" | "anonymize" | "query" | "sleep" => {
            if state.shutdown.is_cancelled() {
                return error_response(id, codes::SHUTTING_DOWN, "server is shutting down");
            }
            // Per-request token: observes server shutdown through the parent
            // link; tripped individually by this request's own disconnect.
            let token = state.shutdown.child();
            // A failed clone just means no disconnect watching; the request
            // still honors deadlines and server shutdown.
            let watcher = DisconnectWatcher::spawn(stream, token.clone()).ok();
            let Some(_permit) = state.gate.acquire(&token) else {
                return error_response(
                    id,
                    codes::INTERRUPTED,
                    "request cancelled while queued for admission",
                );
            };
            let outcome = match op {
                "register" => register_op(state, request),
                "check" => check_op(state, request),
                "analyze" => analyze_op(state, request),
                "anonymize" => anonymize_op(state, request, &token),
                "query" => query_op(state, request),
                "sleep" => sleep_op(request, &token),
                _ => unreachable!("matched above"),
            };
            drop(watcher);
            match outcome {
                Ok(result) => ok_response(id, result),
                Err((code, message)) => error_response(id, code, &message),
            }
        }
        other => error_response(id, codes::BAD_REQUEST, &format!("unknown op `{other}`")),
    }
}

type OpResult = Result<JsonValue, (&'static str, String)>;

fn bad(message: impl Into<String>) -> (&'static str, String) {
    (codes::BAD_REQUEST, message.into())
}

fn param_str<'a>(request: &'a JsonValue, key: &str) -> Result<&'a str, (&'static str, String)> {
    request
        .get(key)
        .ok_or_else(|| bad(format!("missing `{key}`")))?
        .as_str()
        .map_err(|e| bad(format!("`{key}`: {e}")))
}

fn param_u32(request: &JsonValue, key: &str, default: u32) -> Result<u32, (&'static str, String)> {
    match request.get(key) {
        None => Ok(default),
        Some(value) => value
            .as_u64()
            .ok()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| bad(format!("`{key}` must be a u32"))),
    }
}

fn param_usize(
    request: &JsonValue,
    key: &str,
    default: usize,
) -> Result<usize, (&'static str, String)> {
    match request.get(key) {
        None => Ok(default),
        Some(value) => value.as_usize().map_err(|e| bad(format!("`{key}`: {e}"))),
    }
}

fn param_bool(
    request: &JsonValue,
    key: &str,
    default: bool,
) -> Result<bool, (&'static str, String)> {
    match request.get(key) {
        None => Ok(default),
        Some(value) => value.as_bool().map_err(|e| bad(format!("`{key}`: {e}"))),
    }
}

fn lookup_dataset(
    state: &ServerState,
    request: &JsonValue,
) -> Result<Arc<crate::registry::Dataset>, (&'static str, String)> {
    let name = param_str(request, "dataset")?;
    state
        .registry
        .get(name)
        .ok_or((codes::NOT_FOUND, format!("no dataset `{name}`")))
}

fn stats_op(state: &ServerState) -> JsonValue {
    let mut result = state.registry.to_json();
    result.set(
        "requests_served",
        JsonValue::Int(state.requests_served.load(Ordering::Relaxed) as i64),
    );
    result.set(
        "max_concurrent",
        JsonValue::Int(state.max_concurrent as i64),
    );
    result
}

/// `register {name, csv, spec}`: parse once, serve many. `spec` is the same
/// JSON object the CLI's `--spec` file holds.
fn register_op(state: &ServerState, request: &JsonValue) -> OpResult {
    let name = param_str(request, "name")?;
    let csv = param_str(request, "csv")?;
    let spec_value = request.get("spec").ok_or_else(|| bad("missing `spec`"))?;
    let spec = Spec::from_json(&spec_value.to_json()).map_err(bad)?;
    let dataset = state.registry.register(name, csv, spec).map_err(|e| {
        match e.contains("already registered") {
            true => (codes::CONFLICT, e),
            false => bad(e),
        }
    })?;
    let mut result = JsonValue::object();
    result.set("name", JsonValue::Str(dataset.name.clone()));
    result.set("rows", JsonValue::Int(dataset.table.n_rows() as i64));
    result.set(
        "lattice_nodes",
        JsonValue::Int(dataset.qi.lattice().node_count() as i64),
    );
    Ok(result)
}

/// `check {dataset, p?, k?}`: the CLI `check` verdict on the interned table
/// (whole-table serial path — identical results to the chunked one).
fn check_op(state: &ServerState, request: &JsonValue) -> OpResult {
    let dataset = lookup_dataset(state, request)?;
    let k = param_u32(request, "k", 2)?;
    let p = param_u32(request, "p", 2)?;
    let schema = dataset.table.schema();
    let keys = schema.key_indices();
    let conf = schema.confidential_indices();
    let report = check_p_sensitivity(&dataset.table, &keys, &conf, p, k);
    let maxk = max_k(&dataset.table, &keys);
    let maxp = max_p_of_masked(&dataset.table, &keys, &conf);
    let mut result = JsonValue::object();
    result.set("rows", JsonValue::Int(dataset.table.n_rows() as i64));
    result.set("n_groups", JsonValue::Int(report.n_groups as i64));
    result.set("k", JsonValue::Int(k as i64));
    result.set("p", JsonValue::Int(p as i64));
    result.set("k_anonymous", JsonValue::Bool(report.k_anonymous));
    result.set("max_k", JsonValue::Int(maxk as i64));
    result.set("max_p", JsonValue::Int(maxp as i64));
    result.set("p_sensitive", JsonValue::Bool(report.violations.is_empty()));
    result.set("violations", JsonValue::Int(report.violations.len() as i64));
    result.set("satisfied", JsonValue::Bool(report.satisfied()));
    Ok(result)
}

/// `analyze {dataset, p?}`: Condition 1 bound and disclosure risks.
fn analyze_op(state: &ServerState, request: &JsonValue) -> OpResult {
    let dataset = lookup_dataset(state, request)?;
    let requested_p = match request.get("p") {
        Some(value) => Some(
            value
                .as_u64()
                .ok()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| bad("`p` must be a u32"))?,
        ),
        None => None,
    };
    let schema = dataset.table.schema();
    let keys = schema.key_indices();
    let conf = schema.confidential_indices();
    let stats = ConfidentialStats::compute(&dataset.table, &conf);
    let id_risk = identity_risk(&dataset.table, &keys);
    let attr_risk = attribute_risk(&dataset.table, &keys, &conf);
    let mut result = JsonValue::object();
    result.set("rows", JsonValue::Int(dataset.table.n_rows() as i64));
    result.set("max_p", JsonValue::Int(stats.max_p() as i64));
    match requested_p {
        Some(p) => {
            result.set("requested_p", JsonValue::Int(p as i64));
            result.set(
                "satisfiable",
                JsonValue::Bool((p as usize) <= stats.max_p()),
            );
        }
        None => {
            result.set("requested_p", JsonValue::Null);
            result.set("satisfiable", JsonValue::Null);
        }
    }
    let mut identity = JsonValue::object();
    identity.set("max_risk", JsonValue::Float(id_risk.max_risk));
    identity.set("avg_risk", JsonValue::Float(id_risk.avg_risk));
    identity.set("uniques", JsonValue::Int(id_risk.uniques as i64));
    result.set("identity_risk", identity);
    let mut attribute = JsonValue::object();
    attribute.set("disclosures", JsonValue::Int(attr_risk.disclosures as i64));
    attribute.set(
        "affected_groups",
        JsonValue::Int(attr_risk.affected_groups as i64),
    );
    attribute.set(
        "affected_fraction",
        JsonValue::Float(attr_risk.affected_fraction),
    );
    result.set("attribute_risk", attribute);
    Ok(result)
}

/// `anonymize {dataset, p?, k?, ts?, threads?, timeout_ms?, max_nodes?,
/// no_cache?, include_masked?}`: Samarati's search with the paper's
/// necessary-condition pruning, budgeted by the request deadline and the
/// request's cancel token, consulting the dataset's warm verdict store for
/// `(p, k, ts)` unless `no_cache`.
///
/// The response's `verdict` object is a pure function of (dataset,
/// parameters) for completed runs — byte-identical across repeats, warm or
/// cold, serial or concurrent — which the differential oracle relies on.
/// Execution-dependent fields (`warm`, `search` stats) live outside it.
fn anonymize_op(state: &ServerState, request: &JsonValue, token: &CancelToken) -> OpResult {
    let dataset = lookup_dataset(state, request)?;
    let k = param_u32(request, "k", 2)?;
    let p = param_u32(request, "p", 1)?;
    let ts = param_usize(request, "ts", 0)?;
    let threads = param_usize(request, "threads", 0)?;
    let no_cache = param_bool(request, "no_cache", false)?;
    let include_masked = param_bool(request, "include_masked", false)?;
    let mut budget = SearchBudget::unlimited().with_cancel(token.clone());
    if let Some(value) = request.get("timeout_ms") {
        let ms = value
            .as_u64()
            .map_err(|e| bad(format!("`timeout_ms`: {e}")))?;
        budget = budget.with_timeout(Duration::from_millis(ms));
    }
    if let Some(value) = request.get("max_nodes") {
        let n = value
            .as_u64()
            .map_err(|e| bad(format!("`max_nodes`: {e}")))?;
        budget = budget.with_max_nodes(n);
    }
    let (store, warm) = match no_cache {
        true => (None, false),
        false => {
            let (store, warm) = dataset.store(p, k, ts);
            (Some(store), warm)
        }
    };
    let tuning = Tuning {
        threads,
        cache: store.as_deref(),
        chunk_rows: 0,
    };
    let outcome = pk_minimal_generalization_tuned(
        &dataset.table,
        &dataset.qi,
        p,
        k,
        ts,
        Pruning::NecessaryConditions,
        &budget,
        tuning,
        &NoopObserver,
    )
    .map_err(|e| (codes::INTERNAL, e.to_string()))?;
    let mut verdict = JsonValue::object();
    verdict.set("satisfied", JsonValue::Bool(outcome.node.is_some()));
    verdict.set(
        "termination",
        JsonValue::Str(outcome.termination.as_str().to_owned()),
    );
    match &outcome.node {
        Some(node) => {
            verdict.set("node", JsonValue::Str(dataset.qi.describe_node(node)));
            verdict.set(
                "node_levels",
                JsonValue::Array(
                    node.levels()
                        .iter()
                        .map(|&l| JsonValue::Int(l as i64))
                        .collect(),
                ),
            );
            verdict.set("height", JsonValue::Int(node.height() as i64));
            verdict.set("suppressed", JsonValue::Int(outcome.suppressed as i64));
            if include_masked {
                let masked = outcome.masked.as_ref().expect("masked accompanies node");
                verdict.set("masked_csv", JsonValue::Str(to_csv_string(masked, true)));
            }
        }
        None => {
            verdict.set("node", JsonValue::Null);
            verdict.set("node_levels", JsonValue::Null);
            verdict.set("height", JsonValue::Null);
            verdict.set("suppressed", JsonValue::Null);
        }
    }
    verdict.set(
        "proven_min_height",
        JsonValue::Int(outcome.proven_min_height as i64),
    );
    let mut result = JsonValue::object();
    result.set("verdict", verdict);
    result.set("warm", JsonValue::Bool(warm));
    result.set("search", outcome.stats.to_json());
    Ok(result)
}

/// `query {dataset, sql}`: the CLI `query` against the interned table
/// (registered as `data`).
fn query_op(state: &ServerState, request: &JsonValue) -> OpResult {
    let dataset = lookup_dataset(state, request)?;
    let sql = param_str(request, "sql")?;
    let mut catalog = psens_sql::Catalog::new();
    catalog.register("data", &dataset.table);
    let table = psens_sql::execute(&catalog, sql).map_err(|e| bad(e.to_string()))?;
    let mut result = JsonValue::object();
    result.set("rows", JsonValue::Int(table.n_rows() as i64));
    result.set("text", JsonValue::Str(psens_microdata::render(&table, 100)));
    Ok(result)
}

/// `sleep {ms}`: a diagnostic op that occupies an admission slot for `ms`
/// milliseconds, polling its cancel token. Lets tests exercise queueing and
/// disconnect-cancellation deterministically without a large dataset.
fn sleep_op(request: &JsonValue, token: &CancelToken) -> OpResult {
    let ms = param_u32(request, "ms", 0)? as u64;
    let step = Duration::from_millis(10);
    let mut remaining = Duration::from_millis(ms);
    while remaining > Duration::ZERO {
        if token.is_cancelled() {
            return Err((codes::INTERRUPTED, "sleep cancelled".to_owned()));
        }
        let nap = remaining.min(step);
        thread::sleep(nap);
        remaining -= nap;
    }
    let mut result = JsonValue::object();
    result.set("slept_ms", JsonValue::Int(ms as i64));
    Ok(result)
}
