//! The dataset registry: parse and intern a dataset once, serve many
//! requests against it.
//!
//! Each registered dataset keeps a pool of warm [`VerdictStore`]s keyed by
//! `(model, k, ts)`. A store's verdicts are only sound for one privacy
//! model and parameter configuration (see `psens_core::verdict`), so the
//! pool never shares a store across configurations — but repeated
//! `anonymize` requests with the *same* model and parameters replay each
//! other's node verdicts instead of re-running the kernel, which is where a
//! long-running daemon earns its keep over one-shot CLI invocations.
//! Stores for non-monotone models are created with closure inference off
//! ([`VerdictStore::for_model`]), so a pooled store can never smuggle an
//! unsound inferred verdict into a later request.

use crate::state::{SnapshotEntry, StateDir};
use psens_core::{
    invalidation_for, ConfidentialStats, DeltaEffect, Invalidation, LiveTable, ModelSpec,
    VerdictStore,
};
use psens_datasets::Spec;
use psens_hierarchy::QiSpace;
use psens_microdata::csv::read_table_str;
use psens_microdata::{DeltaBatch, JsonValue, Kind, Schema, Table, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A warm-pool key: `(dataset, model, k, ts)`.
pub type PoolKey = (String, ModelSpec, u32, usize);

/// Everything one [`Dataset::apply_delta`] call did, computed under a
/// single hold of the live write lock so every field describes the same
/// table version — the post-batch one. Pairing the effect with statistics
/// read after the lock dropped would let a racing second batch leak into
/// the invalidation judgement.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// How the batch changed the row multiset.
    pub effect: DeltaEffect,
    /// Confidential statistics of the table *after* the batch.
    pub stats: ConfidentialStats,
    /// Row count after the batch.
    pub rows: usize,
    /// Deltas applied since registration, after this batch.
    pub deltas_applied: u64,
    /// Verdicts kept across every warm pool by the invalidation pass.
    pub kept: u64,
    /// Verdicts dropped across every warm pool.
    pub invalidated: u64,
}

/// One `watch` registration: a spec to re-verify after every delta, plus
/// the last verdict published for it (serialized JSON, so "changed" is a
/// plain string compare on the exact bytes a client would receive).
#[derive(Debug, Clone)]
pub struct WatchEntry {
    /// Watched privacy model (with its parameter).
    pub model: ModelSpec,
    /// Watched k.
    pub k: u32,
    /// Watched suppression threshold.
    pub ts: usize,
    /// Serialized verdict last published for this spec (`None` until the
    /// baseline search runs).
    pub last: Option<String>,
}

/// One registered dataset: the live table (mutated only through
/// [`Dataset::apply_delta`]), its spec, the warm verdict-store pool, and
/// any active watches.
pub struct Dataset {
    /// Registry name.
    pub name: String,
    /// The parsed, interned table plus its incrementally-maintained
    /// confidential statistics. Columns are `Arc`-shared, so snapshot
    /// clones handed to requests are cheap.
    live: RwLock<LiveTable>,
    /// The spec the dataset was registered with.
    pub spec: Spec,
    /// QI space built once from the spec's key hierarchies.
    pub qi: QiSpace,
    stores: Mutex<HashMap<(ModelSpec, u32, usize), Arc<VerdictStore>>>,
    watches: Mutex<Vec<WatchEntry>>,
    warm_hits: AtomicU64,
    cold_misses: AtomicU64,
}

impl Dataset {
    /// A snapshot clone of the current table. Cheap (columns are shared);
    /// requests work against the snapshot so a concurrent `update` never
    /// mutates a table mid-search.
    pub fn table(&self) -> Table {
        self.live
            .read()
            .expect("live table poisoned")
            .table()
            .clone()
    }

    /// Current row count.
    pub fn n_rows(&self) -> usize {
        self.live
            .read()
            .expect("live table poisoned")
            .table()
            .n_rows()
    }

    /// Deltas applied since registration (journal replay included).
    pub fn deltas_applied(&self) -> u64 {
        self.live
            .read()
            .expect("live table poisoned")
            .deltas_applied()
    }

    /// The incrementally-maintained confidential statistics.
    pub fn stats(&self) -> ConfidentialStats {
        self.live.read().expect("live table poisoned").stats()
    }

    /// Table and statistics under one read lock — the pair is guaranteed
    /// consistent even while `update`s race, which is what `anonymize`
    /// needs to reuse the stats as a precomputed search input.
    pub fn snapshot(&self) -> (Table, ConfidentialStats) {
        let live = self.live.read().expect("live table poisoned");
        (live.table().clone(), live.stats())
    }

    /// Validates and applies a delta batch under the write lock, journaling
    /// it write-ahead when a state dir is configured. Journal order equals
    /// apply order because both happen under the same lock hold; a journal
    /// append failure fails the update (fail-closed, like `register`).
    /// `batch.validate` refuses empty-text cells, so the rendered journal
    /// encoding (`"" = Missing`) round-trips injectively on replay.
    ///
    /// Warm-pool invalidation also happens here, **before the write lock
    /// drops**, so delta apply and invalidation are one atomic step with
    /// respect to every search that acquires its `(store, table, stats)`
    /// through [`Registry::snapshot_with_store`]'s read-lock hold. Pools
    /// whose verdicts the batch could flip are *swapped* for a detached
    /// successor ([`VerdictStore::invalidated_successor`]) rather than
    /// pruned in place: an in-flight search still holding the pre-delta
    /// `Arc` keeps recording into the detached store, whose stale verdicts
    /// die with it instead of poisoning the pool the next request gets. A
    /// net-zero batch keeps the same `Arc` — the row multiset is unchanged,
    /// so pre-delta verdicts (including ones recorded late by in-flight
    /// searches) remain exactly right.
    pub fn apply_delta(
        &self,
        batch: &DeltaBatch,
        journal: Option<&StateDir>,
    ) -> Result<DeltaOutcome, String> {
        let mut live = self.live.write().expect("live table poisoned");
        batch.validate(live.table()).map_err(|e| e.to_string())?;
        if let Some(state) = journal {
            let appends: Vec<Vec<String>> = batch
                .appends
                .iter()
                .map(|row| row.iter().map(|v| v.render().into_owned()).collect())
                .collect();
            state
                .log_delta(&self.name, &appends, &batch.deletes)
                .map_err(|e| format!("state journal append failed: {e}"))?;
        }
        let effect = live.apply(batch).map_err(|e| e.to_string())?;
        let stats = live.stats();
        let mut kept = 0u64;
        let mut invalidated = 0u64;
        {
            // Lock order live → stores, same as `snapshot_with_store`.
            let mut stores = self.stores.lock().expect("store pool poisoned");
            for (&(model, k, _ts), store) in stores.iter_mut() {
                let policy = invalidation_for(&effect, &stats, &model, k as usize);
                let outcome = if matches!(policy, Invalidation::KeepAll) {
                    store.invalidate(policy)
                } else {
                    let (successor, outcome) = store.invalidated_successor(policy);
                    *store = Arc::new(successor);
                    outcome
                };
                kept += outcome.kept;
                invalidated += outcome.invalidated;
            }
        }
        Ok(DeltaOutcome {
            effect,
            stats,
            rows: live.table().n_rows(),
            deltas_applied: live.deltas_applied(),
            kept,
            invalidated,
        })
    }

    /// Registers a watch for `(model, k, ts)`. Returns `false` when the
    /// spec was already watched (the existing entry, and its last verdict,
    /// are kept).
    pub fn register_watch(&self, model: ModelSpec, k: u32, ts: usize) -> bool {
        let mut watches = self.watches.lock().expect("watches poisoned");
        if watches
            .iter()
            .any(|w| (w.model, w.k, w.ts) == (model, k, ts))
        {
            return false;
        }
        watches.push(WatchEntry {
            model,
            k,
            ts,
            last: None,
        });
        true
    }

    /// A snapshot of the active watches (registration order).
    pub fn watch_snapshot(&self) -> Vec<WatchEntry> {
        self.watches.lock().expect("watches poisoned").clone()
    }

    /// Records the verdict just published for a watched spec.
    pub fn set_watch_verdict(&self, model: ModelSpec, k: u32, ts: usize, verdict: String) {
        let mut watches = self.watches.lock().expect("watches poisoned");
        if let Some(entry) = watches
            .iter_mut()
            .find(|w| (w.model, w.k, w.ts) == (model, k, ts))
        {
            entry.last = Some(verdict);
        }
    }

    /// The warm store for `(model, k, ts)`, creating it on first use. The
    /// bool is `true` when the store already existed (a warm hit):
    /// subsequent searches replay its verdicts instead of re-checking
    /// nodes. New stores inherit the model's monotonicity, so pools for
    /// non-monotone models never perform closure inference.
    pub fn store(&self, model: ModelSpec, k: u32, ts: usize) -> (Arc<VerdictStore>, bool) {
        let mut stores = self.stores.lock().expect("store pool poisoned");
        match stores.get(&(model, k, ts)) {
            Some(store) => {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(store), true)
            }
            None => {
                self.cold_misses.fetch_add(1, Ordering::Relaxed);
                let store = Arc::new(VerdictStore::for_model(
                    &self.qi.lattice(),
                    ts,
                    model.is_monotone(),
                ));
                stores.insert((model, k, ts), Arc::clone(&store));
                (store, false)
            }
        }
    }

    /// Pool counters: `(warm_hits, cold_misses, live_stores)`.
    pub fn store_counters(&self) -> (u64, u64, usize) {
        let live = self.stores.lock().expect("store pool poisoned").len();
        (
            self.warm_hits.load(Ordering::Relaxed),
            self.cold_misses.load(Ordering::Relaxed),
            live,
        )
    }

    /// Drops the warm store for `(model, k, ts)` (memory-pressure
    /// eviction). In-flight searches holding the `Arc` finish unaffected;
    /// the next request for this key rebuilds the pool cold with identical
    /// verdicts.
    pub fn remove_store(&self, model: ModelSpec, k: u32, ts: usize) -> Option<Arc<VerdictStore>> {
        self.stores
            .lock()
            .expect("store pool poisoned")
            .remove(&(model, k, ts))
    }

    /// Every live pool, sorted by key — deterministic snapshot order.
    pub fn pools(&self) -> Vec<((ModelSpec, u32, usize), Arc<VerdictStore>)> {
        let stores = self.stores.lock().expect("store pool poisoned");
        let mut out: Vec<_> = stores
            .iter()
            .map(|(key, store)| (*key, Arc::clone(store)))
            .collect();
        out.sort_by_key(|(key, _)| *key);
        out
    }

    /// Approximate heap bytes held by this dataset's warm stores.
    pub fn pool_bytes(&self) -> u64 {
        self.pools()
            .iter()
            .map(|(_, store)| store.approx_bytes())
            .sum()
    }
}

/// Parses rendered cell strings back into typed values against `schema`
/// (`""` decodes to `Missing`, integers kind-aware) — shared by the
/// `update` op and journal replay so both construct identical rows.
pub fn parse_cells(schema: &Schema, rows: &[Vec<String>]) -> Result<Vec<Vec<Value>>, String> {
    let width = schema.attributes().len();
    rows.iter()
        .enumerate()
        .map(|(r, row)| {
            if row.len() != width {
                return Err(format!(
                    "append row {r} has {} cells, schema has {width}",
                    row.len()
                ));
            }
            row.iter()
                .enumerate()
                .map(|(c, cell)| {
                    let attr = schema.attribute(c);
                    if cell.is_empty() {
                        return Ok(Value::Missing);
                    }
                    Ok(match attr.kind() {
                        Kind::Int => Value::Int(cell.parse::<i64>().map_err(|_| {
                            format!(
                                "append row {r}, column `{}`: `{cell}` is not an integer",
                                attr.name()
                            )
                        })?),
                        Kind::Cat => Value::Text(cell.clone()),
                    })
                })
                .collect()
        })
        .collect()
}

/// What a journal+snapshot replay reconstructed, reported by `stats` and
/// the boot banner.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Datasets re-interned from the journal.
    pub datasets: usize,
    /// Warm pools re-created from the journal.
    pub pools: usize,
    /// Update batches re-applied from the journal.
    pub deltas: usize,
    /// Exact verdicts replayed from the snapshot.
    pub verdicts: usize,
    /// Skipped-line / mismatch notes from the replay (fail-closed skips).
    pub warnings: Vec<String>,
}

/// Thread-safe name → dataset map shared by all connection handlers, plus
/// the write-ahead journal hook and the warm-pool byte budget.
#[derive(Default)]
pub struct Registry {
    datasets: Mutex<HashMap<String, Arc<Dataset>>>,
    state: Option<Arc<StateDir>>,
    /// 0 = unlimited.
    max_pool_bytes: u64,
    /// Pool keys in least-recently-used order (front = coldest).
    lru: Mutex<Vec<PoolKey>>,
    evictions: AtomicU64,
}

impl Registry {
    /// An empty registry with no persistence and no pool budget.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry that journals to `state` (when set) and evicts warm pools
    /// LRU once their combined footprint exceeds `max_pool_bytes` (0 =
    /// unlimited).
    pub fn with_state(state: Option<Arc<StateDir>>, max_pool_bytes: u64) -> Registry {
        Registry {
            state,
            max_pool_bytes,
            ..Registry::default()
        }
    }

    /// Parses `csv` against `spec` and registers it under `name`. Errors if
    /// the name is taken (re-registration would invalidate warm stores other
    /// requests may be using) or the CSV does not parse against the spec.
    /// With a state dir, the registration is journaled write-ahead: if the
    /// journal append fails the registration fails (fail-closed — never an
    /// in-memory dataset that a restart silently forgets).
    pub fn register(&self, name: &str, csv: &str, spec: Spec) -> Result<Arc<Dataset>, String> {
        self.register_inner(name, csv, spec, true)
    }

    fn register_inner(
        &self,
        name: &str,
        csv: &str,
        spec: Spec,
        journal: bool,
    ) -> Result<Arc<Dataset>, String> {
        let schema = spec.schema().map_err(|e| e.to_string())?;
        let table = read_table_str(csv, schema, true).map_err(|e| e.to_string())?;
        let qi = spec.qi_space()?;
        let mut datasets = self.datasets.lock().expect("registry poisoned");
        if datasets.contains_key(name) {
            return Err(format!("dataset `{name}` is already registered"));
        }
        if journal {
            if let Some(state) = &self.state {
                state
                    .log_register(name, csv, &spec)
                    .map_err(|e| format!("state journal append failed: {e}"))?;
            }
        }
        let qi_cols = table.schema().key_indices();
        let conf_cols = table.schema().confidential_indices();
        let live = LiveTable::new(table, qi_cols, conf_cols).map_err(|e| e.to_string())?;
        let dataset = Arc::new(Dataset {
            name: name.to_owned(),
            live: RwLock::new(live),
            spec,
            qi,
            stores: Mutex::new(HashMap::new()),
            watches: Mutex::new(Vec::new()),
            warm_hits: AtomicU64::new(0),
            cold_misses: AtomicU64::new(0),
        });
        datasets.insert(name.to_owned(), Arc::clone(&dataset));
        Ok(dataset)
    }

    /// The warm store for `(model, k, ts)` on `dataset`, journaling pool
    /// creation and maintaining the LRU byte budget. All server request
    /// paths go through here; `Dataset::store` alone skips persistence.
    pub fn store_for(
        &self,
        dataset: &Arc<Dataset>,
        model: ModelSpec,
        k: u32,
        ts: usize,
    ) -> (Arc<VerdictStore>, bool) {
        let (store, warm) = dataset.store(model, k, ts);
        self.note_pool_use(dataset, model, k, ts, warm);
        (store, warm)
    }

    /// Store, table, and statistics acquired under **one** hold of the
    /// dataset's live read lock, so the triple is fully pre-delta or fully
    /// post-delta with respect to any concurrent update — never a stale
    /// store paired with a fresh table (which would replay unsound
    /// verdicts) or the reverse. [`Dataset::apply_delta`] swaps invalidated
    /// pools while holding the write lock, which is what makes this
    /// guarantee hold. Pool bookkeeping (journal line, LRU touch, byte
    /// budget) runs after the lock drops.
    pub fn snapshot_with_store(
        &self,
        dataset: &Arc<Dataset>,
        model: ModelSpec,
        k: u32,
        ts: usize,
    ) -> (Arc<VerdictStore>, bool, Table, ConfidentialStats) {
        let (store, warm, table, stats) = {
            let live = dataset.live.read().expect("live table poisoned");
            // Lock order live → stores, same as `Dataset::apply_delta`.
            let (store, warm) = dataset.store(model, k, ts);
            (store, warm, live.table().clone(), live.stats())
        };
        self.note_pool_use(dataset, model, k, ts, warm);
        (store, warm, table, stats)
    }

    /// The persistence + LRU tail shared by [`Self::store_for`] and
    /// [`Self::snapshot_with_store`].
    fn note_pool_use(
        &self,
        dataset: &Arc<Dataset>,
        model: ModelSpec,
        k: u32,
        ts: usize,
        warm: bool,
    ) {
        if !warm {
            if let Some(state) = &self.state {
                // A lost pool line only costs a cold rebuild after restart
                // (verdicts are pure functions of the key), so journal
                // failure here degrades warm-up, never correctness.
                let _ = state.log_pool(&dataset.name, model, k, ts);
            }
        }
        let key: PoolKey = (dataset.name.clone(), model, k, ts);
        {
            let mut lru = self.lru.lock().expect("lru lock poisoned");
            lru.retain(|entry| entry != &key);
            lru.push(key.clone());
        }
        self.enforce_pool_budget(&key);
    }

    /// Evicts least-recently-used pools until the combined footprint fits
    /// the budget. The just-touched key is exempt so the request that
    /// triggered enforcement keeps its store.
    fn enforce_pool_budget(&self, keep: &PoolKey) {
        if self.max_pool_bytes == 0 {
            return;
        }
        while self.pool_bytes() > self.max_pool_bytes {
            let victim = {
                let mut lru = self.lru.lock().expect("lru lock poisoned");
                let at = lru.iter().position(|entry| entry != keep);
                match at {
                    Some(at) => lru.remove(at),
                    None => return,
                }
            };
            let (name, model, k, ts) = victim;
            if let Some(dataset) = self.get(&name) {
                if dataset.remove_store(model, k, ts).is_some() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Applies a delta batch to `dataset`, journaling it write-ahead when
    /// persistence is on. All server update paths go through here;
    /// `Dataset::apply_delta` with `None` skips persistence (journal
    /// replay uses that so recovery doesn't re-journal its own input).
    pub fn apply_delta(
        &self,
        dataset: &Dataset,
        batch: &DeltaBatch,
    ) -> Result<DeltaOutcome, String> {
        dataset.apply_delta(batch, self.state.as_deref())
    }

    /// Approximate heap bytes across every dataset's warm pools.
    pub fn pool_bytes(&self) -> u64 {
        let datasets: Vec<Arc<Dataset>> = {
            let map = self.datasets.lock().expect("registry poisoned");
            map.values().cloned().collect()
        };
        datasets.iter().map(|d| d.pool_bytes()).sum()
    }

    /// Pools evicted under memory pressure since boot.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Replays the state dir's journal and snapshot into this registry:
    /// re-interns verified datasets, re-creates their warm pools, and
    /// replays snapshot verdicts (each validated against the dataset's
    /// lattice before `record`). Unverifiable pieces are skipped with a
    /// warning — recovery can shrink state, never corrupt it.
    pub fn recover(&self) -> RecoveryStats {
        let Some(state) = self.state.clone() else {
            return RecoveryStats::default();
        };
        let mut stats = RecoveryStats::default();
        let recovered = state.replay();
        stats.warnings = recovered.warnings;
        for dataset in recovered.registrations {
            match self.register_inner(&dataset.name, &dataset.csv, dataset.spec, false) {
                Ok(_) => stats.datasets += 1,
                Err(e) => stats.warnings.push(format!(
                    "dataset `{}` failed to re-intern: {e}",
                    dataset.name
                )),
            }
        }
        for (name, model, k, ts) in recovered.pools {
            if let Some(dataset) = self.get(&name) {
                // Warm the pool without re-journaling its creation.
                let (_, warm) = dataset.store(model, k, ts);
                if !warm {
                    stats.pools += 1;
                    let mut lru = self.lru.lock().expect("lru lock poisoned");
                    lru.push((name.clone(), model, k, ts));
                }
            }
        }
        for delta in recovered.deltas {
            let Some(dataset) = self.get(&delta.dataset) else {
                // replay() already drops deltas of unrecovered datasets;
                // this only triggers when the dataset failed to re-intern.
                stats.warnings.push(format!(
                    "delta for unrecovered dataset `{}`; skipped",
                    delta.dataset
                ));
                continue;
            };
            let replayed = (|| -> Result<(), String> {
                let table = dataset.table();
                let appends = parse_cells(table.schema(), &delta.appends)?;
                let batch = DeltaBatch {
                    appends,
                    deletes: delta.deletes.clone(),
                };
                dataset.apply_delta(&batch, None).map(|_| ())
            })();
            match replayed {
                Ok(()) => stats.deltas += 1,
                Err(e) => stats.warnings.push(format!(
                    "delta for `{}` failed to replay: {e}",
                    delta.dataset
                )),
            }
        }
        if let Some(entries) = state.load_snapshot() {
            for entry in entries {
                let Some(dataset) = self.get(&entry.dataset) else {
                    stats.warnings.push(format!(
                        "snapshot verdict for unknown dataset `{}`; skipped",
                        entry.dataset
                    ));
                    continue;
                };
                if entry.deltas != dataset.deltas_applied() {
                    // The snapshot predates deltas journaled after it was
                    // written (clean shutdown, restart, updates, crash):
                    // its verdicts describe an older table. Skip — the
                    // pool rebuilds cold against the current table.
                    stats.warnings.push(format!(
                        "snapshot verdict for `{}` is stale (snapshot at {} delta(s), table at {}); skipped",
                        entry.dataset,
                        entry.deltas,
                        dataset.deltas_applied()
                    ));
                    continue;
                }
                if !dataset.qi.lattice().contains(&entry.check.node) {
                    stats.warnings.push(format!(
                        "snapshot verdict outside `{}`'s lattice; skipped",
                        entry.dataset
                    ));
                    continue;
                }
                let (store, _) = dataset.store(entry.model, entry.k, entry.ts);
                store.record(&entry.check);
                stats.verdicts += 1;
            }
        }
        stats
    }

    /// Every exact verdict across every warm pool, ordered by dataset name
    /// then pool key then node — the deterministic snapshot export.
    pub fn snapshot_entries(&self) -> Vec<SnapshotEntry> {
        let datasets: Vec<Arc<Dataset>> = {
            let map = self.datasets.lock().expect("registry poisoned");
            let mut v: Vec<Arc<Dataset>> = map.values().cloned().collect();
            v.sort_by(|a, b| a.name.cmp(&b.name));
            v
        };
        let mut out = Vec::new();
        for dataset in datasets {
            let deltas = dataset.deltas_applied();
            for ((model, k, ts), store) in dataset.pools() {
                for check in store.export_exact() {
                    out.push(SnapshotEntry {
                        dataset: dataset.name.clone(),
                        deltas,
                        model,
                        k,
                        ts,
                        check,
                    });
                }
            }
        }
        out
    }

    /// Writes the verdict snapshot if a state dir is configured. Returns
    /// the stats on success, `None` when persistence is off.
    pub fn write_snapshot(&self) -> Option<crate::state::SnapshotStats> {
        let state = self.state.clone()?;
        state.write_snapshot(&self.snapshot_entries()).ok()
    }

    /// Looks up a dataset by name.
    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.datasets
            .lock()
            .expect("registry poisoned")
            .get(name)
            .cloned()
    }

    /// Registered dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .datasets
            .lock()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Registry-wide JSON summary for the `stats` op: per-dataset row counts
    /// and store-pool counters.
    pub fn to_json(&self) -> JsonValue {
        let mut out = JsonValue::object();
        let datasets: Vec<Arc<Dataset>> = {
            let map = self.datasets.lock().expect("registry poisoned");
            let mut v: Vec<Arc<Dataset>> = map.values().cloned().collect();
            v.sort_by(|a, b| a.name.cmp(&b.name));
            v
        };
        let entries = datasets
            .iter()
            .map(|d| {
                let (warm, cold, live) = d.store_counters();
                let mut e = JsonValue::object();
                e.set("name", JsonValue::Str(d.name.clone()));
                e.set("rows", JsonValue::Int(d.n_rows() as i64));
                e.set("deltas_applied", JsonValue::Int(d.deltas_applied() as i64));
                e.set("watches", JsonValue::Int(d.watch_snapshot().len() as i64));
                e.set(
                    "lattice_nodes",
                    JsonValue::Int(d.qi.lattice().node_count() as i64),
                );
                e.set("store_warm_hits", JsonValue::Int(warm as i64));
                e.set("store_cold_misses", JsonValue::Int(cold as i64));
                e.set("live_stores", JsonValue::Int(live as i64));
                e
            })
            .collect();
        out.set("datasets", JsonValue::Array(entries));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_datasets::fixtures::adult_fixture;

    fn registered() -> (Registry, Arc<Dataset>) {
        let registry = Registry::new();
        let fixture = adult_fixture(5, 60);
        let dataset = registry
            .register("adult", &fixture.csv, fixture.spec)
            .unwrap();
        (registry, dataset)
    }

    #[test]
    fn register_then_get() {
        let (registry, dataset) = registered();
        assert_eq!(dataset.n_rows(), 60);
        assert!(registry.get("adult").is_some());
        assert!(registry.get("missing").is_none());
        assert_eq!(registry.names(), vec!["adult".to_owned()]);
    }

    #[test]
    fn duplicate_name_is_refused() {
        let (registry, _) = registered();
        let fixture = adult_fixture(5, 10);
        let err = registry
            .register("adult", &fixture.csv, fixture.spec)
            .err()
            .expect("duplicate register must fail");
        assert!(err.contains("already registered"), "{err}");
    }

    #[test]
    fn store_pool_is_keyed_by_parameters() {
        let (_, dataset) = registered();
        let psens2 = ModelSpec::PSensitiveK { p: 2 };
        let (a1, warm1) = dataset.store(psens2, 3, 5);
        let (a2, warm2) = dataset.store(psens2, 3, 5);
        let (b, warm_b) = dataset.store(psens2, 4, 5);
        assert!(!warm1, "first request is a cold miss");
        assert!(warm2, "same parameters hit the warm store");
        assert!(!warm_b, "different k gets its own store");
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(!Arc::ptr_eq(&a1, &b));
        // A different model with the same numeric parameter never shares a
        // store — distinct-l(2) verdicts must not leak into psens-k(2).
        let (c, warm_c) = dataset.store(ModelSpec::DistinctL { l: 2 }, 3, 5);
        assert!(!warm_c, "different model gets its own store");
        assert!(!Arc::ptr_eq(&a1, &c));
        let (warm, cold, live) = dataset.store_counters();
        assert_eq!((warm, cold, live), (1, 3, 3));
    }

    #[test]
    fn pool_budget_evicts_lru_and_rebuilds_cold() {
        let registry = Registry::with_state(None, 1); // any pool busts 1 byte
        let fixture = adult_fixture(5, 60);
        let dataset = registry
            .register("adult", &fixture.csv, fixture.spec)
            .unwrap();
        let psens1 = ModelSpec::PSensitiveK { p: 1 };
        let (store_a, _) = registry.store_for(&dataset, psens1, 2, 0);
        store_a.record(&psens_core::NodeCheck {
            node: dataset.qi.lattice().bottom(),
            violating_tuples: 3,
            suppressed: 0,
            satisfied: false,
            stage: psens_core::CheckStage::KAnonymity,
            n_groups: None,
            detail: None,
        });
        // Touching a second pool pushes total bytes over budget; the first
        // (LRU) pool is evicted, the just-touched one survives.
        let (_store_b, _) = registry.store_for(&dataset, ModelSpec::PSensitiveK { p: 2 }, 3, 0);
        assert!(registry.evictions() >= 1);
        let (rebuilt, warm) = registry.store_for(&dataset, psens1, 2, 0);
        assert!(!warm, "evicted pool rebuilds cold");
        assert_eq!(rebuilt.len(), 0, "rebuilt store starts empty");
        // The Arc handed out before eviction still works.
        assert_eq!(store_a.len(), 1);
    }

    #[test]
    fn journal_recovery_reinterns_datasets_and_rewarms_pools() {
        let root =
            std::env::temp_dir().join(format!("psens_registry_recover_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let state = Arc::new(crate::state::StateDir::open(&root).unwrap());
        let fixture = adult_fixture(5, 60);

        let registry = Registry::with_state(Some(Arc::clone(&state)), 0);
        let dataset = registry
            .register("adult", &fixture.csv, fixture.spec.clone())
            .unwrap();
        let psens2 = ModelSpec::PSensitiveK { p: 2 };
        let (store, _) = registry.store_for(&dataset, psens2, 3, 5);
        store.record(&psens_core::NodeCheck {
            node: dataset.qi.lattice().bottom(),
            violating_tuples: 7,
            suppressed: 0,
            satisfied: false,
            stage: psens_core::CheckStage::KAnonymity,
            n_groups: Some(4),
            detail: None,
        });
        registry.write_snapshot().expect("snapshot written");

        // A fresh registry over the same state dir recovers everything.
        let rebooted = Registry::with_state(Some(state), 0);
        let stats = rebooted.recover();
        assert_eq!(
            (stats.datasets, stats.pools, stats.verdicts),
            (1, 1, 1),
            "warnings: {:?}",
            stats.warnings
        );
        let dataset = rebooted.get("adult").expect("dataset recovered");
        let (store, warm) = dataset.store(psens2, 3, 5);
        assert!(warm, "recovered pool is already live");
        assert_eq!(store.len(), 1, "snapshot verdict replayed");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn delta_replay_reconstructs_table_and_guards_stale_snapshots() {
        let root =
            std::env::temp_dir().join(format!("psens_registry_delta_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let state = Arc::new(crate::state::StateDir::open(&root).unwrap());
        let fixture = adult_fixture(5, 60);
        let registry = Registry::with_state(Some(Arc::clone(&state)), 0);
        let dataset = registry
            .register("adult", &fixture.csv, fixture.spec.clone())
            .unwrap();
        let batch = DeltaBatch {
            appends: vec![],
            deletes: vec![0, 7],
        };
        registry.apply_delta(&dataset, &batch).unwrap();
        assert_eq!((dataset.n_rows(), dataset.deltas_applied()), (58, 1));
        let psens2 = ModelSpec::PSensitiveK { p: 2 };
        let (store, _) = registry.store_for(&dataset, psens2, 3, 5);
        store.record(&psens_core::NodeCheck {
            node: dataset.qi.lattice().bottom(),
            violating_tuples: 7,
            suppressed: 0,
            satisfied: false,
            stage: psens_core::CheckStage::KAnonymity,
            n_groups: Some(4),
            detail: None,
        });
        registry.write_snapshot().expect("snapshot written");

        // Reboot: the journaled delta replays, so the table matches and the
        // snapshot verdict (written at the same delta count) is accepted.
        let rebooted = Registry::with_state(Some(Arc::clone(&state)), 0);
        let stats = rebooted.recover();
        assert_eq!(
            (stats.datasets, stats.deltas, stats.verdicts),
            (1, 1, 1),
            "warnings: {:?}",
            stats.warnings
        );
        let recovered = rebooted.get("adult").expect("dataset recovered");
        assert_eq!(recovered.n_rows(), 58);
        assert_eq!(
            recovered.table(),
            dataset.table(),
            "replayed table identical"
        );
        let (store, warm) = recovered.store(psens2, 3, 5);
        assert!(warm);
        assert_eq!(store.len(), 1);

        // One more journaled delta, then a crash (no fresh snapshot): the
        // old snapshot now describes a table one delta behind and must not
        // seed its verdicts.
        rebooted
            .apply_delta(
                &recovered,
                &DeltaBatch {
                    appends: vec![],
                    deletes: vec![3],
                },
            )
            .unwrap();
        let reboot2 = Registry::with_state(Some(state), 0);
        let stats = reboot2.recover();
        assert_eq!(stats.deltas, 2, "warnings: {:?}", stats.warnings);
        assert_eq!(stats.verdicts, 0, "stale snapshot verdicts must not replay");
        assert!(stats.warnings.iter().any(|w| w.contains("stale")));
        assert_eq!(reboot2.get("adult").unwrap().n_rows(), 57);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// An exact check at the lattice bottom; `violating` stays within ts so
    /// no closure entries muddy the length assertions.
    fn bottom_check(dataset: &Dataset, violating: usize) -> psens_core::NodeCheck {
        psens_core::NodeCheck {
            node: dataset.qi.lattice().bottom(),
            violating_tuples: violating,
            suppressed: 0,
            satisfied: false,
            stage: psens_core::CheckStage::KAnonymity,
            n_groups: Some(4),
            detail: None,
        }
    }

    #[test]
    fn apply_delta_swaps_stores_and_quarantines_stale_recordings() {
        let (registry, dataset) = registered();
        let psens2 = ModelSpec::PSensitiveK { p: 2 };
        let (store, warm, table, _stats) = registry.snapshot_with_store(&dataset, psens2, 3, 5);
        assert!(!warm);
        store.record(&bottom_check(&dataset, 3));
        assert_eq!(store.len(), 1);

        // A bare delete: no soundness argument applies (DropAll), so the
        // pool entry is swapped for a detached, emptied successor.
        let outcome = registry
            .apply_delta(&dataset, &DeltaBatch::delete_rows(vec![0]))
            .unwrap();
        assert_eq!((outcome.kept, outcome.invalidated), (0, 1));
        assert_eq!((outcome.rows, outcome.deltas_applied), (59, 1));
        assert_eq!(outcome.stats, dataset.stats(), "stats are post-batch");

        // An in-flight search that acquired the store pre-delta finishes
        // late and records a pre-delta verdict into its (now detached) Arc.
        let top = psens_hierarchy::Node(dataset.qi.lattice().max_levels().to_vec());
        store.record(&psens_core::NodeCheck {
            node: top.clone(),
            ..bottom_check(&dataset, 3)
        });
        assert_eq!(
            store.len(),
            2,
            "the detached store absorbs the stale record"
        );

        // A fresh acquisition sees the successor: same pool key (warm), a
        // different instance, and none of the stale verdicts.
        let (fresh, warm, table_after, _stats) =
            registry.snapshot_with_store(&dataset, psens2, 3, 5);
        assert!(warm, "the successor stays pooled under the same key");
        assert!(
            !Arc::ptr_eq(&store, &fresh),
            "the pre-delta Arc was detached"
        );
        assert_eq!(fresh.len(), 0, "no stale verdict reaches the new pool");
        assert!(fresh.peek(&top).is_none());
        assert_eq!(table_after.n_rows(), table.n_rows() - 1);
    }

    #[test]
    fn net_zero_delta_keeps_the_pooled_store_instance() {
        let (registry, dataset) = registered();
        let psens2 = ModelSpec::PSensitiveK { p: 2 };
        let (store, _, table, _) = registry.snapshot_with_store(&dataset, psens2, 3, 5);
        store.record(&bottom_check(&dataset, 3));
        // Delete row 0 and append an identical copy: the row multiset is
        // unchanged, so pre-delta verdicts stay valid and the same Arc may
        // keep serving (and absorbing) in-flight searches.
        let batch = DeltaBatch {
            appends: vec![table.row(0).unwrap()],
            deletes: vec![0],
        };
        let outcome = registry.apply_delta(&dataset, &batch).unwrap();
        assert!(outcome.effect.net_zero);
        assert_eq!((outcome.kept, outcome.invalidated), (1, 0));
        let (same, warm, _, _) = registry.snapshot_with_store(&dataset, psens2, 3, 5);
        assert!(warm);
        assert!(Arc::ptr_eq(&store, &same), "net-zero keeps the same Arc");
        assert_eq!(same.len(), 1);
    }

    #[test]
    fn bad_csv_is_reported() {
        let registry = Registry::new();
        let fixture = adult_fixture(5, 10);
        assert!(registry
            .register("broken", "not,a,valid\nheader", fixture.spec)
            .is_err());
    }
}
