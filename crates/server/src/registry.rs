//! The dataset registry: parse and intern a dataset once, serve many
//! requests against it.
//!
//! Each registered dataset keeps a pool of warm [`VerdictStore`]s keyed by
//! `(model, k, ts)`. A store's verdicts are only sound for one privacy
//! model and parameter configuration (see `psens_core::verdict`), so the
//! pool never shares a store across configurations — but repeated
//! `anonymize` requests with the *same* model and parameters replay each
//! other's node verdicts instead of re-running the kernel, which is where a
//! long-running daemon earns its keep over one-shot CLI invocations.
//! Stores for non-monotone models are created with closure inference off
//! ([`VerdictStore::for_model`]), so a pooled store can never smuggle an
//! unsound inferred verdict into a later request.

use crate::state::{SnapshotEntry, StateDir};
use psens_core::{ModelSpec, VerdictStore};
use psens_datasets::Spec;
use psens_hierarchy::QiSpace;
use psens_microdata::csv::read_table_str;
use psens_microdata::{JsonValue, Table};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A warm-pool key: `(dataset, model, k, ts)`.
pub type PoolKey = (String, ModelSpec, u32, usize);

/// One registered dataset: the interned table, its spec, and the warm
/// verdict-store pool.
pub struct Dataset {
    /// Registry name.
    pub name: String,
    /// The parsed, interned table (column-compressed; shared by all
    /// requests, never re-parsed).
    pub table: Table,
    /// The spec the dataset was registered with.
    pub spec: Spec,
    /// QI space built once from the spec's key hierarchies.
    pub qi: QiSpace,
    stores: Mutex<HashMap<(ModelSpec, u32, usize), Arc<VerdictStore>>>,
    warm_hits: AtomicU64,
    cold_misses: AtomicU64,
}

impl Dataset {
    /// The warm store for `(model, k, ts)`, creating it on first use. The
    /// bool is `true` when the store already existed (a warm hit):
    /// subsequent searches replay its verdicts instead of re-checking
    /// nodes. New stores inherit the model's monotonicity, so pools for
    /// non-monotone models never perform closure inference.
    pub fn store(&self, model: ModelSpec, k: u32, ts: usize) -> (Arc<VerdictStore>, bool) {
        let mut stores = self.stores.lock().expect("store pool poisoned");
        match stores.get(&(model, k, ts)) {
            Some(store) => {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(store), true)
            }
            None => {
                self.cold_misses.fetch_add(1, Ordering::Relaxed);
                let store = Arc::new(VerdictStore::for_model(
                    &self.qi.lattice(),
                    ts,
                    model.is_monotone(),
                ));
                stores.insert((model, k, ts), Arc::clone(&store));
                (store, false)
            }
        }
    }

    /// Pool counters: `(warm_hits, cold_misses, live_stores)`.
    pub fn store_counters(&self) -> (u64, u64, usize) {
        let live = self.stores.lock().expect("store pool poisoned").len();
        (
            self.warm_hits.load(Ordering::Relaxed),
            self.cold_misses.load(Ordering::Relaxed),
            live,
        )
    }

    /// Drops the warm store for `(model, k, ts)` (memory-pressure
    /// eviction). In-flight searches holding the `Arc` finish unaffected;
    /// the next request for this key rebuilds the pool cold with identical
    /// verdicts.
    pub fn remove_store(&self, model: ModelSpec, k: u32, ts: usize) -> Option<Arc<VerdictStore>> {
        self.stores
            .lock()
            .expect("store pool poisoned")
            .remove(&(model, k, ts))
    }

    /// Every live pool, sorted by key — deterministic snapshot order.
    pub fn pools(&self) -> Vec<((ModelSpec, u32, usize), Arc<VerdictStore>)> {
        let stores = self.stores.lock().expect("store pool poisoned");
        let mut out: Vec<_> = stores
            .iter()
            .map(|(key, store)| (*key, Arc::clone(store)))
            .collect();
        out.sort_by_key(|(key, _)| *key);
        out
    }

    /// Approximate heap bytes held by this dataset's warm stores.
    pub fn pool_bytes(&self) -> u64 {
        self.pools()
            .iter()
            .map(|(_, store)| store.approx_bytes())
            .sum()
    }
}

/// What a journal+snapshot replay reconstructed, reported by `stats` and
/// the boot banner.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Datasets re-interned from the journal.
    pub datasets: usize,
    /// Warm pools re-created from the journal.
    pub pools: usize,
    /// Exact verdicts replayed from the snapshot.
    pub verdicts: usize,
    /// Skipped-line / mismatch notes from the replay (fail-closed skips).
    pub warnings: Vec<String>,
}

/// Thread-safe name → dataset map shared by all connection handlers, plus
/// the write-ahead journal hook and the warm-pool byte budget.
#[derive(Default)]
pub struct Registry {
    datasets: Mutex<HashMap<String, Arc<Dataset>>>,
    state: Option<Arc<StateDir>>,
    /// 0 = unlimited.
    max_pool_bytes: u64,
    /// Pool keys in least-recently-used order (front = coldest).
    lru: Mutex<Vec<PoolKey>>,
    evictions: AtomicU64,
}

impl Registry {
    /// An empty registry with no persistence and no pool budget.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry that journals to `state` (when set) and evicts warm pools
    /// LRU once their combined footprint exceeds `max_pool_bytes` (0 =
    /// unlimited).
    pub fn with_state(state: Option<Arc<StateDir>>, max_pool_bytes: u64) -> Registry {
        Registry {
            state,
            max_pool_bytes,
            ..Registry::default()
        }
    }

    /// Parses `csv` against `spec` and registers it under `name`. Errors if
    /// the name is taken (re-registration would invalidate warm stores other
    /// requests may be using) or the CSV does not parse against the spec.
    /// With a state dir, the registration is journaled write-ahead: if the
    /// journal append fails the registration fails (fail-closed — never an
    /// in-memory dataset that a restart silently forgets).
    pub fn register(&self, name: &str, csv: &str, spec: Spec) -> Result<Arc<Dataset>, String> {
        self.register_inner(name, csv, spec, true)
    }

    fn register_inner(
        &self,
        name: &str,
        csv: &str,
        spec: Spec,
        journal: bool,
    ) -> Result<Arc<Dataset>, String> {
        let schema = spec.schema().map_err(|e| e.to_string())?;
        let table = read_table_str(csv, schema, true).map_err(|e| e.to_string())?;
        let qi = spec.qi_space()?;
        let mut datasets = self.datasets.lock().expect("registry poisoned");
        if datasets.contains_key(name) {
            return Err(format!("dataset `{name}` is already registered"));
        }
        if journal {
            if let Some(state) = &self.state {
                state
                    .log_register(name, csv, &spec)
                    .map_err(|e| format!("state journal append failed: {e}"))?;
            }
        }
        let dataset = Arc::new(Dataset {
            name: name.to_owned(),
            table,
            spec,
            qi,
            stores: Mutex::new(HashMap::new()),
            warm_hits: AtomicU64::new(0),
            cold_misses: AtomicU64::new(0),
        });
        datasets.insert(name.to_owned(), Arc::clone(&dataset));
        Ok(dataset)
    }

    /// The warm store for `(model, k, ts)` on `dataset`, journaling pool
    /// creation and maintaining the LRU byte budget. All server request
    /// paths go through here; `Dataset::store` alone skips persistence.
    pub fn store_for(
        &self,
        dataset: &Arc<Dataset>,
        model: ModelSpec,
        k: u32,
        ts: usize,
    ) -> (Arc<VerdictStore>, bool) {
        let (store, warm) = dataset.store(model, k, ts);
        if !warm {
            if let Some(state) = &self.state {
                // A lost pool line only costs a cold rebuild after restart
                // (verdicts are pure functions of the key), so journal
                // failure here degrades warm-up, never correctness.
                let _ = state.log_pool(&dataset.name, model, k, ts);
            }
        }
        let key: PoolKey = (dataset.name.clone(), model, k, ts);
        {
            let mut lru = self.lru.lock().expect("lru lock poisoned");
            lru.retain(|entry| entry != &key);
            lru.push(key.clone());
        }
        self.enforce_pool_budget(&key);
        (store, warm)
    }

    /// Evicts least-recently-used pools until the combined footprint fits
    /// the budget. The just-touched key is exempt so the request that
    /// triggered enforcement keeps its store.
    fn enforce_pool_budget(&self, keep: &PoolKey) {
        if self.max_pool_bytes == 0 {
            return;
        }
        while self.pool_bytes() > self.max_pool_bytes {
            let victim = {
                let mut lru = self.lru.lock().expect("lru lock poisoned");
                let at = lru.iter().position(|entry| entry != keep);
                match at {
                    Some(at) => lru.remove(at),
                    None => return,
                }
            };
            let (name, model, k, ts) = victim;
            if let Some(dataset) = self.get(&name) {
                if dataset.remove_store(model, k, ts).is_some() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Approximate heap bytes across every dataset's warm pools.
    pub fn pool_bytes(&self) -> u64 {
        let datasets: Vec<Arc<Dataset>> = {
            let map = self.datasets.lock().expect("registry poisoned");
            map.values().cloned().collect()
        };
        datasets.iter().map(|d| d.pool_bytes()).sum()
    }

    /// Pools evicted under memory pressure since boot.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Replays the state dir's journal and snapshot into this registry:
    /// re-interns verified datasets, re-creates their warm pools, and
    /// replays snapshot verdicts (each validated against the dataset's
    /// lattice before `record`). Unverifiable pieces are skipped with a
    /// warning — recovery can shrink state, never corrupt it.
    pub fn recover(&self) -> RecoveryStats {
        let Some(state) = self.state.clone() else {
            return RecoveryStats::default();
        };
        let mut stats = RecoveryStats::default();
        let recovered = state.replay();
        stats.warnings = recovered.warnings;
        for dataset in recovered.registrations {
            match self.register_inner(&dataset.name, &dataset.csv, dataset.spec, false) {
                Ok(_) => stats.datasets += 1,
                Err(e) => stats.warnings.push(format!(
                    "dataset `{}` failed to re-intern: {e}",
                    dataset.name
                )),
            }
        }
        for (name, model, k, ts) in recovered.pools {
            if let Some(dataset) = self.get(&name) {
                // Warm the pool without re-journaling its creation.
                let (_, warm) = dataset.store(model, k, ts);
                if !warm {
                    stats.pools += 1;
                    let mut lru = self.lru.lock().expect("lru lock poisoned");
                    lru.push((name.clone(), model, k, ts));
                }
            }
        }
        if let Some(entries) = state.load_snapshot() {
            for entry in entries {
                let Some(dataset) = self.get(&entry.dataset) else {
                    stats.warnings.push(format!(
                        "snapshot verdict for unknown dataset `{}`; skipped",
                        entry.dataset
                    ));
                    continue;
                };
                if !dataset.qi.lattice().contains(&entry.check.node) {
                    stats.warnings.push(format!(
                        "snapshot verdict outside `{}`'s lattice; skipped",
                        entry.dataset
                    ));
                    continue;
                }
                let (store, _) = dataset.store(entry.model, entry.k, entry.ts);
                store.record(&entry.check);
                stats.verdicts += 1;
            }
        }
        stats
    }

    /// Every exact verdict across every warm pool, ordered by dataset name
    /// then pool key then node — the deterministic snapshot export.
    pub fn snapshot_entries(&self) -> Vec<SnapshotEntry> {
        let datasets: Vec<Arc<Dataset>> = {
            let map = self.datasets.lock().expect("registry poisoned");
            let mut v: Vec<Arc<Dataset>> = map.values().cloned().collect();
            v.sort_by(|a, b| a.name.cmp(&b.name));
            v
        };
        let mut out = Vec::new();
        for dataset in datasets {
            for ((model, k, ts), store) in dataset.pools() {
                for check in store.export_exact() {
                    out.push(SnapshotEntry {
                        dataset: dataset.name.clone(),
                        model,
                        k,
                        ts,
                        check,
                    });
                }
            }
        }
        out
    }

    /// Writes the verdict snapshot if a state dir is configured. Returns
    /// the stats on success, `None` when persistence is off.
    pub fn write_snapshot(&self) -> Option<crate::state::SnapshotStats> {
        let state = self.state.clone()?;
        state.write_snapshot(&self.snapshot_entries()).ok()
    }

    /// Looks up a dataset by name.
    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.datasets
            .lock()
            .expect("registry poisoned")
            .get(name)
            .cloned()
    }

    /// Registered dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .datasets
            .lock()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Registry-wide JSON summary for the `stats` op: per-dataset row counts
    /// and store-pool counters.
    pub fn to_json(&self) -> JsonValue {
        let mut out = JsonValue::object();
        let datasets: Vec<Arc<Dataset>> = {
            let map = self.datasets.lock().expect("registry poisoned");
            let mut v: Vec<Arc<Dataset>> = map.values().cloned().collect();
            v.sort_by(|a, b| a.name.cmp(&b.name));
            v
        };
        let entries = datasets
            .iter()
            .map(|d| {
                let (warm, cold, live) = d.store_counters();
                let mut e = JsonValue::object();
                e.set("name", JsonValue::Str(d.name.clone()));
                e.set("rows", JsonValue::Int(d.table.n_rows() as i64));
                e.set(
                    "lattice_nodes",
                    JsonValue::Int(d.qi.lattice().node_count() as i64),
                );
                e.set("store_warm_hits", JsonValue::Int(warm as i64));
                e.set("store_cold_misses", JsonValue::Int(cold as i64));
                e.set("live_stores", JsonValue::Int(live as i64));
                e
            })
            .collect();
        out.set("datasets", JsonValue::Array(entries));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_datasets::fixtures::adult_fixture;

    fn registered() -> (Registry, Arc<Dataset>) {
        let registry = Registry::new();
        let fixture = adult_fixture(5, 60);
        let dataset = registry
            .register("adult", &fixture.csv, fixture.spec)
            .unwrap();
        (registry, dataset)
    }

    #[test]
    fn register_then_get() {
        let (registry, dataset) = registered();
        assert_eq!(dataset.table.n_rows(), 60);
        assert!(registry.get("adult").is_some());
        assert!(registry.get("missing").is_none());
        assert_eq!(registry.names(), vec!["adult".to_owned()]);
    }

    #[test]
    fn duplicate_name_is_refused() {
        let (registry, _) = registered();
        let fixture = adult_fixture(5, 10);
        let err = registry
            .register("adult", &fixture.csv, fixture.spec)
            .err()
            .expect("duplicate register must fail");
        assert!(err.contains("already registered"), "{err}");
    }

    #[test]
    fn store_pool_is_keyed_by_parameters() {
        let (_, dataset) = registered();
        let psens2 = ModelSpec::PSensitiveK { p: 2 };
        let (a1, warm1) = dataset.store(psens2, 3, 5);
        let (a2, warm2) = dataset.store(psens2, 3, 5);
        let (b, warm_b) = dataset.store(psens2, 4, 5);
        assert!(!warm1, "first request is a cold miss");
        assert!(warm2, "same parameters hit the warm store");
        assert!(!warm_b, "different k gets its own store");
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(!Arc::ptr_eq(&a1, &b));
        // A different model with the same numeric parameter never shares a
        // store — distinct-l(2) verdicts must not leak into psens-k(2).
        let (c, warm_c) = dataset.store(ModelSpec::DistinctL { l: 2 }, 3, 5);
        assert!(!warm_c, "different model gets its own store");
        assert!(!Arc::ptr_eq(&a1, &c));
        let (warm, cold, live) = dataset.store_counters();
        assert_eq!((warm, cold, live), (1, 3, 3));
    }

    #[test]
    fn pool_budget_evicts_lru_and_rebuilds_cold() {
        let registry = Registry::with_state(None, 1); // any pool busts 1 byte
        let fixture = adult_fixture(5, 60);
        let dataset = registry
            .register("adult", &fixture.csv, fixture.spec)
            .unwrap();
        let psens1 = ModelSpec::PSensitiveK { p: 1 };
        let (store_a, _) = registry.store_for(&dataset, psens1, 2, 0);
        store_a.record(&psens_core::NodeCheck {
            node: dataset.qi.lattice().bottom(),
            violating_tuples: 3,
            suppressed: 0,
            satisfied: false,
            stage: psens_core::CheckStage::KAnonymity,
            n_groups: None,
            detail: None,
        });
        // Touching a second pool pushes total bytes over budget; the first
        // (LRU) pool is evicted, the just-touched one survives.
        let (_store_b, _) = registry.store_for(&dataset, ModelSpec::PSensitiveK { p: 2 }, 3, 0);
        assert!(registry.evictions() >= 1);
        let (rebuilt, warm) = registry.store_for(&dataset, psens1, 2, 0);
        assert!(!warm, "evicted pool rebuilds cold");
        assert_eq!(rebuilt.len(), 0, "rebuilt store starts empty");
        // The Arc handed out before eviction still works.
        assert_eq!(store_a.len(), 1);
    }

    #[test]
    fn journal_recovery_reinterns_datasets_and_rewarms_pools() {
        let root =
            std::env::temp_dir().join(format!("psens_registry_recover_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let state = Arc::new(crate::state::StateDir::open(&root).unwrap());
        let fixture = adult_fixture(5, 60);

        let registry = Registry::with_state(Some(Arc::clone(&state)), 0);
        let dataset = registry
            .register("adult", &fixture.csv, fixture.spec.clone())
            .unwrap();
        let psens2 = ModelSpec::PSensitiveK { p: 2 };
        let (store, _) = registry.store_for(&dataset, psens2, 3, 5);
        store.record(&psens_core::NodeCheck {
            node: dataset.qi.lattice().bottom(),
            violating_tuples: 7,
            suppressed: 0,
            satisfied: false,
            stage: psens_core::CheckStage::KAnonymity,
            n_groups: Some(4),
            detail: None,
        });
        registry.write_snapshot().expect("snapshot written");

        // A fresh registry over the same state dir recovers everything.
        let rebooted = Registry::with_state(Some(state), 0);
        let stats = rebooted.recover();
        assert_eq!(
            (stats.datasets, stats.pools, stats.verdicts),
            (1, 1, 1),
            "warnings: {:?}",
            stats.warnings
        );
        let dataset = rebooted.get("adult").expect("dataset recovered");
        let (store, warm) = dataset.store(psens2, 3, 5);
        assert!(warm, "recovered pool is already live");
        assert_eq!(store.len(), 1, "snapshot verdict replayed");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_csv_is_reported() {
        let registry = Registry::new();
        let fixture = adult_fixture(5, 10);
        assert!(registry
            .register("broken", "not,a,valid\nheader", fixture.spec)
            .is_err());
    }
}
