//! The dataset registry: parse and intern a dataset once, serve many
//! requests against it.
//!
//! Each registered dataset keeps a pool of warm [`VerdictStore`]s keyed by
//! `(p, k, ts)`. A store's monotonicity closure is only sound for one
//! parameter configuration (see `psens_core::verdict`), so the pool never
//! shares a store across configurations — but repeated `anonymize` requests
//! with the *same* parameters replay each other's node verdicts instead of
//! re-running the kernel, which is where a long-running daemon earns its
//! keep over one-shot CLI invocations.

use psens_core::VerdictStore;
use psens_datasets::Spec;
use psens_hierarchy::QiSpace;
use psens_microdata::csv::read_table_str;
use psens_microdata::{JsonValue, Table};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One registered dataset: the interned table, its spec, and the warm
/// verdict-store pool.
pub struct Dataset {
    /// Registry name.
    pub name: String,
    /// The parsed, interned table (column-compressed; shared by all
    /// requests, never re-parsed).
    pub table: Table,
    /// The spec the dataset was registered with.
    pub spec: Spec,
    /// QI space built once from the spec's key hierarchies.
    pub qi: QiSpace,
    stores: Mutex<HashMap<(u32, u32, usize), Arc<VerdictStore>>>,
    warm_hits: AtomicU64,
    cold_misses: AtomicU64,
}

impl Dataset {
    /// The warm store for `(p, k, ts)`, creating it on first use. The bool
    /// is `true` when the store already existed (a warm hit): subsequent
    /// searches replay its verdicts instead of re-checking nodes.
    pub fn store(&self, p: u32, k: u32, ts: usize) -> (Arc<VerdictStore>, bool) {
        let mut stores = self.stores.lock().expect("store pool poisoned");
        match stores.get(&(p, k, ts)) {
            Some(store) => {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(store), true)
            }
            None => {
                self.cold_misses.fetch_add(1, Ordering::Relaxed);
                let store = Arc::new(VerdictStore::new(&self.qi.lattice(), ts));
                stores.insert((p, k, ts), Arc::clone(&store));
                (store, false)
            }
        }
    }

    /// Pool counters: `(warm_hits, cold_misses, live_stores)`.
    pub fn store_counters(&self) -> (u64, u64, usize) {
        let live = self.stores.lock().expect("store pool poisoned").len();
        (
            self.warm_hits.load(Ordering::Relaxed),
            self.cold_misses.load(Ordering::Relaxed),
            live,
        )
    }
}

/// Thread-safe name → dataset map shared by all connection handlers.
#[derive(Default)]
pub struct Registry {
    datasets: Mutex<HashMap<String, Arc<Dataset>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Parses `csv` against `spec` and registers it under `name`. Errors if
    /// the name is taken (re-registration would invalidate warm stores other
    /// requests may be using) or the CSV does not parse against the spec.
    pub fn register(&self, name: &str, csv: &str, spec: Spec) -> Result<Arc<Dataset>, String> {
        let schema = spec.schema().map_err(|e| e.to_string())?;
        let table = read_table_str(csv, schema, true).map_err(|e| e.to_string())?;
        let qi = spec.qi_space()?;
        let mut datasets = self.datasets.lock().expect("registry poisoned");
        if datasets.contains_key(name) {
            return Err(format!("dataset `{name}` is already registered"));
        }
        let dataset = Arc::new(Dataset {
            name: name.to_owned(),
            table,
            spec,
            qi,
            stores: Mutex::new(HashMap::new()),
            warm_hits: AtomicU64::new(0),
            cold_misses: AtomicU64::new(0),
        });
        datasets.insert(name.to_owned(), Arc::clone(&dataset));
        Ok(dataset)
    }

    /// Looks up a dataset by name.
    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.datasets
            .lock()
            .expect("registry poisoned")
            .get(name)
            .cloned()
    }

    /// Registered dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .datasets
            .lock()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Registry-wide JSON summary for the `stats` op: per-dataset row counts
    /// and store-pool counters.
    pub fn to_json(&self) -> JsonValue {
        let mut out = JsonValue::object();
        let datasets: Vec<Arc<Dataset>> = {
            let map = self.datasets.lock().expect("registry poisoned");
            let mut v: Vec<Arc<Dataset>> = map.values().cloned().collect();
            v.sort_by(|a, b| a.name.cmp(&b.name));
            v
        };
        let entries = datasets
            .iter()
            .map(|d| {
                let (warm, cold, live) = d.store_counters();
                let mut e = JsonValue::object();
                e.set("name", JsonValue::Str(d.name.clone()));
                e.set("rows", JsonValue::Int(d.table.n_rows() as i64));
                e.set(
                    "lattice_nodes",
                    JsonValue::Int(d.qi.lattice().node_count() as i64),
                );
                e.set("store_warm_hits", JsonValue::Int(warm as i64));
                e.set("store_cold_misses", JsonValue::Int(cold as i64));
                e.set("live_stores", JsonValue::Int(live as i64));
                e
            })
            .collect();
        out.set("datasets", JsonValue::Array(entries));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_datasets::fixtures::adult_fixture;

    fn registered() -> (Registry, Arc<Dataset>) {
        let registry = Registry::new();
        let fixture = adult_fixture(5, 60);
        let dataset = registry
            .register("adult", &fixture.csv, fixture.spec)
            .unwrap();
        (registry, dataset)
    }

    #[test]
    fn register_then_get() {
        let (registry, dataset) = registered();
        assert_eq!(dataset.table.n_rows(), 60);
        assert!(registry.get("adult").is_some());
        assert!(registry.get("missing").is_none());
        assert_eq!(registry.names(), vec!["adult".to_owned()]);
    }

    #[test]
    fn duplicate_name_is_refused() {
        let (registry, _) = registered();
        let fixture = adult_fixture(5, 10);
        let err = registry
            .register("adult", &fixture.csv, fixture.spec)
            .err()
            .expect("duplicate register must fail");
        assert!(err.contains("already registered"), "{err}");
    }

    #[test]
    fn store_pool_is_keyed_by_parameters() {
        let (_, dataset) = registered();
        let (a1, warm1) = dataset.store(2, 3, 5);
        let (a2, warm2) = dataset.store(2, 3, 5);
        let (b, warm_b) = dataset.store(2, 4, 5);
        assert!(!warm1, "first request is a cold miss");
        assert!(warm2, "same parameters hit the warm store");
        assert!(!warm_b, "different k gets its own store");
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(!Arc::ptr_eq(&a1, &b));
        let (warm, cold, live) = dataset.store_counters();
        assert_eq!((warm, cold, live), (1, 2, 2));
    }

    #[test]
    fn bad_csv_is_reported() {
        let registry = Registry::new();
        let fixture = adult_fixture(5, 10);
        assert!(registry
            .register("broken", "not,a,valid\nheader", fixture.spec)
            .is_err());
    }
}
