//! Wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! Each frame is a 4-byte big-endian `u32` payload length followed by that
//! many bytes of UTF-8 JSON. Requests are objects `{"id": N, "op": "...",
//! ...params}`; responses echo the id as `{"id": N, "ok": true, "result":
//! {...}}` or `{"id": N, "ok": false, "error": {"code": "...", "message":
//! "..."}}`. One response per request, in request order per connection —
//! clients may pipeline.
//!
//! The framing is deliberately dumb: no compression, no multiplexing, no
//! external dependencies. The [`psens_microdata::JsonValue`] parser the rest
//! of the workspace already uses for reports does the JSON.

use psens_microdata::JsonValue;
use std::io::{self, Read, Write};

/// Hard ceiling on a single frame's payload (64 MiB). Registering a large
/// CSV is the only legitimately big frame; anything larger is a corrupt or
/// hostile length prefix, and refusing it keeps a bad client from making the
/// server allocate unbounded memory.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Error codes carried in the `error.code` field of a failure response.
pub mod codes {
    /// Malformed frame, unknown op, missing or ill-typed parameter.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The named dataset is not registered.
    pub const NOT_FOUND: &str = "not_found";
    /// `register` for a name that is already taken.
    pub const CONFLICT: &str = "conflict";
    /// The request's budget tripped (deadline, node budget, disconnect, or
    /// server shutdown) before the verdict was proven.
    pub const INTERRUPTED: &str = "interrupted";
    /// The server is shutting down and no longer admits work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The admission queue is full; the response carries `retry_after_ms`
    /// and the client should back off and retry.
    pub const BUSY: &str = "busy";
    /// The request frame's length prefix exceeds the server's cap. The
    /// offending frame is discarded and the connection stays usable.
    pub const FRAME_TOO_LARGE: &str = "frame_too_large";
    /// Anything else (I/O, internal invariant).
    pub const INTERNAL: &str = "internal";
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream at a frame boundary
/// (the client closed after its last request); an EOF mid-frame is an error.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<JsonValue>> {
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("frame not UTF-8: {e}")))?;
    JsonValue::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("frame not JSON: {e}")))
}

/// Writes one frame and flushes it.
pub fn write_frame<W: Write>(writer: &mut W, value: &JsonValue) -> io::Result<()> {
    let payload = value.to_json();
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds the size limit",
        ));
    }
    writer.write_all(&(bytes.len() as u32).to_be_bytes())?;
    writer.write_all(bytes)?;
    writer.flush()
}

/// Builds a request frame: `{"id": id, "op": op, ...params}`.
pub fn request(id: i64, op: &str, params: JsonValue) -> JsonValue {
    let mut out = JsonValue::object();
    out.set("id", JsonValue::Int(id));
    out.set("op", JsonValue::Str(op.to_owned()));
    if let Ok(entries) = params.as_object() {
        for (key, value) in entries {
            out.set(key, value.clone());
        }
    }
    out
}

/// Builds a success response echoing `id`.
pub fn ok_response(id: i64, result: JsonValue) -> JsonValue {
    let mut out = JsonValue::object();
    out.set("id", JsonValue::Int(id));
    out.set("ok", JsonValue::Bool(true));
    out.set("result", result);
    out
}

/// Builds a failure response echoing `id`, with a machine-readable `code`
/// (see [`codes`]) and a human-readable `message`.
pub fn error_response(id: i64, code: &str, message: &str) -> JsonValue {
    let mut out = JsonValue::object();
    out.set("id", JsonValue::Int(id));
    out.set("ok", JsonValue::Bool(false));
    let mut error = JsonValue::object();
    error.set("code", JsonValue::Str(code.to_owned()));
    error.set("message", JsonValue::Str(message.to_owned()));
    out.set("error", error);
    out
}

/// Builds a load-shed response: `busy` with a `retry_after_ms` hint the
/// client's backoff honours.
pub fn busy_response(id: i64, retry_after_ms: u64) -> JsonValue {
    let mut out = error_response(
        id,
        codes::BUSY,
        "admission queue is full; back off and retry",
    );
    if let Some(error) = out.get("error").cloned() {
        let mut error = error;
        error.set("retry_after_ms", JsonValue::Int(retry_after_ms as i64));
        out.set("error", error);
    }
    out
}

/// Per-connection limits the hardened [`read_request`] reader enforces.
#[derive(Debug, Clone, Copy)]
pub struct FrameLimits {
    /// Frames with a larger length prefix are discarded and answered with
    /// [`codes::FRAME_TOO_LARGE`] instead of being allocated.
    pub max_frame_bytes: u32,
    /// How long a connection may sit with **no** bytes of a new frame before
    /// the reaper closes it. `None` disables idle reaping.
    pub idle_timeout: Option<std::time::Duration>,
    /// How long a **partially received** frame (e.g. a stalled length
    /// prefix) may dribble before the connection is closed. `None` disables
    /// stall reaping.
    pub stall_timeout: Option<std::time::Duration>,
}

impl Default for FrameLimits {
    fn default() -> FrameLimits {
        FrameLimits {
            max_frame_bytes: MAX_FRAME_BYTES,
            idle_timeout: None,
            stall_timeout: Some(std::time::Duration::from_secs(10)),
        }
    }
}

/// What [`read_request`] observed. Every variant tells the caller exactly
/// how to respond: answer and continue, answer and close, or just close —
/// there is no state in which a socket is silently left hanging.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, well-formed frame.
    Frame(JsonValue),
    /// Clean end-of-stream at a frame boundary.
    Closed,
    /// No bytes arrived within the idle timeout; reap the connection.
    IdleTimedOut,
    /// A partial frame stalled past the stall timeout (slow-loris); close.
    Stalled,
    /// The caller asked to stop (shutdown / peer disconnect) mid-wait.
    Stopped,
    /// Length prefix exceeded `max_frame_bytes`. The payload was drained,
    /// so the caller can answer [`codes::FRAME_TOO_LARGE`] and keep reading.
    TooLarge(u64),
    /// The payload was not UTF-8 JSON, or the stream died mid-frame.
    /// `resynced` is true when the full payload was consumed (answer
    /// [`codes::BAD_REQUEST`] and continue) and false when framing is lost
    /// (close the connection).
    Malformed {
        /// What was wrong with the frame.
        message: String,
        /// Whether the stream is positioned at the next frame boundary.
        resynced: bool,
    },
    /// A non-retryable I/O error; close the connection.
    Failed(io::Error),
}

/// True for errors that mean "no data yet", not "the stream is broken".
/// `WouldBlock`/`TimedOut` come from the poll-interval `SO_RCVTIMEO` the
/// server keeps on every connection socket.
fn retryable(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Reads one request frame under [`FrameLimits`], tolerating a poll-interval
/// read timeout on the underlying socket. Progress is tracked across
/// retryable errors, so a frame split at any byte boundary (including inside
/// the 4-byte length prefix) reassembles correctly. `should_stop` is
/// consulted on every retryable wakeup; when it returns true the read
/// abandons ship with [`ReadOutcome::Stopped`].
pub fn read_request<R: Read>(
    reader: &mut R,
    limits: &FrameLimits,
    should_stop: &mut dyn FnMut() -> bool,
) -> ReadOutcome {
    use std::time::Instant;

    let started = Instant::now();
    let mut first_byte_at: Option<Instant> = None;

    // Phase 1: the 4-byte length prefix, byte by byte across timeouts.
    let mut prefix = [0u8; 4];
    let mut have = 0usize;
    while have < 4 {
        match reader.read(&mut prefix[have..]) {
            Ok(0) => {
                return if have == 0 {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed {
                        message: format!("stream closed {have} bytes into a length prefix"),
                        resynced: false,
                    }
                };
            }
            Ok(n) => {
                if first_byte_at.is_none() {
                    first_byte_at = Some(Instant::now());
                }
                have += n;
            }
            Err(e) if retryable(e.kind()) => {
                if should_stop() {
                    return ReadOutcome::Stopped;
                }
                match first_byte_at {
                    None => {
                        if let Some(idle) = limits.idle_timeout {
                            if started.elapsed() >= idle {
                                return ReadOutcome::IdleTimedOut;
                            }
                        }
                    }
                    Some(first) => {
                        if let Some(stall) = limits.stall_timeout {
                            if first.elapsed() >= stall {
                                return ReadOutcome::Stalled;
                            }
                        }
                    }
                }
            }
            Err(e) => return ReadOutcome::Failed(e),
        }
    }
    let len = u32::from_be_bytes(prefix) as u64;
    let frame_started = first_byte_at.unwrap_or_else(Instant::now);
    let stalled = |first: Instant| match limits.stall_timeout {
        Some(stall) => first.elapsed() >= stall,
        None => false,
    };

    // Phase 2a: oversized frame — drain it in bounded chunks (never
    // allocating the advertised length) so the connection can be answered
    // with a clean error and reused.
    if len > u64::from(limits.max_frame_bytes) {
        let mut remaining = len;
        let mut sink = [0u8; 64 * 1024];
        while remaining > 0 {
            let want = remaining.min(sink.len() as u64) as usize;
            match reader.read(&mut sink[..want]) {
                Ok(0) => {
                    return ReadOutcome::Malformed {
                        message: "stream closed inside an oversized frame".to_owned(),
                        resynced: false,
                    };
                }
                Ok(n) => remaining -= n as u64,
                Err(e) if retryable(e.kind()) => {
                    if should_stop() {
                        return ReadOutcome::Stopped;
                    }
                    if stalled(frame_started) {
                        return ReadOutcome::Stalled;
                    }
                }
                Err(e) => return ReadOutcome::Failed(e),
            }
        }
        return ReadOutcome::TooLarge(len);
    }

    // Phase 2b: normal payload, incremental reads with stall accounting.
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match reader.read(&mut payload[filled..]) {
            Ok(0) => {
                return ReadOutcome::Malformed {
                    message: format!("stream closed {filled} bytes into a {len}-byte frame"),
                    resynced: false,
                };
            }
            Ok(n) => filled += n,
            Err(e) if retryable(e.kind()) => {
                if should_stop() {
                    return ReadOutcome::Stopped;
                }
                if stalled(frame_started) {
                    return ReadOutcome::Stalled;
                }
            }
            Err(e) => return ReadOutcome::Failed(e),
        }
    }
    let text = match String::from_utf8(payload) {
        Ok(text) => text,
        Err(e) => {
            return ReadOutcome::Malformed {
                message: format!("frame not UTF-8: {e}"),
                resynced: true,
            };
        }
    };
    match JsonValue::parse(&text) {
        Ok(value) => ReadOutcome::Frame(value),
        Err(e) => ReadOutcome::Malformed {
            message: format!("frame not JSON: {e}"),
            resynced: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut params = JsonValue::object();
        params.set("dataset", JsonValue::Str("adult".into()));
        params.set("p", JsonValue::Int(2));
        let req = request(7, "check", params);
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let mut cursor = &buf[..];
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back.require("id").unwrap().as_i64().unwrap(), 7);
        assert_eq!(back.require("op").unwrap().as_str().unwrap(), "check");
        assert_eq!(back.require("p").unwrap().as_i64().unwrap(), 2);
        // Stream exhausted cleanly.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn pipelined_frames_read_in_order() {
        let mut buf = Vec::new();
        for id in 0..3 {
            write_frame(&mut buf, &request(id, "stats", JsonValue::object())).unwrap();
        }
        let mut cursor = &buf[..];
        for id in 0..3 {
            let frame = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(frame.require("id").unwrap().as_i64().unwrap(), id);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        buf.extend_from_slice(b"xxxx");
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &request(1, "stats", JsonValue::object())).unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = &buf[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    /// A reader that yields its script one item at a time: either a byte
    /// chunk or a `WouldBlock` (simulating the poll-interval socket
    /// timeout). Exhausted script = EOF.
    struct ScriptedReader {
        script: std::collections::VecDeque<Result<Vec<u8>, io::ErrorKind>>,
    }

    impl Read for ScriptedReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.pop_front() {
                None => Ok(0),
                Some(Err(kind)) => Err(kind.into()),
                Some(Ok(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    if n < bytes.len() {
                        self.script.push_front(Ok(bytes[n..].to_vec()));
                    }
                    Ok(n)
                }
            }
        }
    }

    fn scripted(items: Vec<Result<Vec<u8>, io::ErrorKind>>) -> ScriptedReader {
        ScriptedReader {
            script: items.into(),
        }
    }

    fn no_stop() -> impl FnMut() -> bool {
        || false
    }

    #[test]
    fn read_request_reassembles_one_byte_splits_with_timeouts_between() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &request(3, "stats", JsonValue::object())).unwrap();
        // Every byte its own read, a WouldBlock between each pair.
        let mut script = Vec::new();
        for byte in &buf {
            script.push(Err(io::ErrorKind::WouldBlock));
            script.push(Ok(vec![*byte]));
        }
        let mut reader = scripted(script);
        match read_request(&mut reader, &FrameLimits::default(), &mut no_stop()) {
            ReadOutcome::Frame(frame) => {
                assert_eq!(frame.require("id").unwrap().as_i64().unwrap(), 3);
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        assert!(matches!(
            read_request(&mut reader, &FrameLimits::default(), &mut no_stop()),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn read_request_drains_oversized_frames_and_resyncs() {
        let limits = FrameLimits {
            max_frame_bytes: 1024,
            ..FrameLimits::default()
        };
        let mut buf = Vec::new();
        buf.extend_from_slice(&(200_000u32).to_be_bytes());
        buf.extend_from_slice(&vec![b'x'; 200_000]);
        // A well-formed frame right behind the oversized one.
        write_frame(&mut buf, &request(9, "stats", JsonValue::object())).unwrap();
        let mut cursor = &buf[..];
        match read_request(&mut cursor, &limits, &mut no_stop()) {
            ReadOutcome::TooLarge(len) => assert_eq!(len, 200_000),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        match read_request(&mut cursor, &limits, &mut no_stop()) {
            ReadOutcome::Frame(frame) => {
                assert_eq!(frame.require("id").unwrap().as_i64().unwrap(), 9);
            }
            other => panic!("expected the next frame after resync, got {other:?}"),
        }
    }

    #[test]
    fn read_request_reports_malformed_payloads_as_resynced() {
        // Valid framing, invalid JSON: the connection can keep going.
        let payload = b"{not json";
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(payload);
        match read_request(&mut &buf[..], &FrameLimits::default(), &mut no_stop()) {
            ReadOutcome::Malformed { resynced, .. } => assert!(resynced),
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Truncated frame: framing is lost, the connection must close.
        let mut torn = Vec::new();
        write_frame(&mut torn, &request(1, "stats", JsonValue::object())).unwrap();
        torn.truncate(torn.len() - 2);
        match read_request(&mut &torn[..], &FrameLimits::default(), &mut no_stop()) {
            ReadOutcome::Malformed { resynced, .. } => assert!(!resynced),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn read_request_honours_stop_idle_and_stall() {
        use std::time::Duration;
        // Stop request mid-wait.
        let mut reader = scripted(vec![
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::WouldBlock),
        ]);
        let mut stop_now = || true;
        assert!(matches!(
            read_request(&mut reader, &FrameLimits::default(), &mut stop_now),
            ReadOutcome::Stopped
        ));
        // Idle timeout with zero budget trips on the first empty wakeup.
        let limits = FrameLimits {
            idle_timeout: Some(Duration::ZERO),
            ..FrameLimits::default()
        };
        let mut reader = scripted(vec![Err(io::ErrorKind::WouldBlock)]);
        assert!(matches!(
            read_request(&mut reader, &limits, &mut no_stop()),
            ReadOutcome::IdleTimedOut
        ));
        // A stalled prefix (two bytes then silence) trips the stall timeout,
        // not the idle timeout.
        let limits = FrameLimits {
            idle_timeout: None,
            stall_timeout: Some(Duration::ZERO),
            ..FrameLimits::default()
        };
        let mut reader = scripted(vec![
            Ok(vec![0, 0]),
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::WouldBlock),
        ]);
        assert!(matches!(
            read_request(&mut reader, &limits, &mut no_stop()),
            ReadOutcome::Stalled
        ));
    }

    #[test]
    fn busy_response_carries_retry_hint() {
        let resp = busy_response(4, 120);
        assert!(!resp.require("ok").unwrap().as_bool().unwrap());
        let error = resp.require("error").unwrap();
        assert_eq!(error.require("code").unwrap().as_str().unwrap(), "busy");
        assert_eq!(
            error.require("retry_after_ms").unwrap().as_u64().unwrap(),
            120
        );
    }

    #[test]
    fn error_response_shape() {
        let resp = error_response(9, codes::NOT_FOUND, "no dataset `x`");
        assert!(!resp.require("ok").unwrap().as_bool().unwrap());
        let error = resp.require("error").unwrap();
        assert_eq!(
            error.require("code").unwrap().as_str().unwrap(),
            "not_found"
        );
    }
}
