//! Wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! Each frame is a 4-byte big-endian `u32` payload length followed by that
//! many bytes of UTF-8 JSON. Requests are objects `{"id": N, "op": "...",
//! ...params}`; responses echo the id as `{"id": N, "ok": true, "result":
//! {...}}` or `{"id": N, "ok": false, "error": {"code": "...", "message":
//! "..."}}`. One response per request, in request order per connection —
//! clients may pipeline.
//!
//! The framing is deliberately dumb: no compression, no multiplexing, no
//! external dependencies. The [`psens_microdata::JsonValue`] parser the rest
//! of the workspace already uses for reports does the JSON.

use psens_microdata::JsonValue;
use std::io::{self, Read, Write};

/// Hard ceiling on a single frame's payload (64 MiB). Registering a large
/// CSV is the only legitimately big frame; anything larger is a corrupt or
/// hostile length prefix, and refusing it keeps a bad client from making the
/// server allocate unbounded memory.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Error codes carried in the `error.code` field of a failure response.
pub mod codes {
    /// Malformed frame, unknown op, missing or ill-typed parameter.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The named dataset is not registered.
    pub const NOT_FOUND: &str = "not_found";
    /// `register` for a name that is already taken.
    pub const CONFLICT: &str = "conflict";
    /// The request's budget tripped (deadline, node budget, disconnect, or
    /// server shutdown) before the verdict was proven.
    pub const INTERRUPTED: &str = "interrupted";
    /// The server is shutting down and no longer admits work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// Anything else (I/O, internal invariant).
    pub const INTERNAL: &str = "internal";
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream at a frame boundary
/// (the client closed after its last request); an EOF mid-frame is an error.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<JsonValue>> {
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("frame not UTF-8: {e}")))?;
    JsonValue::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("frame not JSON: {e}")))
}

/// Writes one frame and flushes it.
pub fn write_frame<W: Write>(writer: &mut W, value: &JsonValue) -> io::Result<()> {
    let payload = value.to_json();
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds the size limit",
        ));
    }
    writer.write_all(&(bytes.len() as u32).to_be_bytes())?;
    writer.write_all(bytes)?;
    writer.flush()
}

/// Builds a request frame: `{"id": id, "op": op, ...params}`.
pub fn request(id: i64, op: &str, params: JsonValue) -> JsonValue {
    let mut out = JsonValue::object();
    out.set("id", JsonValue::Int(id));
    out.set("op", JsonValue::Str(op.to_owned()));
    if let Ok(entries) = params.as_object() {
        for (key, value) in entries {
            out.set(key, value.clone());
        }
    }
    out
}

/// Builds a success response echoing `id`.
pub fn ok_response(id: i64, result: JsonValue) -> JsonValue {
    let mut out = JsonValue::object();
    out.set("id", JsonValue::Int(id));
    out.set("ok", JsonValue::Bool(true));
    out.set("result", result);
    out
}

/// Builds a failure response echoing `id`, with a machine-readable `code`
/// (see [`codes`]) and a human-readable `message`.
pub fn error_response(id: i64, code: &str, message: &str) -> JsonValue {
    let mut out = JsonValue::object();
    out.set("id", JsonValue::Int(id));
    out.set("ok", JsonValue::Bool(false));
    let mut error = JsonValue::object();
    error.set("code", JsonValue::Str(code.to_owned()));
    error.set("message", JsonValue::Str(message.to_owned()));
    out.set("error", error);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut params = JsonValue::object();
        params.set("dataset", JsonValue::Str("adult".into()));
        params.set("p", JsonValue::Int(2));
        let req = request(7, "check", params);
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let mut cursor = &buf[..];
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back.require("id").unwrap().as_i64().unwrap(), 7);
        assert_eq!(back.require("op").unwrap().as_str().unwrap(), "check");
        assert_eq!(back.require("p").unwrap().as_i64().unwrap(), 2);
        // Stream exhausted cleanly.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn pipelined_frames_read_in_order() {
        let mut buf = Vec::new();
        for id in 0..3 {
            write_frame(&mut buf, &request(id, "stats", JsonValue::object())).unwrap();
        }
        let mut cursor = &buf[..];
        for id in 0..3 {
            let frame = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(frame.require("id").unwrap().as_i64().unwrap(), id);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        buf.extend_from_slice(b"xxxx");
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &request(1, "stats", JsonValue::object())).unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = &buf[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn error_response_shape() {
        let resp = error_response(9, codes::NOT_FOUND, "no dataset `x`");
        assert!(!resp.require("ok").unwrap().as_bool().unwrap());
        let error = resp.require("error").unwrap();
        assert_eq!(
            error.require("code").unwrap().as_str().unwrap(),
            "not_found"
        );
    }
}
