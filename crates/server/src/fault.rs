//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a list of rules, each naming a **site** (where in the
//! request path the fault fires), an optional **op filter**, an **action**
//! (what goes wrong), and a **trigger** (which matching arrivals fire).
//! Everything is deterministic: `every`/`first` triggers count matching
//! arrivals, and the probabilistic trigger draws from a xorshift RNG seeded
//! by the plan — the same plan against the same serialized request order
//! injects the same faults, which is what lets the chaos harness assert the
//! verdict oracle byte-for-byte *under* faults.
//!
//! Plans arrive through the test-only `inject` protocol verb (refused unless
//! the server was started with injection enabled) or the `PSENS_FAULTS`
//! environment variable at boot. A production server never evaluates a plan:
//! the decide path is a single `Mutex<Option<..>>` check that is `None`.
//!
//! Plan JSON:
//!
//! ```json
//! {"seed": 7, "rules": [
//!   {"site": "exec",           "op": "check", "action": "panic",    "first": 1},
//!   {"site": "write_response", "action": "drop",     "every": 3},
//!   {"site": "write_response", "action": "truncate", "first": 2},
//!   {"site": "exec",           "action": "delay_ms", "ms": 40, "prob_pct": 50}
//! ]}
//! ```

use psens_microdata::JsonValue;

/// Advances a xorshift64 state and returns the next draw. Deterministic and
/// dependency-free; also used for client retry jitter.
pub(crate) fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Where in the request path a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// After the request frame is read, before admission — delays here
    /// simulate a slow pre-processing path without occupying a work slot.
    PreDispatch,
    /// Inside the admitted work op — `panic` here simulates a worker crash
    /// at a named site, `delay_ms` a slow dataset holding its slot.
    Exec,
    /// When the response frame is written — `drop` closes without
    /// answering, `truncate` writes a torn frame then closes, `delay_ms`
    /// stalls the response.
    WriteResponse,
}

impl Site {
    fn parse(text: &str) -> Option<Site> {
        match text {
            "pre_dispatch" => Some(Site::PreDispatch),
            "exec" => Some(Site::Exec),
            "write_response" => Some(Site::WriteResponse),
            _ => None,
        }
    }

    /// The wire name, as accepted in plan JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Site::PreDispatch => "pre_dispatch",
            Site::Exec => "exec",
            Site::WriteResponse => "write_response",
        }
    }
}

/// What goes wrong when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic the worker thread (the server must contain it).
    Panic,
    /// Close the connection without writing the response.
    Drop,
    /// Write a torn response frame (full length prefix, half the payload)
    /// and close.
    Truncate,
    /// Sleep this many milliseconds before proceeding.
    DelayMs(u64),
}

/// Which matching arrivals a rule fires on.
#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// Fire on every Nth matching arrival (1 = all).
    Every(u64),
    /// Fire on the first N matching arrivals only.
    First(u64),
    /// Fire with this percent probability per arrival, drawn from the
    /// plan's seeded RNG (deterministic given arrival order).
    ProbPct(u64),
}

/// One fault rule: site + optional op filter + action + trigger, with
/// arrival/fire counters for the `health`/`inject` reports.
#[derive(Debug, Clone)]
pub struct FaultRule {
    site: Site,
    op: Option<String>,
    action: Action,
    trigger: Trigger,
    hits: u64,
    fired: u64,
}

impl FaultRule {
    fn from_json(value: &JsonValue) -> Result<FaultRule, String> {
        let site_text = value
            .get("site")
            .ok_or("rule missing `site`")?
            .as_str()
            .map_err(|e| format!("rule `site`: {e}"))?;
        let site = Site::parse(site_text).ok_or_else(|| {
            format!("unknown site `{site_text}` (expected pre_dispatch|exec|write_response)")
        })?;
        let op = match value.get("op") {
            Some(v) => Some(
                v.as_str()
                    .map_err(|e| format!("rule `op`: {e}"))?
                    .to_owned(),
            ),
            None => None,
        };
        let action_text = value
            .get("action")
            .ok_or("rule missing `action`")?
            .as_str()
            .map_err(|e| format!("rule `action`: {e}"))?;
        let action = match action_text {
            "panic" => Action::Panic,
            "drop" => Action::Drop,
            "truncate" => Action::Truncate,
            "delay_ms" => {
                let ms = value
                    .get("ms")
                    .ok_or("delay_ms rule missing `ms`")?
                    .as_u64()
                    .map_err(|e| format!("rule `ms`: {e}"))?;
                Action::DelayMs(ms)
            }
            other => return Err(format!("unknown action `{other}`")),
        };
        let triggers = [
            value.get("every").map(|v| ("every", v)),
            value.get("first").map(|v| ("first", v)),
            value.get("prob_pct").map(|v| ("prob_pct", v)),
        ];
        let mut chosen = None;
        for (name, v) in triggers.into_iter().flatten() {
            if chosen.is_some() {
                return Err("rule must name at most one of every|first|prob_pct".to_owned());
            }
            let n = v.as_u64().map_err(|e| format!("rule `{name}`: {e}"))?;
            chosen = Some(match name {
                "every" if n == 0 => return Err("`every` must be >= 1".to_owned()),
                "every" => Trigger::Every(n),
                "first" => Trigger::First(n),
                _ if n > 100 => return Err("`prob_pct` must be 0..=100".to_owned()),
                _ => Trigger::ProbPct(n),
            });
        }
        Ok(FaultRule {
            site,
            op,
            action,
            // An unadorned rule fires exactly once.
            trigger: chosen.unwrap_or(Trigger::First(1)),
            hits: 0,
            fired: 0,
        })
    }
}

/// A mutable set of fault rules plus the plan's seeded RNG state.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    rng: u64,
}

impl FaultPlan {
    /// Parses plan JSON (see the module docs for the shape).
    pub fn from_json(plan: &JsonValue) -> Result<FaultPlan, String> {
        let seed = match plan.get("seed") {
            Some(v) => v.as_u64().map_err(|e| format!("plan `seed`: {e}"))?,
            None => 1,
        };
        let rules_value = plan
            .get("rules")
            .ok_or("plan missing `rules`")?
            .as_array()
            .map_err(|e| format!("plan `rules`: {e}"))?;
        let rules = rules_value
            .iter()
            .enumerate()
            .map(|(i, v)| FaultRule::from_json(v).map_err(|e| format!("rule {i}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        if rules.is_empty() {
            return Err("plan has no rules".to_owned());
        }
        Ok(FaultPlan {
            rules,
            // A zero xorshift state is a fixed point; force it odd instead.
            rng: seed | 1,
        })
    }

    /// Parses plan JSON from text (the `PSENS_FAULTS` env var path).
    pub fn from_json_text(text: &str) -> Result<FaultPlan, String> {
        let value = JsonValue::parse(text).map_err(|e| format!("fault plan JSON: {e}"))?;
        FaultPlan::from_json(&value)
    }

    /// Number of rules in the plan.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Records one arrival at `site` for `op` and returns the action of the
    /// first rule that fires, if any. Non-firing matches still advance their
    /// rule's counters, so `every`/`first` triggers stay deterministic.
    pub fn decide(&mut self, site: Site, op: &str) -> Option<Action> {
        let mut chosen = None;
        for rule in &mut self.rules {
            if rule.site != site {
                continue;
            }
            if let Some(filter) = &rule.op {
                if filter != op {
                    continue;
                }
            }
            rule.hits += 1;
            let fires = match rule.trigger {
                Trigger::Every(n) => rule.hits % n == 0,
                Trigger::First(n) => rule.hits <= n,
                Trigger::ProbPct(pct) => xorshift64(&mut self.rng) % 100 < pct,
            };
            if fires {
                rule.fired += 1;
                if chosen.is_none() {
                    chosen = Some(rule.action);
                }
            }
        }
        chosen
    }

    /// Per-rule arrival/fire counters for the `inject`/`health` reports.
    pub fn counters(&self) -> JsonValue {
        JsonValue::Array(
            self.rules
                .iter()
                .map(|rule| {
                    let mut entry = JsonValue::object();
                    entry.set("site", JsonValue::Str(rule.site.as_str().to_owned()));
                    if let Some(op) = &rule.op {
                        entry.set("op", JsonValue::Str(op.clone()));
                    }
                    entry.set(
                        "action",
                        JsonValue::Str(
                            match rule.action {
                                Action::Panic => "panic",
                                Action::Drop => "drop",
                                Action::Truncate => "truncate",
                                Action::DelayMs(_) => "delay_ms",
                            }
                            .to_owned(),
                        ),
                    );
                    entry.set("hits", JsonValue::Int(rule.hits as i64));
                    entry.set("fired", JsonValue::Int(rule.fired as i64));
                    entry
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(text: &str) -> FaultPlan {
        FaultPlan::from_json_text(text).expect("plan parses")
    }

    #[test]
    fn every_and_first_triggers_are_deterministic() {
        let mut p = plan(
            r#"{"rules": [
                {"site": "write_response", "action": "drop", "every": 3},
                {"site": "exec", "op": "check", "action": "panic", "first": 2}
            ]}"#,
        );
        let drops: Vec<bool> = (0..9)
            .map(|_| p.decide(Site::WriteResponse, "anonymize").is_some())
            .collect();
        assert_eq!(
            drops,
            [false, false, true, false, false, true, false, false, true]
        );
        // The op filter gates matches; non-matching ops never advance hits.
        assert_eq!(p.decide(Site::Exec, "anonymize"), None);
        assert_eq!(p.decide(Site::Exec, "check"), Some(Action::Panic));
        assert_eq!(p.decide(Site::Exec, "check"), Some(Action::Panic));
        assert_eq!(p.decide(Site::Exec, "check"), None, "first 2 exhausted");
    }

    #[test]
    fn seeded_probability_replays_identically() {
        let text = r#"{"seed": 99, "rules": [
            {"site": "exec", "action": "delay_ms", "ms": 5, "prob_pct": 40}
        ]}"#;
        let mut a = plan(text);
        let mut b = plan(text);
        let run = |p: &mut FaultPlan| -> Vec<bool> {
            (0..64)
                .map(|_| p.decide(Site::Exec, "sleep").is_some())
                .collect()
        };
        let fa = run(&mut a);
        assert_eq!(fa, run(&mut b), "same seed, same arrivals, same faults");
        assert!(fa.iter().any(|&f| f) && !fa.iter().all(|&f| f));
    }

    #[test]
    fn malformed_plans_are_refused() {
        for bad in [
            r#"{"rules": []}"#,
            r#"{"rules": [{"action": "drop"}]}"#,
            r#"{"rules": [{"site": "nowhere", "action": "drop"}]}"#,
            r#"{"rules": [{"site": "exec", "action": "explode"}]}"#,
            r#"{"rules": [{"site": "exec", "action": "delay_ms"}]}"#,
            r#"{"rules": [{"site": "exec", "action": "drop", "every": 0}]}"#,
            r#"{"rules": [{"site": "exec", "action": "drop", "every": 2, "first": 1}]}"#,
            r#"{"rules": [{"site": "exec", "action": "drop", "prob_pct": 101}]}"#,
            "not json",
        ] {
            assert!(FaultPlan::from_json_text(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn unadorned_rule_fires_once() {
        let mut p = plan(r#"{"rules": [{"site": "exec", "action": "panic"}]}"#);
        assert_eq!(p.decide(Site::Exec, "check"), Some(Action::Panic));
        assert_eq!(p.decide(Site::Exec, "check"), None);
        let counters = p.counters();
        let rule = &counters.as_array().unwrap()[0];
        assert_eq!(rule.get("hits").unwrap().as_u64().unwrap(), 2);
        assert_eq!(rule.get("fired").unwrap().as_u64().unwrap(), 1);
    }
}
