//! `psens-server` — the long-running anonymization daemon.
//!
//! ```text
//! psens-server [--listen ADDR] [--max-concurrent N] [--addr-file PATH]
//! ```
//!
//! `--listen 127.0.0.1:0` binds a free port; `--addr-file` publishes the
//! resolved address (one line) so scripts and tests can find it. SIGINT
//! trips the server's shutdown token: in-flight requests observe the
//! cancellation through their child tokens and finish as interrupted, the
//! acceptor drains, and the process exits 0 after printing
//! `shutdown complete`.

use psens_core::CancelToken;
use psens_server::{start, ServerConfig};
use std::process::ExitCode;
use std::sync::OnceLock;
use std::time::Duration;

/// The token the SIGINT handler trips — a clone of the server's shutdown
/// token, so Ctrl-C and the `shutdown` op travel the same path.
static SIGINT_TOKEN: OnceLock<CancelToken> = OnceLock::new();

#[cfg(unix)]
mod sig {
    /// POSIX SIGINT number (asm-generic; holds on every Linux arch and BSD).
    const SIGINT: i32 = 2;

    extern "C" {
        /// C `signal(2)`; the handler travels as a plain function address.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Atomic store only: async-signal-safe.
        if let Some(token) = super::SIGINT_TOKEN.get() {
            token.cancel();
        }
    }

    pub(super) fn install() {
        let handler: extern "C" fn(i32) = on_sigint;
        unsafe {
            signal(SIGINT, handler as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub(super) fn install() {}
}

fn parse_args() -> Result<(ServerConfig, Option<String>), String> {
    let mut config = ServerConfig::default();
    let mut addr_file = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--listen" => config.listen = take("--listen")?,
            "--max-concurrent" => {
                config.max_concurrent = take("--max-concurrent")?
                    .parse()
                    .map_err(|e| format!("--max-concurrent: {e}"))?
            }
            "--addr-file" => addr_file = Some(take("--addr-file")?),
            "--help" | "-h" => {
                return Err(
                    "usage: psens-server [--listen ADDR] [--max-concurrent N] [--addr-file PATH]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((config, addr_file))
}

fn main() -> ExitCode {
    let (config, addr_file) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let max_concurrent = config.max_concurrent;
    let mut handle = match start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("psens-server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let token = handle.shutdown_token();
    SIGINT_TOKEN.set(token.clone()).ok();
    sig::install();
    if let Some(path) = &addr_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", handle.addr())) {
            eprintln!("psens-server: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "psens-server: listening on {} (max-concurrent {max_concurrent})",
        handle.addr()
    );
    // Park until SIGINT or a `shutdown` op trips the token.
    while !token.is_cancelled() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
    println!(
        "psens-server: shutdown complete ({} request(s) served)",
        handle.requests_served()
    );
    ExitCode::SUCCESS
}
