//! `psens-server` — the long-running anonymization daemon.
//!
//! ```text
//! psens-server [--listen ADDR] [--max-concurrent N] [--addr-file PATH]
//!              [--queue-depth N] [--max-frame-bytes N]
//!              [--idle-timeout-ms N] [--stall-timeout-ms N]
//!              [--write-timeout-ms N] [--max-pool-bytes N]
//!              [--state-dir DIR] [--enable-inject]
//! ```
//!
//! `--listen 127.0.0.1:0` binds a free port; `--addr-file` publishes the
//! resolved address (one line) so scripts and tests can find it.
//! `--state-dir` makes registrations and warm-pool keys crash-recoverable
//! (write-ahead journal) and snapshots exact verdicts on clean shutdown.
//! `--enable-inject` (or env `PSENS_ENABLE_INJECT=1`) allows the test-only
//! `inject` op; env `PSENS_FAULTS` can carry a boot-time fault plan.
//! SIGINT trips the server's shutdown token: in-flight requests observe the
//! cancellation through their child tokens and finish as interrupted, the
//! acceptor drains, the verdict snapshot is written, and the process exits
//! 0 after printing `shutdown complete`.

use psens_core::CancelToken;
use psens_server::{start, ServerConfig};
use std::process::ExitCode;
use std::sync::OnceLock;
use std::time::Duration;

/// The token the SIGINT handler trips — a clone of the server's shutdown
/// token, so Ctrl-C and the `shutdown` op travel the same path.
static SIGINT_TOKEN: OnceLock<CancelToken> = OnceLock::new();

#[cfg(unix)]
mod sig {
    /// POSIX SIGINT number (asm-generic; holds on every Linux arch and BSD).
    const SIGINT: i32 = 2;

    extern "C" {
        /// C `signal(2)`; the handler travels as a plain function address.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Atomic store only: async-signal-safe.
        if let Some(token) = super::SIGINT_TOKEN.get() {
            token.cancel();
        }
    }

    pub(super) fn install() {
        let handler: extern "C" fn(i32) = on_sigint;
        unsafe {
            signal(SIGINT, handler as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub(super) fn install() {}
}

fn parse_args() -> Result<(ServerConfig, Option<String>), String> {
    let mut config = ServerConfig::default();
    let mut addr_file = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        fn num<T: std::str::FromStr>(name: &str, text: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            text.parse().map_err(|e| format!("{name}: {e}"))
        }
        match arg.as_str() {
            "--listen" => config.listen = take("--listen")?,
            "--max-concurrent" => {
                config.max_concurrent = num("--max-concurrent", take("--max-concurrent")?)?
            }
            "--queue-depth" => config.queue_depth = num("--queue-depth", take("--queue-depth")?)?,
            "--max-frame-bytes" => {
                config.max_frame_bytes = num("--max-frame-bytes", take("--max-frame-bytes")?)?
            }
            "--idle-timeout-ms" => {
                config.idle_timeout_ms = num("--idle-timeout-ms", take("--idle-timeout-ms")?)?
            }
            "--stall-timeout-ms" => {
                config.stall_timeout_ms = num("--stall-timeout-ms", take("--stall-timeout-ms")?)?
            }
            "--write-timeout-ms" => {
                config.write_timeout_ms = num("--write-timeout-ms", take("--write-timeout-ms")?)?
            }
            "--max-pool-bytes" => {
                config.max_pool_bytes = num("--max-pool-bytes", take("--max-pool-bytes")?)?
            }
            "--state-dir" => config.state_dir = Some(take("--state-dir")?.into()),
            "--enable-inject" => config.enable_inject = true,
            "--addr-file" => addr_file = Some(take("--addr-file")?),
            "--help" | "-h" => {
                return Err(
                    "usage: psens-server [--listen ADDR] [--max-concurrent N] [--addr-file PATH]\n\
                     \x20                   [--queue-depth N] [--max-frame-bytes N]\n\
                     \x20                   [--idle-timeout-ms N] [--stall-timeout-ms N]\n\
                     \x20                   [--write-timeout-ms N] [--max-pool-bytes N]\n\
                     \x20                   [--state-dir DIR] [--enable-inject]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    // Test-only hooks via environment, for harnesses that can't pass flags.
    if std::env::var("PSENS_ENABLE_INJECT").is_ok_and(|v| v == "1") {
        config.enable_inject = true;
    }
    if let Ok(plan) = std::env::var("PSENS_FAULTS") {
        if !plan.is_empty() {
            config.fault_plan = Some(plan);
        }
    }
    Ok((config, addr_file))
}

fn main() -> ExitCode {
    let (config, addr_file) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let max_concurrent = config.max_concurrent;
    let mut handle = match start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("psens-server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let token = handle.shutdown_token();
    SIGINT_TOKEN.set(token.clone()).ok();
    sig::install();
    if let Some(path) = &addr_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", handle.addr())) {
            eprintln!("psens-server: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "psens-server: listening on {} (max-concurrent {max_concurrent})",
        handle.addr()
    );
    let recovery = handle.recovery();
    if recovery.datasets > 0 || recovery.pools > 0 || recovery.verdicts > 0 {
        println!(
            "psens-server: recovered {} dataset(s), {} pool(s), {} verdict(s)",
            recovery.datasets, recovery.pools, recovery.verdicts
        );
    }
    for warning in &recovery.warnings {
        eprintln!("psens-server: recovery: {warning}");
    }
    // Park until SIGINT or a `shutdown` op trips the token.
    while !token.is_cancelled() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let snapshot = handle.shutdown();
    if let Some(stats) = snapshot {
        println!(
            "psens-server: snapshot written ({} verdict(s), {} byte(s))",
            stats.entries, stats.bytes
        );
    }
    println!(
        "psens-server: shutdown complete ({} request(s) served)",
        handle.requests_served()
    );
    ExitCode::SUCCESS
}
