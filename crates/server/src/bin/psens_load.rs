//! `psens-load` — sustained concurrent mixed traffic against a psens-server.
//!
//! ```text
//! psens-load --addr HOST:PORT [--clients N] [--requests N] [--rows N]
//!            [--seed S] [--retries N] [--retry-base-ms N] [--retry-max-ms N]
//!            [--io-timeout-ms N] [--out BENCH_8.json]
//! psens-load --addr-file PATH ...
//! ```
//!
//! Registers a deterministic Adult fixture, then drives two phases of
//! concurrent client traffic — `cold` (every anonymize runs `no_cache`) and
//! `warm` (anonymize requests share the server's pooled verdict store) —
//! each a mixed cycle of `check` / `analyze` / `anonymize` / `query` ops.
//! Every request goes through the retrying client path: `busy` sheds and
//! transport failures back off (exponential + seeded jitter, idempotent
//! request ids) and are **counted, not hidden** — BENCH_8.json's
//! `robustness` section reports shed/retried/failed totals alongside the
//! server's own health counters, so a run that limped through faults looks
//! different from one that sailed.
//!
//! The BENCH file is written with the fail-loudly discipline: the JSON is
//! re-read and re-parsed after writing, and any emission problem exits
//! nonzero even though the traffic itself succeeded — a truncated BENCH_8
//! must never look like a green run.

use psens_datasets::fixtures::adult_fixture;
use psens_microdata::JsonValue;
use psens_server::client::{register_params, Client, RetryPolicy, RetryStats};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct LoadConfig {
    addr: SocketAddr,
    clients: usize,
    requests: usize,
    rows: usize,
    seed: u64,
    retries: u32,
    retry_base_ms: u64,
    retry_max_ms: u64,
    io_timeout_ms: u64,
    out: Option<String>,
}

impl LoadConfig {
    fn policy(&self, client_id: usize) -> RetryPolicy {
        RetryPolicy {
            max_retries: self.retries,
            base_delay_ms: self.retry_base_ms,
            max_delay_ms: self.retry_max_ms,
            seed: self.seed ^ ((client_id as u64 + 1) << 32),
        }
    }
}

fn parse_args() -> Result<LoadConfig, String> {
    let mut addr = None;
    let mut addr_file = None;
    let mut clients = 4usize;
    let mut requests = 24usize;
    let mut rows = 250usize;
    let mut seed = 17u64;
    let mut retries = 4u32;
    let mut retry_base_ms = 20u64;
    let mut retry_max_ms = 2_000u64;
    let mut io_timeout_ms = 10_000u64;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        fn num<T: std::str::FromStr>(name: &str, text: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            text.parse().map_err(|e| format!("{name}: {e}"))
        }
        match arg.as_str() {
            "--addr" => addr = Some(take("--addr")?),
            "--addr-file" => addr_file = Some(take("--addr-file")?),
            "--clients" => clients = num("--clients", take("--clients")?)?,
            "--requests" => requests = num("--requests", take("--requests")?)?,
            "--rows" => rows = num("--rows", take("--rows")?)?,
            "--seed" => seed = num("--seed", take("--seed")?)?,
            "--retries" => retries = num("--retries", take("--retries")?)?,
            "--retry-base-ms" => retry_base_ms = num("--retry-base-ms", take("--retry-base-ms")?)?,
            "--retry-max-ms" => retry_max_ms = num("--retry-max-ms", take("--retry-max-ms")?)?,
            "--io-timeout-ms" => io_timeout_ms = num("--io-timeout-ms", take("--io-timeout-ms")?)?,
            "--out" => out = Some(take("--out")?),
            "--help" | "-h" => {
                return Err("usage: psens-load --addr HOST:PORT | --addr-file PATH \
                            [--clients N] [--requests N] [--rows N] [--seed S] \
                            [--retries N] [--retry-base-ms N] [--retry-max-ms N] \
                            [--io-timeout-ms N] [--out FILE]"
                    .to_owned())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let addr_text = match (addr, addr_file) {
        (Some(addr), _) => addr,
        (None, Some(path)) => std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {path}: {e}"))?
            .trim()
            .to_owned(),
        (None, None) => return Err("one of --addr or --addr-file is required".to_owned()),
    };
    let addr = addr_text
        .to_socket_addrs()
        .map_err(|e| format!("resolving {addr_text}: {e}"))?
        .next()
        .ok_or_else(|| format!("no address for {addr_text}"))?;
    Ok(LoadConfig {
        addr,
        clients,
        requests,
        rows,
        seed,
        retries,
        retry_base_ms,
        retry_max_ms,
        io_timeout_ms,
        out,
    })
}

/// One request's record: which op, how long, and (anonymize only) whether
/// the store was warm plus the verdict payload for the equivalence check.
struct Sample {
    op: &'static str,
    micros: u64,
    warm: Option<bool>,
    verdict: Option<String>,
}

/// One phase's honest accounting of what went wrong along the way.
#[derive(Default)]
struct Robustness {
    retry: RetryStats,
    /// Requests that failed even after retries (excluded from latency).
    failed: u64,
}

impl Robustness {
    fn absorb(&mut self, other: &Robustness) {
        self.retry.absorb(&other.retry);
        self.failed += other.failed;
    }
}

/// The mixed op cycle every client walks, round-robin.
const MIX: [&str; 4] = ["check", "anonymize", "analyze", "query"];

fn anonymize_params(no_cache: bool) -> JsonValue {
    let mut params = JsonValue::object();
    params.set("dataset", JsonValue::Str("load-adult".into()));
    params.set("p", JsonValue::Int(2));
    params.set("k", JsonValue::Int(3));
    params.set("ts", JsonValue::Int(10));
    if no_cache {
        params.set("no_cache", JsonValue::Bool(true));
    }
    params
}

fn run_request(
    client: &mut Client,
    op: &'static str,
    no_cache: bool,
    policy: &RetryPolicy,
    stats: &mut RetryStats,
) -> Result<Sample, String> {
    let start = Instant::now();
    let (warm, verdict) = match op {
        "check" => {
            let mut params = JsonValue::object();
            params.set("dataset", JsonValue::Str("load-adult".into()));
            params.set("p", JsonValue::Int(2));
            params.set("k", JsonValue::Int(3));
            client.call_retry("check", params, policy, stats)?;
            (None, None)
        }
        "analyze" => {
            let mut params = JsonValue::object();
            params.set("dataset", JsonValue::Str("load-adult".into()));
            params.set("p", JsonValue::Int(2));
            client.call_retry("analyze", params, policy, stats)?;
            (None, None)
        }
        "anonymize" => {
            let result =
                client.call_retry("anonymize", anonymize_params(no_cache), policy, stats)?;
            let warm = result
                .get("warm")
                .and_then(|v| v.as_bool().ok())
                .unwrap_or(false);
            let verdict = result
                .require("verdict")
                .map_err(|e| e.to_string())?
                .to_json();
            (Some(warm), Some(verdict))
        }
        "query" => {
            let mut params = JsonValue::object();
            params.set("dataset", JsonValue::Str("load-adult".into()));
            params.set("sql", JsonValue::Str("SELECT COUNT(*) FROM data".into()));
            client.call_retry("query", params, policy, stats)?;
            (None, None)
        }
        other => return Err(format!("unknown op in mix: {other}")),
    };
    Ok(Sample {
        op,
        micros: start.elapsed().as_micros() as u64,
        warm,
        verdict,
    })
}

/// Runs one phase: `clients` threads, each its own connection, each issuing
/// `requests` ops round-robin through [`MIX`]. Individual request failures
/// (after retries) are counted, not fatal — under injected faults the load
/// must keep going and report honestly.
fn run_phase(
    config: &LoadConfig,
    no_cache: bool,
) -> Result<(Vec<Sample>, f64, Robustness), String> {
    let wall = Instant::now();
    let (samples, robustness) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                scope.spawn(move || -> Result<(Vec<Sample>, Robustness), String> {
                    let mut client = Client::connect(config.addr)
                        .map_err(|e| format!("client {c}: connect: {e}"))?;
                    if config.io_timeout_ms > 0 {
                        client
                            .set_io_timeout(Some(Duration::from_millis(config.io_timeout_ms)))
                            .map_err(|e| format!("client {c}: io timeout: {e}"))?;
                    }
                    let policy = config.policy(c);
                    let mut robustness = Robustness::default();
                    let mut samples = Vec::with_capacity(config.requests);
                    for r in 0..config.requests {
                        // Offset by client id so ops overlap across clients.
                        let op = MIX[(c + r) % MIX.len()];
                        match run_request(&mut client, op, no_cache, &policy, &mut robustness.retry)
                        {
                            Ok(sample) => samples.push(sample),
                            Err(_) => robustness.failed += 1,
                        }
                    }
                    Ok((samples, robustness))
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut robustness = Robustness::default();
        for handle in handles {
            let (samples, client_robustness) = handle.join().expect("client thread panicked")?;
            all.extend(samples);
            robustness.absorb(&client_robustness);
        }
        Ok::<(Vec<Sample>, Robustness), String>((all, robustness))
    })?;
    let secs = wall.elapsed().as_secs_f64();
    let req_per_s = samples.len() as f64 / secs.max(1e-9);
    Ok((samples, req_per_s, robustness))
}

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Per-op latency summary for one phase.
fn phase_json(samples: &[Sample], req_per_s: f64) -> JsonValue {
    let mut out = JsonValue::object();
    out.set("requests", JsonValue::Int(samples.len() as i64));
    out.set("req_per_s", JsonValue::Float(req_per_s));
    let mut ops = JsonValue::object();
    for op in MIX {
        let mut lat: Vec<u64> = samples
            .iter()
            .filter(|s| s.op == op)
            .map(|s| s.micros)
            .collect();
        lat.sort_unstable();
        let mut entry = JsonValue::object();
        entry.set("count", JsonValue::Int(lat.len() as i64));
        entry.set("p50_us", JsonValue::Int(percentile(&lat, 50.0) as i64));
        entry.set("p99_us", JsonValue::Int(percentile(&lat, 99.0) as i64));
        ops.set(op, entry);
    }
    out.set("ops", ops);
    let anonymize: Vec<&Sample> = samples.iter().filter(|s| s.op == "anonymize").collect();
    let warm_hits = anonymize.iter().filter(|s| s.warm == Some(true)).count();
    out.set(
        "anonymize_warm_fraction",
        JsonValue::Float(match anonymize.is_empty() {
            true => 0.0,
            false => warm_hits as f64 / anonymize.len() as f64,
        }),
    );
    out
}

/// (p50, p99) anonymize latency of one phase, microseconds.
fn anonymize_percentiles(samples: &[Sample]) -> (u64, u64) {
    let mut lat: Vec<u64> = samples
        .iter()
        .filter(|s| s.op == "anonymize")
        .map(|s| s.micros)
        .collect();
    lat.sort_unstable();
    (percentile(&lat, 50.0), percentile(&lat, 99.0))
}

/// Writes and then *re-reads* the BENCH JSON; any failure is fatal so a
/// truncated file cannot pass for a finished benchmark.
fn emit_validated(path: &str, report: &JsonValue) -> Result<(), String> {
    let mut text = report.to_json_pretty();
    text.push('\n');
    std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
    let back = std::fs::read_to_string(path).map_err(|e| format!("re-reading {path}: {e}"))?;
    if back != text {
        return Err(format!("{path}: content mismatch after write"));
    }
    let parsed = JsonValue::parse(&back).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    for key in ["bench", "config", "phases", "warm_vs_cold", "robustness"] {
        parsed
            .require(key)
            .map_err(|e| format!("{path}: missing section: {e}"))?;
    }
    Ok(())
}

fn run() -> Result<String, String> {
    let config = parse_args()?;
    // Register the fixture through the retry path. If a fault eats the
    // first response the retry can race an already-applied register; a
    // `conflict` after at least one attempt therefore means "registered".
    let fixture = adult_fixture(config.seed, config.rows);
    let mut setup = Client::connect(config.addr).map_err(|e| format!("connect: {e}"))?;
    if config.io_timeout_ms > 0 {
        setup
            .set_io_timeout(Some(Duration::from_millis(config.io_timeout_ms)))
            .map_err(|e| format!("io timeout: {e}"))?;
    }
    let mut setup_stats = RetryStats::default();
    match setup.call_retry(
        "register",
        register_params("load-adult", &fixture.csv, &fixture.spec),
        &config.policy(usize::MAX),
        &mut setup_stats,
    ) {
        Ok(_) => {}
        Err(e) if e.contains("conflict") => {}
        Err(e) => return Err(e),
    }

    // Cold first so its anonymize latencies cannot benefit from a store the
    // warm phase already filled.
    let (cold_samples, cold_rps, cold_robustness) = run_phase(&config, true)?;
    let (warm_samples, warm_rps, warm_robustness) = run_phase(&config, false)?;
    let mut robustness = Robustness::default();
    robustness.retry.absorb(&setup_stats);
    robustness.absorb(&cold_robustness);
    robustness.absorb(&warm_robustness);

    // Every completed anonymize — cold or warm, any client, any order,
    // retried or not — must carry the same verdict.
    let mut verdicts: Vec<&String> = cold_samples
        .iter()
        .chain(&warm_samples)
        .filter_map(|s| s.verdict.as_ref())
        .collect();
    verdicts.sort();
    verdicts.dedup();
    if verdicts.len() > 1 {
        return Err(format!(
            "anonymize verdicts diverged across requests: {} distinct payloads",
            verdicts.len()
        ));
    }

    let stats = setup.call_ok("stats", JsonValue::object())?;
    let health = setup.call_ok("health", JsonValue::object())?;

    let mut report = JsonValue::object();
    report.set("bench", JsonValue::Str("BENCH_8".into()));
    let mut cfg = JsonValue::object();
    cfg.set("clients", JsonValue::Int(config.clients as i64));
    cfg.set(
        "requests_per_client",
        JsonValue::Int(config.requests as i64),
    );
    cfg.set("rows", JsonValue::Int(config.rows as i64));
    cfg.set("seed", JsonValue::Int(config.seed as i64));
    cfg.set("retries", JsonValue::Int(i64::from(config.retries)));
    report.set("config", cfg);
    let mut phases = JsonValue::object();
    phases.set("cold", phase_json(&cold_samples, cold_rps));
    phases.set("warm", phase_json(&warm_samples, warm_rps));
    report.set("phases", phases);
    report.set("server_stats", stats);
    let mut robust = JsonValue::object();
    robust.set(
        "shed_busy",
        health.get("shed_total").cloned().unwrap_or(JsonValue::Null),
    );
    robust.set(
        "retries_busy",
        JsonValue::Int(robustness.retry.busy_retries as i64),
    );
    robust.set(
        "retries_transport",
        JsonValue::Int(robustness.retry.transport_retries as i64),
    );
    robust.set("gave_up", JsonValue::Int(robustness.retry.give_ups as i64));
    robust.set("failed_requests", JsonValue::Int(robustness.failed as i64));
    robust.set("server_health", health);
    report.set("robustness", robust);
    let (cold_p50, cold_p99) = anonymize_percentiles(&cold_samples);
    let (warm_p50, warm_p99) = anonymize_percentiles(&warm_samples);
    let mut cmp = JsonValue::object();
    cmp.set("anonymize_p50_us_cold", JsonValue::Int(cold_p50 as i64));
    cmp.set("anonymize_p50_us_warm", JsonValue::Int(warm_p50 as i64));
    cmp.set("anonymize_p99_us_cold", JsonValue::Int(cold_p99 as i64));
    cmp.set("anonymize_p99_us_warm", JsonValue::Int(warm_p99 as i64));
    cmp.set(
        "warm_speedup_p50",
        JsonValue::Float(cold_p50 as f64 / (warm_p50.max(1)) as f64),
    );
    cmp.set(
        "warm_speedup",
        JsonValue::Float(cold_p99 as f64 / (warm_p99.max(1)) as f64),
    );
    report.set("warm_vs_cold", cmp);

    if let Some(path) = &config.out {
        emit_validated(path, &report)?;
    }
    Ok(format!(
        "psens-load: {} requests ({} cold @ {:.0} req/s, {} warm @ {:.0} req/s); \
         anonymize p99 {}us cold -> {}us warm; \
         retries {} busy / {} transport, {} gave up, {} failed{}",
        cold_samples.len() + warm_samples.len(),
        cold_samples.len(),
        cold_rps,
        warm_samples.len(),
        warm_rps,
        cold_p99,
        warm_p99,
        robustness.retry.busy_retries,
        robustness.retry.transport_retries,
        robustness.retry.give_ups,
        robustness.failed,
        match &config.out {
            Some(path) => format!("; wrote {path}"),
            None => String::new(),
        }
    ))
}

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("psens-load: {message}");
            ExitCode::FAILURE
        }
    }
}
