//! Crash-recoverable server state: a write-ahead registry journal plus an
//! optional verdict-store snapshot, both living under `--state-dir`.
//!
//! ## Journal (`registry.journal`)
//!
//! Append-only JSON lines, one event per line, written **before** the
//! in-memory effect (write-ahead discipline):
//!
//! ```json
//! {"kind":"register","name":"adult","file":"datasets/<fnv64>.csv","hash":"<fnv64>","spec":{...}}
//! {"kind":"pool","dataset":"adult","model":"psens-k","param":2,"p":2,"k":3,"ts":10}
//! {"kind":"delta","dataset":"adult","appends":[["M","30","Flu"]],"deletes":[0,3]}
//! ```
//!
//! Delta lines journal the `update` op write-ahead: cells are rendered
//! strings (`Value::render`; the empty string encodes `Missing`), parsed
//! back kind-aware against the dataset's schema on replay. Replaying the
//! base registration plus every surviving delta line reconstructs the same
//! table the live server held — a torn final delta (kill -9 mid-append) is
//! dropped exactly like any other torn tail, leaving the table at the
//! previous delta, which is also the last state any client saw
//! acknowledged.
//!
//! Pool lines carry the privacy model as a `(model, param)` pair (see
//! `psens_core::ModelSpec::from_parts`); a line written before models
//! existed has no `model` field and replays as p-sensitive k-anonymity
//! with its `p` — old journals stay replayable.
//!
//! The dataset CSV itself is stored content-addressed (`datasets/<fnv64 of
//! bytes>.csv`, written via tmp+rename), so the journal never embeds
//! megabytes of CSV and a half-written dataset file can never be confused
//! for a complete one. On boot the journal is replayed with hash
//! verification: a register line whose CSV file is missing, torn, or hashes
//! differently is **skipped** (fail-closed — the dataset simply isn't
//! there, a client re-registers it; the server never serves data it cannot
//! verify). A torn final line — the kill -9 case — is ignored; corrupt
//! interior lines are skipped with a warning.
//!
//! ## Snapshot (`pools.snap`)
//!
//! Written only on clean shutdown, via tmp+rename: one JSON line per
//! **exact** verdict (`VerdictStore::export_exact`; inferred entries are
//! re-derived by the monotonicity closure on replay), closed by an end
//! marker carrying the line count and an FNV-1a hash of every preceding
//! byte. A snapshot that fails any of those checks is discarded *whole*:
//! pools then rebuild cold, and because a verdict is a pure function of
//! `(dataset, model, k, ts)` the rebuilt verdicts are byte-identical —
//! losing a snapshot costs warm-up time, never correctness.

use psens_core::{CheckStage, ModelDetail, ModelSpec, NodeCheck};
use psens_datasets::Spec;
use psens_hierarchy::Node;
use psens_microdata::JsonValue;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const JOURNAL_FILE: &str = "registry.journal";
const SNAPSHOT_FILE: &str = "pools.snap";
const DATASETS_DIR: &str = "datasets";

/// FNV-1a 64-bit hash. Deliberately not cryptographic: the journal guards
/// against torn writes and bit rot, not an adversary with filesystem access.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A dataset reconstructed from the journal.
pub struct RecoveredDataset {
    /// Registry name.
    pub name: String,
    /// The verified CSV bytes.
    pub csv: String,
    /// The spec the dataset was registered with.
    pub spec: Spec,
}

/// One journaled `update` batch: rendered cell strings plus delete indices,
/// to be re-applied to the dataset in journal order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredDelta {
    /// Dataset the batch applies to.
    pub dataset: String,
    /// Appended rows as rendered cell strings (`""` encodes `Missing`).
    pub appends: Vec<Vec<String>>,
    /// Row indices deleted from the table as it stood before this batch.
    pub deletes: Vec<usize>,
}

/// Everything the journal yielded on replay.
#[derive(Default)]
pub struct Recovered {
    /// Datasets whose CSV passed hash verification, in journal order.
    pub registrations: Vec<RecoveredDataset>,
    /// Warm-pool keys `(dataset, model, k, ts)` to re-create, in journal
    /// order.
    pub pools: Vec<(String, ModelSpec, u32, usize)>,
    /// Update batches to re-apply, in journal order. Journal order equals
    /// apply order (the `update` op journals under the dataset's write
    /// lock), so replaying them in sequence reconstructs the same table.
    pub deltas: Vec<RecoveredDelta>,
    /// Human-readable notes about skipped lines (torn tail, corrupt line,
    /// hash mismatch). Empty on a clean replay.
    pub warnings: Vec<String>,
}

/// One exact verdict in a snapshot, tagged with its pool key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Dataset the verdict belongs to.
    pub dataset: String,
    /// The dataset's delta count when the snapshot was written. On replay a
    /// verdict is only recorded if the recovered dataset has applied the
    /// same number of deltas — a snapshot from an older table state must
    /// not seed stale verdicts (0 for delta-free datasets and for
    /// snapshots written before deltas existed).
    pub deltas: u64,
    /// Pool key: the privacy model (with its parameter).
    pub model: ModelSpec,
    /// Pool key: k.
    pub k: u32,
    /// Pool key: suppression threshold.
    pub ts: usize,
    /// The recorded node check.
    pub check: NodeCheck,
}

/// Counters from a snapshot write, reported in the shutdown banner.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotStats {
    /// Exact verdicts written.
    pub entries: usize,
    /// Bytes in the snapshot file, end marker included.
    pub bytes: u64,
}

/// Handle on a `--state-dir`: owns the append-mode journal file.
pub struct StateDir {
    root: PathBuf,
    journal: Mutex<File>,
}

impl StateDir {
    /// Opens (creating as needed) the state directory and its journal.
    pub fn open(root: &Path) -> io::Result<StateDir> {
        std::fs::create_dir_all(root.join(DATASETS_DIR))?;
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(root.join(JOURNAL_FILE))?;
        Ok(StateDir {
            root: root.to_owned(),
            journal: Mutex::new(journal),
        })
    }

    /// The directory this state lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn append_line(&self, line: &JsonValue) -> io::Result<()> {
        let mut text = line.to_json();
        text.push('\n');
        let mut journal = self.journal.lock().expect("journal lock poisoned");
        journal.write_all(text.as_bytes())?;
        journal.flush()?;
        // The whole point is surviving kill -9; make the line durable now.
        journal.sync_data()
    }

    /// Journals a registration: writes the CSV content-addressed (tmp +
    /// rename, so a crash never leaves a plausible-but-torn dataset file),
    /// then appends the register line. Call **before** the in-memory insert.
    pub fn log_register(&self, name: &str, csv: &str, spec: &Spec) -> io::Result<()> {
        let hash = fnv1a64(csv.as_bytes());
        let rel = format!("{DATASETS_DIR}/{hash:016x}.csv");
        let path = self.root.join(&rel);
        if !path.exists() {
            let tmp = self.root.join(format!("{rel}.tmp"));
            std::fs::write(&tmp, csv)?;
            std::fs::rename(&tmp, &path)?;
        }
        let mut line = JsonValue::object();
        line.set("kind", JsonValue::Str("register".into()));
        line.set("name", JsonValue::Str(name.to_owned()));
        line.set("file", JsonValue::Str(rel));
        line.set("hash", JsonValue::Str(format!("{hash:016x}")));
        line.set("spec", spec.to_json());
        self.append_line(&line)
    }

    /// Journals a warm-pool creation. Call **before** inserting the store.
    /// The `p` field is still written (as the model's Conditions-`p`) so
    /// pre-model readers of the journal keep making sense of psens-k lines.
    pub fn log_pool(&self, dataset: &str, model: ModelSpec, k: u32, ts: usize) -> io::Result<()> {
        let mut line = JsonValue::object();
        line.set("kind", JsonValue::Str("pool".into()));
        line.set("dataset", JsonValue::Str(dataset.to_owned()));
        line.set("model", JsonValue::Str(model.name().to_owned()));
        line.set("param", JsonValue::Int(model.param() as i64));
        line.set("p", JsonValue::Int(i64::from(model.conditions_p())));
        line.set("k", JsonValue::Int(i64::from(k)));
        line.set("ts", JsonValue::Int(ts as i64));
        self.append_line(&line)
    }

    /// Journals an `update` batch. Call under the dataset's write lock,
    /// **before** applying the batch, so journal order equals apply order
    /// and a crash between append and apply replays the batch the client
    /// never saw acknowledged (write-ahead discipline).
    pub fn log_delta(
        &self,
        dataset: &str,
        appends: &[Vec<String>],
        deletes: &[usize],
    ) -> io::Result<()> {
        let mut line = JsonValue::object();
        line.set("kind", JsonValue::Str("delta".into()));
        line.set("dataset", JsonValue::Str(dataset.to_owned()));
        line.set(
            "appends",
            JsonValue::Array(
                appends
                    .iter()
                    .map(|row| {
                        JsonValue::Array(
                            row.iter()
                                .map(|cell| JsonValue::Str(cell.clone()))
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        );
        line.set(
            "deletes",
            JsonValue::Array(
                deletes
                    .iter()
                    .map(|&ix| JsonValue::Int(ix as i64))
                    .collect(),
            ),
        );
        self.append_line(&line)
    }

    /// Replays the journal, tolerating torn tails and corrupt lines.
    /// Never panics and never errors: anything unverifiable is skipped with
    /// a warning, so recovery is fail-closed — a bad journal yields a
    /// smaller registry, never a wrong one.
    pub fn replay(&self) -> Recovered {
        let mut out = Recovered::default();
        let raw = match std::fs::read(self.root.join(JOURNAL_FILE)) {
            Ok(raw) => raw,
            Err(_) => return out,
        };
        let text = String::from_utf8_lossy(&raw);
        let mut seen_names = std::collections::HashSet::new();
        let n_lines = text.split('\n').count();
        for (i, line) in text.split('\n').enumerate() {
            if line.is_empty() {
                continue;
            }
            // The final segment only counts if the file ends in a newline
            // (split yields a trailing "" then); otherwise it's a torn
            // append from a crash mid-write and is ignored without noise
            // *unless* it happens to parse (truncation at a line boundary
            // minus the newline still yields valid JSON we can keep... no:
            // without the newline we cannot distinguish "complete line,
            // newline lost" from "torn line that happens to parse" — both
            // are the same byte sequence, and replaying a parseable final
            // line is safe either way since every line is self-contained).
            let parsed = match JsonValue::parse(line) {
                Ok(value) => value,
                Err(e) => {
                    if i == n_lines - 1 {
                        out.warnings
                            .push("journal tail is torn (crash mid-append); ignored".into());
                    } else {
                        out.warnings
                            .push(format!("journal line {} is corrupt ({e}); skipped", i + 1));
                    }
                    continue;
                }
            };
            match parsed.get("kind").and_then(|k| k.as_str().ok()) {
                Some("register") => match self.replay_register(&parsed) {
                    Ok(dataset) => {
                        if seen_names.insert(dataset.name.clone()) {
                            out.registrations.push(dataset);
                        } else {
                            out.warnings.push(format!(
                                "journal line {}: duplicate register for `{}`; first wins",
                                i + 1,
                                dataset.name
                            ));
                        }
                    }
                    Err(reason) => {
                        out.warnings
                            .push(format!("journal line {}: {reason}; skipped", i + 1));
                    }
                },
                Some("pool") => {
                    let key = (|| {
                        Some((
                            parsed.get("dataset")?.as_str().ok()?.to_owned(),
                            parse_model(&parsed)?,
                            u32::try_from(parsed.get("k")?.as_u64().ok()?).ok()?,
                            parsed.get("ts")?.as_usize().ok()?,
                        ))
                    })();
                    match key {
                        Some(key) => out.pools.push(key),
                        None => out.warnings.push(format!(
                            "journal line {}: malformed pool entry; skipped",
                            i + 1
                        )),
                    }
                }
                Some("delta") => match parse_delta_line(&parsed) {
                    Some(delta) => out.deltas.push(delta),
                    None => out.warnings.push(format!(
                        "journal line {}: malformed delta entry; skipped",
                        i + 1
                    )),
                },
                _ => {
                    out.warnings
                        .push(format!("journal line {}: unknown kind; skipped", i + 1));
                }
            }
        }
        // Drop pools and deltas whose dataset didn't survive verification.
        let names: std::collections::HashSet<&str> =
            out.registrations.iter().map(|r| r.name.as_str()).collect();
        out.pools
            .retain(|(dataset, ..)| names.contains(dataset.as_str()));
        out.deltas
            .retain(|delta| names.contains(delta.dataset.as_str()));
        out
    }

    fn replay_register(&self, line: &JsonValue) -> Result<RecoveredDataset, String> {
        let name = line
            .get("name")
            .and_then(|v| v.as_str().ok())
            .ok_or("register line missing `name`")?;
        let rel = line
            .get("file")
            .and_then(|v| v.as_str().ok())
            .ok_or("register line missing `file`")?;
        // The journal only ever writes hash-named relative paths; refuse
        // anything else so a corrupted line can't read outside the root.
        if rel.contains("..") || rel.starts_with('/') {
            return Err(format!("register `{name}` has a suspicious file path"));
        }
        let want_hash = line
            .get("hash")
            .and_then(|v| v.as_str().ok())
            .ok_or("register line missing `hash`")?;
        let csv = std::fs::read_to_string(self.root.join(rel))
            .map_err(|e| format!("register `{name}`: dataset file unreadable ({e})"))?;
        let got_hash = format!("{:016x}", fnv1a64(csv.as_bytes()));
        if got_hash != want_hash {
            return Err(format!(
                "register `{name}`: dataset hash mismatch (journal {want_hash}, file {got_hash})"
            ));
        }
        let spec_text = line
            .get("spec")
            .ok_or("register line missing `spec`")?
            .to_json();
        let spec = Spec::from_json(&spec_text)
            .map_err(|e| format!("register `{name}`: spec does not parse ({e})"))?;
        Ok(RecoveredDataset {
            name: name.to_owned(),
            csv,
            spec,
        })
    }

    /// Writes the verdict snapshot atomically (tmp + rename) with a hashed
    /// end marker. Entries should come pre-sorted (the registry exports
    /// them deterministically) so equal state writes equal bytes.
    pub fn write_snapshot(&self, entries: &[SnapshotEntry]) -> io::Result<SnapshotStats> {
        let mut body = String::new();
        for entry in entries {
            body.push_str(&snapshot_line(entry).to_json());
            body.push('\n');
        }
        let mut end = JsonValue::object();
        end.set("kind", JsonValue::Str("end".into()));
        end.set("lines", JsonValue::Int(entries.len() as i64));
        end.set(
            "hash",
            JsonValue::Str(format!("{:016x}", fnv1a64(body.as_bytes()))),
        );
        body.push_str(&end.to_json());
        body.push('\n');
        let tmp = self.root.join(format!("{SNAPSHOT_FILE}.tmp"));
        let path = self.root.join(SNAPSHOT_FILE);
        std::fs::write(&tmp, &body)?;
        std::fs::rename(&tmp, &path)?;
        Ok(SnapshotStats {
            entries: entries.len(),
            bytes: body.len() as u64,
        })
    }

    /// Loads the snapshot if — and only if — it is complete and internally
    /// consistent: the end marker must be present, its line count must
    /// match, its hash must cover every preceding byte, and every entry
    /// must parse. Any failure discards the snapshot whole (`None`): pools
    /// rebuild cold and verdicts are re-proven identical.
    pub fn load_snapshot(&self) -> Option<Vec<SnapshotEntry>> {
        let raw = std::fs::read_to_string(self.root.join(SNAPSHOT_FILE)).ok()?;
        let body_end = raw
            .strip_suffix('\n')?
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        let (body, last) = raw.split_at(body_end);
        let end = JsonValue::parse(last.trim_end_matches('\n')).ok()?;
        if end.get("kind")?.as_str().ok()? != "end" {
            return None;
        }
        let want_lines = end.get("lines")?.as_usize().ok()?;
        let want_hash = end.get("hash")?.as_str().ok()?;
        if format!("{:016x}", fnv1a64(body.as_bytes())) != want_hash {
            return None;
        }
        let mut entries = Vec::new();
        for line in body.split('\n') {
            if line.is_empty() {
                continue;
            }
            entries.push(parse_snapshot_line(line)?);
        }
        if entries.len() != want_lines {
            return None;
        }
        Some(entries)
    }
}

fn stage_name(stage: CheckStage) -> &'static str {
    match stage {
        CheckStage::Condition1 => "condition1",
        CheckStage::Condition2 => "condition2",
        CheckStage::KAnonymity => "k_anonymity",
        CheckStage::DetailedScan => "detailed_scan",
        CheckStage::Passed => "passed",
    }
}

fn parse_stage(text: &str) -> Option<CheckStage> {
    Some(match text {
        "condition1" => CheckStage::Condition1,
        "condition2" => CheckStage::Condition2,
        "k_anonymity" => CheckStage::KAnonymity,
        "detailed_scan" => CheckStage::DetailedScan,
        "passed" => CheckStage::Passed,
        _ => return None,
    })
}

/// The `(model, param)` pair of a journal/snapshot line, falling back to
/// p-sensitive k-anonymity with the line's `p` when the line predates
/// pluggable models.
fn parse_model(line: &JsonValue) -> Option<ModelSpec> {
    match line.get("model") {
        Some(model) => {
            let name = model.as_str().ok()?;
            let param = line.get("param")?.as_u64().ok()?;
            ModelSpec::from_parts(name, param).ok()
        }
        None => {
            let p = u32::try_from(line.get("p")?.as_u64().ok()?).ok()?;
            Some(ModelSpec::PSensitiveK { p })
        }
    }
}

fn parse_delta_line(line: &JsonValue) -> Option<RecoveredDelta> {
    let dataset = line.get("dataset")?.as_str().ok()?.to_owned();
    let appends = line
        .get("appends")?
        .as_array()
        .ok()?
        .iter()
        .map(|row| {
            row.as_array().ok().and_then(|cells| {
                cells
                    .iter()
                    .map(|cell| cell.as_str().ok().map(str::to_owned))
                    .collect::<Option<Vec<String>>>()
            })
        })
        .collect::<Option<Vec<Vec<String>>>>()?;
    let deletes = line
        .get("deletes")?
        .as_array()
        .ok()?
        .iter()
        .map(|ix| ix.as_usize().ok())
        .collect::<Option<Vec<usize>>>()?;
    Some(RecoveredDelta {
        dataset,
        appends,
        deletes,
    })
}

fn snapshot_line(entry: &SnapshotEntry) -> JsonValue {
    let mut line = JsonValue::object();
    line.set("dataset", JsonValue::Str(entry.dataset.clone()));
    // Written only when non-zero so delta-free snapshots stay byte-identical
    // to the pre-delta format (and old readers keep parsing them).
    if entry.deltas != 0 {
        line.set("deltas", JsonValue::Int(entry.deltas as i64));
    }
    line.set("model", JsonValue::Str(entry.model.name().to_owned()));
    line.set("param", JsonValue::Int(entry.model.param() as i64));
    line.set("p", JsonValue::Int(i64::from(entry.model.conditions_p())));
    line.set("k", JsonValue::Int(i64::from(entry.k)));
    line.set("ts", JsonValue::Int(entry.ts as i64));
    line.set(
        "node",
        JsonValue::Array(
            entry
                .check
                .node
                .levels()
                .iter()
                .map(|&l| JsonValue::Int(i64::from(l)))
                .collect(),
        ),
    );
    line.set(
        "violating",
        JsonValue::Int(entry.check.violating_tuples as i64),
    );
    line.set("suppressed", JsonValue::Int(entry.check.suppressed as i64));
    line.set("satisfied", JsonValue::Bool(entry.check.satisfied));
    line.set(
        "stage",
        JsonValue::Str(stage_name(entry.check.stage).to_owned()),
    );
    line.set(
        "n_groups",
        match entry.check.n_groups {
            Some(n) => JsonValue::Int(n as i64),
            None => JsonValue::Null,
        },
    );
    if let Some(detail) = entry.check.detail {
        line.set("detail_kind", JsonValue::Str(detail.kind().to_owned()));
        line.set("detail_value", JsonValue::Int(detail.value() as i64));
    }
    line
}

fn parse_snapshot_line(text: &str) -> Option<SnapshotEntry> {
    let line = JsonValue::parse(text).ok()?;
    let levels = line
        .get("node")?
        .as_array()
        .ok()?
        .iter()
        .map(|v| v.as_u64().ok().and_then(|n| u8::try_from(n).ok()))
        .collect::<Option<Vec<u8>>>()?;
    let n_groups = match line.get("n_groups")? {
        JsonValue::Null => None,
        other => Some(other.as_usize().ok()?),
    };
    // Detail is optional on the wire (absent for distinct-count models and
    // for snapshots written before models existed).
    let detail = match line.get("detail_kind") {
        Some(kind) => Some(
            ModelDetail::from_parts(
                kind.as_str().ok()?,
                line.get("detail_value")?.as_u64().ok()?,
            )
            .ok()?,
        ),
        None => None,
    };
    let deltas = match line.get("deltas") {
        Some(v) => v.as_u64().ok()?,
        None => 0,
    };
    Some(SnapshotEntry {
        dataset: line.get("dataset")?.as_str().ok()?.to_owned(),
        deltas,
        model: parse_model(&line)?,
        k: u32::try_from(line.get("k")?.as_u64().ok()?).ok()?,
        ts: line.get("ts")?.as_usize().ok()?,
        check: NodeCheck {
            node: Node(levels),
            violating_tuples: line.get("violating")?.as_usize().ok()?,
            suppressed: line.get("suppressed")?.as_usize().ok()?,
            satisfied: line.get("satisfied")?.as_bool().ok()?,
            stage: parse_stage(line.get("stage")?.as_str().ok()?)?,
            n_groups,
            detail,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_datasets::fixtures::adult_fixture;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psens_state_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journal_roundtrips_registers_and_pools() {
        let root = temp_root("roundtrip");
        let state = StateDir::open(&root).unwrap();
        let fixture = adult_fixture(3, 40);
        state
            .log_register("adult", &fixture.csv, &fixture.spec)
            .unwrap();
        state
            .log_pool("adult", ModelSpec::PSensitiveK { p: 2 }, 3, 10)
            .unwrap();
        state
            .log_pool("adult", ModelSpec::DistinctL { l: 3 }, 2, 0)
            .unwrap();
        // Pool lines for datasets that never registered are dropped.
        state
            .log_pool("ghost", ModelSpec::PSensitiveK { p: 1 }, 2, 0)
            .unwrap();

        let recovered = StateDir::open(&root).unwrap().replay();
        assert_eq!(recovered.registrations.len(), 1);
        assert_eq!(recovered.registrations[0].name, "adult");
        assert_eq!(recovered.registrations[0].csv, fixture.csv);
        assert_eq!(
            recovered.pools,
            vec![
                ("adult".to_owned(), ModelSpec::PSensitiveK { p: 2 }, 3, 10),
                ("adult".to_owned(), ModelSpec::DistinctL { l: 3 }, 2, 0)
            ]
        );
        assert!(recovered.warnings.is_empty(), "{:?}", recovered.warnings);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_dataset_hash_is_skipped_fail_closed() {
        let root = temp_root("stale");
        let state = StateDir::open(&root).unwrap();
        let fixture = adult_fixture(3, 40);
        state
            .log_register("adult", &fixture.csv, &fixture.spec)
            .unwrap();
        state
            .log_pool("adult", ModelSpec::PSensitiveK { p: 2 }, 3, 10)
            .unwrap();
        // Corrupt the stored CSV after the fact.
        let hash = fnv1a64(fixture.csv.as_bytes());
        let path = root.join(format!("datasets/{hash:016x}.csv"));
        std::fs::write(&path, "age\n1\n").unwrap();

        let recovered = StateDir::open(&root).unwrap().replay();
        assert!(recovered.registrations.is_empty());
        assert!(
            recovered.pools.is_empty(),
            "pools of a skipped dataset go too"
        );
        assert!(recovered
            .warnings
            .iter()
            .any(|w| w.contains("hash mismatch")));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_is_ignored_and_interior_corruption_skipped() {
        let root = temp_root("torn");
        let state = StateDir::open(&root).unwrap();
        let fixture = adult_fixture(3, 40);
        state
            .log_register("adult", &fixture.csv, &fixture.spec)
            .unwrap();
        state
            .log_pool("adult", ModelSpec::PSensitiveK { p: 2 }, 3, 10)
            .unwrap();
        drop(state);
        let journal = root.join(JOURNAL_FILE);
        let full = std::fs::read(&journal).unwrap();

        // Truncate mid-final-line: the register survives, the pool is torn.
        std::fs::write(&journal, &full[..full.len() - 5]).unwrap();
        let recovered = StateDir::open(&root).unwrap().replay();
        assert_eq!(recovered.registrations.len(), 1);
        assert!(recovered.pools.is_empty());
        assert!(recovered.warnings.iter().any(|w| w.contains("torn")));

        // Smash the first line's opening brace: it's skipped with a
        // warning, later intact lines still replay (minus orphaned pools).
        let mut corrupt = full.clone();
        corrupt[0] = b'#';
        std::fs::write(&journal, &corrupt).unwrap();
        let recovered = StateDir::open(&root).unwrap().replay();
        assert!(recovered.registrations.is_empty());
        assert!(recovered.warnings.iter().any(|w| w.contains("corrupt")));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn snapshot_roundtrips_and_rejects_any_tampering() {
        let root = temp_root("snap");
        let state = StateDir::open(&root).unwrap();
        let entries = vec![
            SnapshotEntry {
                dataset: "adult".into(),
                deltas: 0,
                model: ModelSpec::PSensitiveK { p: 2 },
                k: 3,
                ts: 10,
                check: NodeCheck {
                    node: Node(vec![0, 1]),
                    violating_tuples: 4,
                    suppressed: 0,
                    satisfied: false,
                    stage: CheckStage::KAnonymity,
                    n_groups: None,
                    detail: None,
                },
            },
            SnapshotEntry {
                dataset: "adult".into(),
                deltas: 0,
                model: ModelSpec::PSensitiveK { p: 2 },
                k: 3,
                ts: 10,
                check: NodeCheck {
                    node: Node(vec![1, 1]),
                    violating_tuples: 0,
                    suppressed: 2,
                    satisfied: true,
                    stage: CheckStage::Passed,
                    n_groups: Some(7),
                    detail: None,
                },
            },
            SnapshotEntry {
                dataset: "adult".into(),
                deltas: 0,
                model: ModelSpec::TCloseness { t_ppm: 250_000 },
                k: 2,
                ts: 0,
                check: NodeCheck {
                    node: Node(vec![1, 0]),
                    violating_tuples: 0,
                    suppressed: 0,
                    satisfied: true,
                    stage: CheckStage::Passed,
                    n_groups: Some(4),
                    detail: Some(ModelDetail::MaxEmdPpm(125_000)),
                },
            },
        ];
        let stats = state.write_snapshot(&entries).unwrap();
        assert_eq!(stats.entries, 3);
        assert_eq!(state.load_snapshot().expect("snapshot loads"), entries);

        // Truncation at every byte boundary: the loader either returns the
        // full snapshot (only at full length) or rejects it whole — never a
        // partial load, never a panic.
        let path = root.join(SNAPSHOT_FILE);
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                state.load_snapshot().is_none(),
                "truncated snapshot at byte {cut} must be discarded"
            );
        }
        // Byte flips inside the body break the hash.
        for &at in &[1usize, full.len() / 2, full.len() - 2] {
            let mut bent = full.clone();
            bent[at] ^= 0x20;
            std::fs::write(&path, &bent).unwrap();
            assert!(
                state.load_snapshot().is_none(),
                "corrupted snapshot at byte {at} must be discarded"
            );
        }
        std::fs::write(&path, &full).unwrap();
        assert!(state.load_snapshot().is_some());
        let _ = std::fs::remove_dir_all(&root);
    }
}
