//! A shared, concurrent verdict store with monotonicity closure.
//!
//! Samarati's binary search (paper Algorithm 3) is justified by the
//! monotonicity of p-sensitive k-anonymity along generalization paths: a
//! node that satisfies the property implies every ancestor does, and a node
//! whose `violating_tuples` exceeds the suppression threshold condemns every
//! descendant (Theorems 1–2 plus the anti-monotonicity of the k-anonymity
//! violation count). Yet each search strategy re-derives every verdict from
//! scratch, and nothing is shared across heights, across strategies, or
//! across worker threads.
//!
//! [`VerdictStore`] closes that gap: a sharded map from lattice [`Node`] to
//! [`Verdict`] that any number of threads may read and write concurrently.
//! Recording an exact check also records what monotonicity proves for free:
//!
//! * a **pass** marks every strict ancestor [`Verdict::InferredPass`];
//! * a **k-anonymity failure** (`violating_tuples > ts`) marks every strict
//!   descendant [`Verdict::InferredFailK`].
//!
//! Failures of Condition 2 or the detailed sensitivity scan get *no*
//! closure: `maxGroups` bounds and per-group distinct counts are not
//! monotone certificates for neighbours, only the pass side is (see
//! DESIGN.md §11 for the proof sketch).
//!
//! A store is only meaningful for one `(table, QI space, p, k, ts)`
//! configuration; callers must not share a store across configurations.
//! Inferred verdicts are served without consuming node budget — budget
//! admission happens strictly after a cache miss (see
//! `NodeEvaluator::check_cached`).

use crate::checker::CheckStage;
use crate::conditions::ConfidentialStats;
use crate::evaluator::NodeCheck;
use psens_hierarchy::{Lattice, Node};
use psens_microdata::hash::FxHashMap;
use std::collections::hash_map::Entry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards. Sixteen keeps lock contention
/// negligible for the worker counts the searches spawn while staying cheap
/// to allocate per run.
const N_SHARDS: usize = 16;

/// A cached answer for one lattice node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The node was checked by the kernel; the full [`NodeCheck`] is kept so
    /// a hit can replay everything a fresh evaluation would have returned.
    Exact(NodeCheck),
    /// Satisfaction inferred upward from a recorded pass at a strict
    /// descendant. No [`NodeCheck`] exists — only the boolean is known.
    InferredPass,
    /// Failure inferred downward from a strict ancestor whose
    /// `violating_tuples` exceeded the suppression threshold.
    InferredFailK,
}

impl Verdict {
    /// Whether this verdict says the node satisfies the property.
    pub fn satisfied(&self) -> bool {
        match self {
            Verdict::Exact(check) => check.satisfied,
            Verdict::InferredPass => true,
            Verdict::InferredFailK => false,
        }
    }

    /// True for the inference-derived variants.
    pub fn is_inferred(&self) -> bool {
        !matches!(self, Verdict::Exact(_))
    }
}

/// Monotonic counters describing a store's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreCounters {
    /// Lookups answered by an exact cached check.
    pub hits: u64,
    /// Lookups answered by a closure-inferred verdict.
    pub inferred_hits: u64,
    /// Lookups that found nothing usable (including inferred entries the
    /// caller declined with `allow_inferred = false`).
    pub misses: u64,
    /// Exact verdicts recorded (first insert or inferred→exact upgrade).
    pub recorded_exact: u64,
    /// Inferred verdicts recorded by monotonicity closure.
    pub recorded_inferred: u64,
    /// Verdicts retained across [`VerdictStore::invalidate`] calls because
    /// the delta provably could not flip them.
    pub kept: u64,
    /// Verdicts dropped by [`VerdictStore::invalidate`] calls.
    pub invalidated: u64,
}

impl StoreCounters {
    /// Total lookups served; every lookup increments exactly one of
    /// `hits`, `inferred_hits`, or `misses`.
    pub fn lookups(&self) -> u64 {
        self.hits + self.inferred_hits + self.misses
    }
}

/// Sharded concurrent map from lattice node to verdict, with monotonicity
/// closure on every recorded exact check. See the module docs for the
/// soundness argument and the single-configuration caveat.
#[derive(Debug)]
pub struct VerdictStore {
    max_levels: Vec<u8>,
    ts: usize,
    /// Whether monotonicity closure runs on recorded checks. `false` for
    /// non-monotone privacy models, where neither an ancestor pass nor a
    /// descendant k-failure is a sound inference — such stores hold exact
    /// verdicts only.
    closure: bool,
    shards: Vec<Mutex<FxHashMap<Node, Verdict>>>,
    hits: AtomicU64,
    inferred_hits: AtomicU64,
    misses: AtomicU64,
    recorded_exact: AtomicU64,
    recorded_inferred: AtomicU64,
    kept: AtomicU64,
    invalidated: AtomicU64,
}

/// How a delta batch invalidates a store's cached verdicts. Produced by the
/// incremental layer's classifier (`psens-core::incremental`) from what the
/// batch actually changed, consumed by [`VerdictStore::invalidate`].
#[derive(Debug, Clone, Copy)]
pub enum Invalidation<'a> {
    /// The batch is net-zero on the row multiset: every `NodeCheck` field is
    /// a function of that multiset, so every verdict stands.
    KeepAll,
    /// No soundness argument applies: drop everything.
    DropAll,
    /// The batch was *sterile* — append-only, every appended row an exact
    /// duplicate of an existing row whose ground QI-group already had `>= k`
    /// tuples, under a distinct-count model. Partitions, violation counts,
    /// and per-group distinct sets are then unchanged at every node; only
    /// the confidential frequency statistics moved. Each entry is re-judged
    /// against the *new* statistics and kept iff Conditions 1/2 still settle
    /// it the same way (see DESIGN.md §17 for the full argument).
    Conditions {
        /// Confidential statistics of the table *after* the batch.
        stats: &'a ConfidentialStats,
        /// The model's sensitivity requirement (`p`, or `l` for the
        /// distinct-`l` model).
        p: u32,
    },
}

/// What an [`VerdictStore::invalidate`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InvalidationOutcome {
    /// Entries retained because the delta provably cannot flip them.
    pub kept: u64,
    /// Entries dropped for re-derivation.
    pub invalidated: u64,
}

impl VerdictStore {
    /// Creates an empty store for `lattice` under suppression threshold
    /// `ts`. The threshold is captured here so [`record`](Self::record) can
    /// decide descendant condemnation without the caller restating it.
    pub fn new(lattice: &Lattice, ts: usize) -> Self {
        Self::for_model(lattice, ts, true)
    }

    /// [`Self::new`] with an explicit monotonicity declaration. Stores for
    /// non-monotone models (`monotone = false`) refuse closure in *both*
    /// directions: [`record`](Self::record) never writes
    /// [`Verdict::InferredPass`] or [`Verdict::InferredFailK`], so the
    /// inferred counters of such a store stay 0 forever and every lookup
    /// answer is an exact replay. `for_model(lattice, ts, true)` is
    /// bit-for-bit [`Self::new`].
    pub fn for_model(lattice: &Lattice, ts: usize, monotone: bool) -> Self {
        VerdictStore {
            max_levels: lattice.max_levels().to_vec(),
            ts,
            closure: monotone,
            shards: (0..N_SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            hits: AtomicU64::new(0),
            inferred_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recorded_exact: AtomicU64::new(0),
            recorded_inferred: AtomicU64::new(0),
            kept: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// The suppression threshold this store was built for.
    pub fn ts(&self) -> usize {
        self.ts
    }

    fn shard_of(&self, node: &Node) -> &Mutex<FxHashMap<Node, Verdict>> {
        let ix = node.levels().iter().fold(0usize, |acc, &l| {
            acc.wrapping_mul(31).wrapping_add(l as usize)
        });
        &self.shards[ix % N_SHARDS]
    }

    /// Looks up `node`, counting the outcome. With `allow_inferred = false`
    /// an inferred entry is treated as (and counted as) a miss — callers
    /// that need `violating_tuples` (e.g. the exhaustive scan's annotations)
    /// can only use exact entries.
    pub fn lookup(&self, node: &Node, allow_inferred: bool) -> Option<Verdict> {
        let found = self
            .shard_of(node)
            .lock()
            .expect("verdict shard lock poisoned")
            .get(node)
            .cloned();
        match found {
            Some(Verdict::Exact(check)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Verdict::Exact(check))
            }
            Some(verdict) if allow_inferred => {
                self.inferred_hits.fetch_add(1, Ordering::Relaxed);
                Some(verdict)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up `node` without touching the traffic counters. Intended for
    /// tests and diagnostics.
    pub fn peek(&self, node: &Node) -> Option<Verdict> {
        self.shard_of(node)
            .lock()
            .expect("verdict shard lock poisoned")
            .get(node)
            .cloned()
    }

    /// Records an exact check and closes it under monotonicity:
    ///
    /// * the node itself gets [`Verdict::Exact`] (an inferred entry is
    ///   upgraded; an existing exact entry is left alone — checks are
    ///   deterministic, so both writers hold the same value);
    /// * a pass marks every strict ancestor [`Verdict::InferredPass`];
    /// * `violating_tuples > ts` marks every strict descendant
    ///   [`Verdict::InferredFailK`], regardless of the stage that settled
    ///   the check (the count alone is the certificate).
    ///
    /// Inferred closure entries never overwrite anything already present.
    pub fn record(&self, check: &NodeCheck) {
        debug_assert!(
            check.node.levels().len() == self.max_levels.len()
                && check
                    .node
                    .levels()
                    .iter()
                    .zip(&self.max_levels)
                    .all(|(l, max)| l <= max),
            "node {} outside the store's lattice",
            check.node
        );
        let inserted = {
            let mut shard = self
                .shard_of(&check.node)
                .lock()
                .expect("verdict shard lock poisoned");
            match shard.entry(check.node.clone()) {
                Entry::Vacant(slot) => {
                    slot.insert(Verdict::Exact(check.clone()));
                    true
                }
                Entry::Occupied(mut slot) => {
                    if slot.get().is_inferred() {
                        slot.insert(Verdict::Exact(check.clone()));
                        true
                    } else {
                        false
                    }
                }
            }
        };
        if inserted {
            self.recorded_exact.fetch_add(1, Ordering::Relaxed);
        }
        if !self.closure {
            return; // non-monotone model: no inference is sound
        }
        if check.satisfied {
            self.close_over_box(check.node.levels(), Closure::AncestorsPass);
        }
        if check.violating_tuples > self.ts {
            self.close_over_box(check.node.levels(), Closure::DescendantsFailK);
        }
    }

    /// Inserts `verdict` for `node` only if nothing is recorded yet.
    fn insert_inferred(&self, node: Node, verdict: Verdict) {
        let mut shard = self
            .shard_of(&node)
            .lock()
            .expect("verdict shard lock poisoned");
        if let Entry::Vacant(slot) = shard.entry(node) {
            slot.insert(verdict);
            drop(shard);
            self.recorded_inferred.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Walks the axis-aligned box of strict ancestors (levels in
    /// `pivot[i]..=max[i]`) or strict descendants (levels in
    /// `0..=pivot[i]`) of `pivot` with an odometer, skipping the pivot
    /// itself, and inserts the inferred verdict at each corner.
    fn close_over_box(&self, pivot: &[u8], closure: Closure) {
        let (lo, hi, verdict): (Vec<u8>, Vec<u8>, Verdict) = match closure {
            Closure::AncestorsPass => (
                pivot.to_vec(),
                self.max_levels.clone(),
                Verdict::InferredPass,
            ),
            Closure::DescendantsFailK => {
                (vec![0; pivot.len()], pivot.to_vec(), Verdict::InferredFailK)
            }
        };
        let mut cur = lo.clone();
        loop {
            if cur.as_slice() != pivot {
                self.insert_inferred(Node(cur.clone()), verdict.clone());
            }
            // Odometer increment over the box, least-significant axis first.
            let mut axis = 0;
            loop {
                if axis == cur.len() {
                    return;
                }
                if cur[axis] < hi[axis] {
                    cur[axis] += 1;
                    cur[..axis].copy_from_slice(&lo[..axis]);
                    break;
                }
                axis += 1;
            }
        }
    }

    /// Applies an invalidation policy after a delta batch, dropping every
    /// verdict the policy cannot prove stable and counting both sides.
    ///
    /// Soundness rests on the policy's precondition, not on anything checked
    /// here — the incremental layer only emits [`Invalidation::Conditions`]
    /// for batches where the partition-derived fields of every cached
    /// [`NodeCheck`] are unchanged (see [`Invalidation`] and DESIGN.md §17),
    /// in which case an entry survives iff a fresh evaluation against the
    /// new statistics would reproduce it byte-for-byte:
    ///
    /// * [`Verdict::InferredFailK`] is kept: the ancestor's
    ///   `violating_tuples > ts` certificate is partition-derived.
    /// * [`Verdict::InferredPass`] is dropped: its witness descendant may
    ///   itself have flipped on Conditions 1/2.
    /// * [`Verdict::Exact`] entries are re-judged per stage: a Condition-1
    ///   failure stands iff the new statistics still refuse `p`; a
    ///   Condition-2 failure stands iff Condition 1 passes and the recorded
    ///   group count is still over the new `maxGroups`; any later stage
    ///   (whose scan outcome is partition-derived) stands iff both
    ///   conditions still admit it. Entries carrying a histogram `detail`
    ///   are always dropped — their metrics quote frequencies, which moved.
    pub fn invalidate(&self, policy: Invalidation<'_>) -> InvalidationOutcome {
        let mut outcome = InvalidationOutcome::default();
        match policy {
            Invalidation::KeepAll => {
                outcome.kept = self.len() as u64;
            }
            Invalidation::DropAll => {
                for shard in &self.shards {
                    let mut map = shard.lock().expect("verdict shard lock poisoned");
                    outcome.invalidated += map.len() as u64;
                    map.clear();
                }
            }
            Invalidation::Conditions { stats, p } => {
                for shard in &self.shards {
                    let mut map = shard.lock().expect("verdict shard lock poisoned");
                    let before = map.len() as u64;
                    map.retain(|_, verdict| survives_conditions(verdict, stats, p));
                    outcome.kept += map.len() as u64;
                    outcome.invalidated += before - map.len() as u64;
                }
            }
        }
        self.kept.fetch_add(outcome.kept, Ordering::Relaxed);
        self.invalidated
            .fetch_add(outcome.invalidated, Ordering::Relaxed);
        outcome
    }

    /// Builds a detached successor store holding exactly the entries that
    /// survive `policy`, leaving `self` untouched. The successor inherits
    /// the lattice bounds, suppression threshold, and closure mode, and
    /// starts from `self`'s cumulative counters (advanced by this call's
    /// kept/invalidated tallies) so pool statistics survive a swap.
    ///
    /// This is the swap half of delta invalidation: the server replaces the
    /// pooled `Arc` with the successor *under the dataset's write lock*, so
    /// an in-flight search that acquired the old store against the
    /// pre-delta table keeps recording into the detached instance — its
    /// stale verdicts die with that `Arc` instead of poisoning post-delta
    /// lookups. Entries keep their shard (the shard function depends only
    /// on the node), so successor and in-place [`invalidate`](Self::invalidate)
    /// agree entry-for-entry.
    pub fn invalidated_successor(
        &self,
        policy: Invalidation<'_>,
    ) -> (VerdictStore, InvalidationOutcome) {
        let prior = self.counters();
        let successor = VerdictStore {
            max_levels: self.max_levels.clone(),
            ts: self.ts,
            closure: self.closure,
            shards: (0..N_SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            hits: AtomicU64::new(prior.hits),
            inferred_hits: AtomicU64::new(prior.inferred_hits),
            misses: AtomicU64::new(prior.misses),
            recorded_exact: AtomicU64::new(prior.recorded_exact),
            recorded_inferred: AtomicU64::new(prior.recorded_inferred),
            kept: AtomicU64::new(prior.kept),
            invalidated: AtomicU64::new(prior.invalidated),
        };
        let mut outcome = InvalidationOutcome::default();
        for (ix, shard) in self.shards.iter().enumerate() {
            let map = shard.lock().expect("verdict shard lock poisoned");
            let mut survivors = FxHashMap::default();
            for (node, verdict) in map.iter() {
                let keep = match policy {
                    Invalidation::KeepAll => true,
                    Invalidation::DropAll => false,
                    Invalidation::Conditions { stats, p } => survives_conditions(verdict, stats, p),
                };
                if keep {
                    survivors.insert(node.clone(), verdict.clone());
                } else {
                    outcome.invalidated += 1;
                }
            }
            outcome.kept += survivors.len() as u64;
            *successor.shards[ix]
                .lock()
                .expect("verdict shard lock poisoned") = survivors;
        }
        successor.kept.fetch_add(outcome.kept, Ordering::Relaxed);
        successor
            .invalidated
            .fetch_add(outcome.invalidated, Ordering::Relaxed);
        (successor, outcome)
    }

    /// Every entry in the store — exact *and* inferred — sorted by node
    /// levels. Intended for tests and diagnostics (e.g. rebuilding a store
    /// to cross-check [`approx_bytes`](Self::approx_bytes)).
    pub fn snapshot_entries(&self) -> Vec<(Node, Verdict)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().expect("verdict shard lock poisoned");
            for (node, verdict) in map.iter() {
                out.push((node.clone(), verdict.clone()));
            }
        }
        out.sort_by(|a, b| a.0.levels().cmp(b.0.levels()));
        out
    }

    /// Inserts a raw entry without closure or counter side effects. Test
    /// support for reconstructing a store from [`Self::snapshot_entries`];
    /// not part of the serving path.
    #[doc(hidden)]
    pub fn insert_raw(&self, node: Node, verdict: Verdict) {
        self.shard_of(&node)
            .lock()
            .expect("verdict shard lock poisoned")
            .insert(node, verdict);
    }

    /// Snapshot of the traffic and recording counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            inferred_hits: self.inferred_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recorded_exact: self.recorded_exact.load(Ordering::Relaxed),
            recorded_inferred: self.recorded_inferred.load(Ordering::Relaxed),
            kept: self.kept.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
        }
    }

    /// Number of nodes with a recorded verdict (exact or inferred).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("verdict shard lock poisoned").len())
            .sum()
    }

    /// Approximate heap footprint of the recorded verdicts, in bytes. This
    /// backs memory-pressure accounting (a pool of stores evicted LRU once
    /// the sum crosses a budget), so it only needs to be a monotone,
    /// consistent estimate — per entry: the hash-map slot, the key's level
    /// vector, and (exact entries) the retained [`NodeCheck`].
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let slot = size_of::<Node>() + size_of::<Verdict>() + 16;
        let mut total = 0u64;
        for shard in &self.shards {
            let map = shard.lock().expect("verdict shard lock poisoned");
            for (node, verdict) in map.iter() {
                let levels = node.levels().len();
                let exact_extra = match verdict {
                    // The check clones the node again; count its levels too.
                    Verdict::Exact(_) => levels,
                    _ => 0,
                };
                total += (slot + levels + exact_extra) as u64;
            }
        }
        total
    }

    /// Every exact verdict in the store, sorted by node levels so the export
    /// is deterministic (two exports of equally-filled stores are
    /// byte-identical once serialized). Inferred entries are omitted: the
    /// monotonicity closure re-derives them for free when the exact checks
    /// are replayed through [`record`](Self::record).
    pub fn export_exact(&self) -> Vec<NodeCheck> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().expect("verdict shard lock poisoned");
            for verdict in map.values() {
                if let Verdict::Exact(check) = verdict {
                    out.push(check.clone());
                }
            }
        }
        out.sort_by(|a, b| a.node.levels().cmp(b.node.levels()));
        out
    }

    /// True when no verdict has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which side of the monotonicity closure to materialize.
#[derive(Debug, Clone, Copy)]
enum Closure {
    AncestorsPass,
    DescendantsFailK,
}

/// The per-entry keep rule of [`Invalidation::Conditions`]. See
/// [`VerdictStore::invalidate`] for the stage-by-stage argument.
fn survives_conditions(verdict: &Verdict, stats: &ConfidentialStats, p: u32) -> bool {
    let check = match verdict {
        Verdict::InferredFailK => return true,
        Verdict::InferredPass => return false,
        Verdict::Exact(check) => check,
    };
    if check.detail.is_some() {
        return false; // histogram details quote frequencies, which moved
    }
    let c1 = stats.condition1(p);
    match check.stage {
        CheckStage::Condition1 => !c1,
        CheckStage::Condition2 => {
            c1 && matches!(check.n_groups, Some(g) if !stats.condition2(p, g))
        }
        CheckStage::KAnonymity | CheckStage::DetailedScan | CheckStage::Passed => {
            c1 && matches!(check.n_groups, Some(g) if stats.condition2(p, g))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CheckStage;

    /// The paper's Figure 2 lattice: Sex (max 1) x ZipCode (max 2).
    fn figure2() -> Lattice {
        Lattice::new(vec![1, 2])
    }

    fn check(levels: &[u8], satisfied: bool, violating: usize) -> NodeCheck {
        NodeCheck {
            node: Node(levels.to_vec()),
            violating_tuples: violating,
            suppressed: 0,
            satisfied,
            stage: if satisfied {
                CheckStage::Passed
            } else {
                CheckStage::KAnonymity
            },
            n_groups: Some(4),
            detail: None,
        }
    }

    #[test]
    fn a_pass_closes_upward_only() {
        let store = VerdictStore::new(&figure2(), 0);
        store.record(&check(&[1, 1], true, 0));
        assert_eq!(
            store.peek(&Node(vec![1, 1])),
            Some(Verdict::Exact(check(&[1, 1], true, 0)))
        );
        assert_eq!(store.peek(&Node(vec![1, 2])), Some(Verdict::InferredPass));
        // Descendants and incomparable nodes stay unknown.
        for levels in [[0u8, 0], [1, 0], [0, 1], [0, 2]] {
            assert_eq!(store.peek(&Node(levels.to_vec())), None, "{levels:?}");
        }
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn a_k_failure_closes_downward_only() {
        let store = VerdictStore::new(&figure2(), 3);
        store.record(&check(&[1, 1], false, 4)); // violating 4 > ts 3
        assert_eq!(store.peek(&Node(vec![0, 0])), Some(Verdict::InferredFailK));
        assert_eq!(store.peek(&Node(vec![1, 0])), Some(Verdict::InferredFailK));
        assert_eq!(store.peek(&Node(vec![0, 1])), Some(Verdict::InferredFailK));
        assert_eq!(store.peek(&Node(vec![1, 2])), None);
        assert_eq!(store.peek(&Node(vec![0, 2])), None);
    }

    #[test]
    fn a_suppressible_k_failure_condemns_nothing() {
        // violating_tuples within ts: suppression may still rescue
        // descendants' ancestors... the node itself failed (say detailed
        // scan), but the count alone is no certificate against descendants.
        let store = VerdictStore::new(&figure2(), 5);
        store.record(&NodeCheck {
            stage: CheckStage::DetailedScan,
            ..check(&[1, 1], false, 2)
        });
        assert_eq!(store.len(), 1, "no closure for a non-k failure");
    }

    #[test]
    fn exact_upgrades_inferred_but_never_the_reverse() {
        let store = VerdictStore::new(&figure2(), 0);
        store.record(&check(&[1, 1], true, 0)); // infers <1,2> pass
        assert_eq!(store.peek(&Node(vec![1, 2])), Some(Verdict::InferredPass));
        // A fresh exact check of <1,2> replaces the inferred entry.
        store.record(&check(&[1, 2], true, 0));
        assert_eq!(
            store.peek(&Node(vec![1, 2])),
            Some(Verdict::Exact(check(&[1, 2], true, 0)))
        );
        // Re-recording the pass at <1,1> must not demote it back.
        store.record(&check(&[1, 1], true, 0));
        assert_eq!(
            store.peek(&Node(vec![1, 2])),
            Some(Verdict::Exact(check(&[1, 2], true, 0)))
        );
    }

    #[test]
    fn every_lookup_increments_exactly_one_counter() {
        let store = VerdictStore::new(&figure2(), 0);
        store.record(&check(&[1, 1], true, 0));
        assert!(store.lookup(&Node(vec![1, 1]), false).is_some()); // exact hit
        assert!(store.lookup(&Node(vec![1, 2]), true).is_some()); // inferred hit
        assert!(store.lookup(&Node(vec![1, 2]), false).is_none()); // declined -> miss
        assert!(store.lookup(&Node(vec![0, 0]), true).is_none()); // miss
        let c = store.counters();
        assert_eq!((c.hits, c.inferred_hits, c.misses), (1, 1, 2));
        assert_eq!(c.lookups(), 4);
        assert_eq!(c.recorded_exact, 1);
        assert_eq!(c.recorded_inferred, 1);
        // peek is counter-neutral.
        store.peek(&Node(vec![1, 1]));
        assert_eq!(store.counters(), c);
    }

    #[test]
    fn export_is_exact_only_sorted_and_replayable() {
        let store = VerdictStore::new(&figure2(), 0);
        store.record(&check(&[1, 1], true, 0)); // also infers <1,2> pass
        store.record(&check(&[0, 1], false, 1));
        let exported = store.export_exact();
        assert_eq!(exported.len(), 2, "inferred entries are not exported");
        let nodes: Vec<&[u8]> = exported.iter().map(|c| c.node.levels()).collect();
        assert_eq!(nodes, vec![&[0u8, 1][..], &[1, 1][..]], "sorted by levels");
        // Replaying the export into a fresh store reconstructs everything,
        // including the closure-inferred entries.
        let rebuilt = VerdictStore::new(&figure2(), 0);
        for c in &exported {
            rebuilt.record(c);
        }
        assert_eq!(rebuilt.len(), store.len());
        assert_eq!(rebuilt.peek(&Node(vec![1, 2])), Some(Verdict::InferredPass));
        assert_eq!(rebuilt.export_exact(), exported);
    }

    #[test]
    fn approx_bytes_grows_with_recorded_verdicts() {
        let store = VerdictStore::new(&figure2(), 0);
        assert_eq!(store.approx_bytes(), 0);
        store.record(&check(&[0, 1], false, 1));
        let one = store.approx_bytes();
        assert!(one > 0);
        store.record(&check(&[1, 1], true, 0));
        assert!(store.approx_bytes() > one, "more entries, more bytes");
    }

    /// Statistics with one confidential attribute of descending frequencies
    /// `descending` — `maxP = len(descending)`, `maxGroups(2) = n - f_1`.
    fn stats_of(descending: &[usize]) -> crate::conditions::ConfidentialStats {
        use crate::conditions::{AttributeFrequencyStats, ConfidentialStats};
        let n = descending.iter().sum();
        ConfidentialStats::assemble(
            n,
            vec![AttributeFrequencyStats::from_descending(
                1,
                "S".into(),
                descending.to_vec(),
            )],
        )
    }

    #[test]
    fn keep_all_and_drop_all_count_every_entry() {
        let store = VerdictStore::new(&figure2(), 0);
        store.record(&check(&[1, 1], true, 0)); // + inferred pass at <1,2>
        store.record(&check(&[0, 1], false, 1)); // + inferred FailK at <0,0>
        assert_eq!(store.len(), 4);
        let kept = store.invalidate(Invalidation::KeepAll);
        assert_eq!(
            kept,
            InvalidationOutcome {
                kept: 4,
                invalidated: 0
            }
        );
        assert_eq!(store.len(), 4, "keep-all drops nothing");
        let dropped = store.invalidate(Invalidation::DropAll);
        assert_eq!(
            dropped,
            InvalidationOutcome {
                kept: 0,
                invalidated: 4
            }
        );
        assert!(store.is_empty());
        let c = store.counters();
        assert_eq!((c.kept, c.invalidated), (4, 4));
    }

    #[test]
    fn conditions_policy_rejudges_each_stage() {
        // New statistics after a sterile append: maxP = 3, maxGroups(2) = 3.
        let stats = stats_of(&[3, 2, 1]);
        assert!(stats.condition1(2) && !stats.condition1(4));
        assert!(stats.condition2(2, 3) && !stats.condition2(2, 4));
        let lattice = Lattice::new(vec![3, 3]);
        let entry = |stage, satisfied, n_groups, levels: &[u8]| NodeCheck {
            stage,
            satisfied,
            n_groups,
            ..check(levels, satisfied, 0)
        };
        let survivors = [
            // Passed with 3 groups: both conditions still admit it.
            entry(CheckStage::Passed, true, Some(3), &[0, 0]),
            // Condition-2 failure with 4 groups: still over the bound.
            entry(CheckStage::Condition2, false, Some(4), &[0, 1]),
        ];
        let casualties = [
            // Passed with 4 groups: Condition 2 now rejects it.
            entry(CheckStage::Passed, true, Some(4), &[1, 0]),
            // Condition-2 failure with 3 groups: the bound now admits it.
            entry(CheckStage::Condition2, false, Some(3), &[1, 1]),
            // Condition-1 failure at p = 2: the new stats accept p = 2.
            entry(CheckStage::Condition1, false, None, &[2, 0]),
            // Histogram detail: metrics quote frequencies, always dropped.
            NodeCheck {
                detail: Some(crate::model::ModelDetail::MinEntropyMicroNats(7)),
                ..entry(CheckStage::Passed, true, Some(3), &[2, 1])
            },
        ];
        let store = VerdictStore::for_model(&lattice, 0, false); // no closure noise
        for c in survivors.iter().chain(&casualties) {
            store.record(c);
        }
        let outcome = store.invalidate(Invalidation::Conditions {
            stats: &stats,
            p: 2,
        });
        assert_eq!(
            outcome,
            InvalidationOutcome {
                kept: 2,
                invalidated: 4
            }
        );
        for c in &survivors {
            assert_eq!(
                store.peek(&c.node),
                Some(Verdict::Exact(c.clone())),
                "{}",
                c.node
            );
        }
        for c in &casualties {
            assert_eq!(store.peek(&c.node), None, "{}", c.node);
        }
        // A Condition-1 failure survives when the new stats still refuse p.
        let store = VerdictStore::for_model(&lattice, 0, false);
        store.record(&entry(CheckStage::Condition1, false, None, &[0, 0]));
        let outcome = store.invalidate(Invalidation::Conditions {
            stats: &stats,
            p: 4,
        });
        assert_eq!(
            outcome,
            InvalidationOutcome {
                kept: 1,
                invalidated: 0
            }
        );
    }

    #[test]
    fn conditions_policy_keeps_fail_k_but_drops_inferred_passes() {
        let stats = stats_of(&[3, 2, 1]);
        let store = VerdictStore::new(&figure2(), 0);
        store.record(&check(&[1, 1], true, 0)); // inferred pass at <1,2>
        store.record(&check(&[0, 1], false, 1)); // violating 1 > ts 0: FailK below
        assert_eq!(store.peek(&Node(vec![1, 2])), Some(Verdict::InferredPass));
        assert_eq!(store.peek(&Node(vec![0, 0])), Some(Verdict::InferredFailK));
        store.invalidate(Invalidation::Conditions {
            stats: &stats,
            p: 2,
        });
        assert_eq!(
            store.peek(&Node(vec![1, 2])),
            None,
            "inferred passes drop: the witness may itself have flipped"
        );
        assert_eq!(
            store.peek(&Node(vec![0, 0])),
            Some(Verdict::InferredFailK),
            "the k-violation certificate is partition-derived and stands"
        );
    }

    /// Records the same mixed-stage entry set into a fresh store; used to
    /// compare the successor against in-place invalidation.
    fn mixed_store(lattice: &Lattice) -> VerdictStore {
        let entry = |stage, satisfied, n_groups, levels: &[u8]| NodeCheck {
            stage,
            satisfied,
            n_groups,
            ..check(levels, satisfied, 0)
        };
        let store = VerdictStore::for_model(lattice, 0, false); // no closure noise
        for c in [
            entry(CheckStage::Passed, true, Some(3), &[0, 0]),
            entry(CheckStage::Condition2, false, Some(4), &[0, 1]),
            entry(CheckStage::Passed, true, Some(4), &[1, 0]),
            entry(CheckStage::Condition1, false, None, &[2, 0]),
        ] {
            store.record(&c);
        }
        store
    }

    #[test]
    fn invalidated_successor_matches_in_place_invalidate() {
        let lattice = Lattice::new(vec![3, 3]);
        let stats = stats_of(&[3, 2, 1]);
        for policy in [
            Invalidation::KeepAll,
            Invalidation::DropAll,
            Invalidation::Conditions {
                stats: &stats,
                p: 2,
            },
        ] {
            let original = mixed_store(&lattice);
            let in_place = mixed_store(&lattice);
            let before = original.snapshot_entries();
            let (successor, outcome) = original.invalidated_successor(policy);
            let expected = in_place.invalidate(policy);
            assert_eq!(outcome, expected, "{policy:?}");
            assert_eq!(
                successor.snapshot_entries(),
                in_place.snapshot_entries(),
                "{policy:?}: successor and in-place invalidation must agree"
            );
            assert_eq!(
                original.snapshot_entries(),
                before,
                "{policy:?}: the original store is untouched"
            );
        }
    }

    #[test]
    fn invalidated_successor_carries_counters_and_config() {
        let lattice = Lattice::new(vec![3, 3]);
        let original = mixed_store(&lattice);
        let _ = original.lookup(&Node(vec![0, 0]), true); // a hit
        let _ = original.lookup(&Node(vec![3, 3]), true); // a miss
        let prior = original.counters();
        let (successor, outcome) = original.invalidated_successor(Invalidation::DropAll);
        assert_eq!(outcome.invalidated, 4);
        let after = successor.counters();
        assert_eq!(
            (after.hits, after.misses, after.recorded_exact),
            (prior.hits, prior.misses, prior.recorded_exact),
            "cumulative traffic counters survive the swap"
        );
        assert_eq!(after.invalidated, prior.invalidated + 4);
        assert_eq!(successor.ts(), original.ts());
        // The closure mode is inherited: a successor of a non-monotone
        // store must still refuse inference.
        successor.record(&check(&[1, 1], true, 0));
        assert_eq!(successor.counters().recorded_inferred, 0);
        assert_eq!(successor.len(), 1, "no closure entries materialized");
    }

    #[test]
    fn snapshot_and_raw_insert_round_trip_approx_bytes() {
        let store = VerdictStore::new(&figure2(), 0);
        store.record(&check(&[1, 1], true, 0));
        store.record(&check(&[0, 1], false, 1));
        let rebuilt = VerdictStore::new(&figure2(), 0);
        for (node, verdict) in store.snapshot_entries() {
            rebuilt.insert_raw(node, verdict);
        }
        assert_eq!(rebuilt.len(), store.len());
        assert_eq!(rebuilt.approx_bytes(), store.approx_bytes());
        assert_eq!(rebuilt.snapshot_entries(), store.snapshot_entries());
        assert_eq!(
            rebuilt.counters(),
            StoreCounters::default(),
            "raw inserts are counter-neutral"
        );
    }

    #[test]
    fn store_is_sync_and_send() {
        fn assert_bounds<T: Sync + Send>() {}
        assert_bounds::<VerdictStore>();
    }

    #[test]
    fn non_monotone_store_refuses_closure_in_both_directions() {
        let store = VerdictStore::for_model(&figure2(), 0, false);
        // A pass that would close ancestors under a monotone model ...
        store.record(&check(&[0, 0], true, 0));
        // ... and a k-failure (violating > ts) that would close descendants.
        store.record(&check(&[1, 1], false, 3));
        assert_eq!(store.len(), 2, "only the two exact records exist");
        for levels in [[0u8, 1], [0, 2], [1, 0], [1, 2]] {
            assert_eq!(store.peek(&Node(levels.to_vec())), None, "{levels:?}");
        }
        // Inferred verdicts were neither recorded nor can they be served.
        for node in figure2().all_nodes() {
            let _ = store.lookup(&node, true);
        }
        let c = store.counters();
        assert_eq!(c.recorded_inferred, 0, "closure must never run");
        assert_eq!(c.inferred_hits, 0, "nothing inferred can be served");
        assert_eq!((c.hits, c.misses), (2, 4));
    }

    #[test]
    fn monotone_for_model_store_is_bit_for_bit_new() {
        let plain = VerdictStore::new(&figure2(), 2);
        let modeled = VerdictStore::for_model(&figure2(), 2, true);
        for c in [
            check(&[0, 0], false, 3), // k-failure: closes descendants (none)
            check(&[1, 1], true, 0),  // pass: closes ancestors
            check(&[0, 1], false, 1), // suppressible failure: no closure
        ] {
            plain.record(&c);
            modeled.record(&c);
        }
        for node in figure2().all_nodes() {
            assert_eq!(plain.peek(&node), modeled.peek(&node), "{node}");
            assert_eq!(
                plain.lookup(&node, true),
                modeled.lookup(&node, true),
                "{node}"
            );
        }
        assert_eq!(plain.counters(), modeled.counters());
        assert_eq!(plain.export_exact(), modeled.export_exact());
    }

    /// The concurrency stress test the issue asks for: 16 threads hammer one
    /// store with passes and k-failures recorded in conflicting orders.
    /// Ground truth is the monotone predicate `height >= 3` on a 3-D
    /// lattice, so closure can never produce a pass/fail contradiction —
    /// the test asserts the store preserves that, and that the traffic
    /// counters account for every lookup exactly.
    #[test]
    fn sixteen_threads_recording_in_conflicting_orders_stay_consistent() {
        let lattice = Lattice::new(vec![2, 2, 2]);
        let ts = 1;
        let truth = |node: &Node| node.height() >= 3;
        let checks: Vec<NodeCheck> = lattice
            .all_nodes()
            .into_iter()
            .map(|node| {
                let satisfied = truth(&node);
                NodeCheck {
                    violating_tuples: if satisfied { 0 } else { ts + 1 },
                    ..check(node.levels(), satisfied, 0)
                }
            })
            .collect();
        let store = VerdictStore::new(&lattice, ts);
        let n_threads = 16;
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let checks = &checks;
                let store = &store;
                scope.spawn(move || {
                    // Each thread records every verdict in a different
                    // rotation (even threads forward, odd reversed), so
                    // passes and failures interleave in conflicting orders.
                    let n = checks.len();
                    for i in 0..n {
                        let ix = if t % 2 == 0 {
                            (i + t) % n
                        } else {
                            n - 1 - ((i + t) % n)
                        };
                        store.record(&checks[ix]);
                        let probe = &checks[(ix * 7 + t) % n].node;
                        if let Some(verdict) = store.lookup(probe, true) {
                            assert_eq!(verdict.satisfied(), truth(probe), "{probe}");
                        }
                    }
                });
            }
        });
        // Closure invariant: no node holds a verdict contradicting the
        // monotone ground truth (in particular, none is both pass and fail).
        for node in lattice.all_nodes() {
            let verdict = store.peek(&node).expect("every node recorded");
            assert_eq!(verdict.satisfied(), truth(&node), "{node}");
            assert!(
                !verdict.is_inferred(),
                "exact records upgrade inferred entries: {node}"
            );
        }
        // Counters sum exactly: every lookup is a hit, an inferred hit, or
        // a miss; every record either inserted or found an exact entry.
        let c = store.counters();
        assert_eq!(c.lookups(), (n_threads * checks.len()) as u64);
        assert_eq!(store.len(), lattice.node_count());
        assert!(c.recorded_exact >= checks.len() as u64);
        assert!(c.hits + c.inferred_hits + c.misses == c.lookups());
    }
}
