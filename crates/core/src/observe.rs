//! Zero-cost search observability: the [`SearchObserver`] trait and its two
//! stock implementations.
//!
//! The paper's experiments (Tables 7–8) are about *how much work each stage
//! of Algorithm 2 avoids* — Condition 1 aborts, Condition 2 skips,
//! k-anonymity rejects, detailed scans. [`crate::evaluator::NodeEvaluator`]
//! and the lattice searches report flat end-of-run counters; this module adds
//! the per-stage timings, per-height node counts, kernel cache-build cost,
//! and suppression totals behind them, without taxing the hot path:
//!
//! - [`NoopObserver`] sets the associated const [`SearchObserver::ENABLED`]
//!   to `false`. Every instrumentation site is gated on that const, so after
//!   monomorphization the un-observed kernel contains no `Instant::now()`
//!   calls and no branches — the `*_observed` entry points compile to the
//!   exact code the plain ones always had.
//! - [`RecordingObserver`] accumulates everything into atomics (it is handed
//!   by `&` to every worker of a parallel scan), and renders the totals as an
//!   owned [`Telemetry`] value at the end of the search.
//!
//! Observer methods take `&self` and the trait requires `Sync`: one observer
//! instance is shared by all search threads.

use crate::checker::CheckStage;
use psens_microdata::JsonValue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// All five Algorithm 2 stages, in check order. Index with [`stage_index`].
pub const STAGES: [CheckStage; 5] = [
    CheckStage::Condition1,
    CheckStage::Condition2,
    CheckStage::KAnonymity,
    CheckStage::DetailedScan,
    CheckStage::Passed,
];

/// Dense index of a stage in [`STAGES`] (check order).
pub fn stage_index(stage: CheckStage) -> usize {
    match stage {
        CheckStage::Condition1 => 0,
        CheckStage::Condition2 => 1,
        CheckStage::KAnonymity => 2,
        CheckStage::DetailedScan => 3,
        CheckStage::Passed => 4,
    }
}

/// Stable lowercase name of a stage, used in report JSON.
pub fn stage_name(stage: CheckStage) -> &'static str {
    match stage {
        CheckStage::Condition1 => "condition1",
        CheckStage::Condition2 => "condition2",
        CheckStage::KAnonymity => "k_anonymity",
        CheckStage::DetailedScan => "detailed_scan",
        CheckStage::Passed => "passed",
    }
}

/// Receives search events. All methods default to no-ops; implementations
/// override what they care about. `Sync` because one observer is shared by
/// every thread of a parallel search.
pub trait SearchObserver: Sync {
    /// Whether instrumentation sites should measure at all. When `false`
    /// (only [`NoopObserver`]), call sites skip timing entirely and the
    /// whole layer monomorphizes away.
    const ENABLED: bool = true;

    /// The node-invariant kernel cache ([`crate::EvalContext`]) was built.
    fn cache_built(&self, elapsed: Duration) {
        let _ = elapsed;
    }

    /// A search moved to a new lattice height (samarati probes, levelwise
    /// sweeps). Purely informational; node counts come from `node_checked`.
    fn height_entered(&self, height: usize) {
        let _ = height;
    }

    /// One node check settled: at lattice height `height`, in `stage`, with
    /// `suppressed` tuples removed by suppression simulation.
    fn node_checked(&self, height: usize, stage: CheckStage, suppressed: usize, elapsed: Duration) {
        let _ = (height, stage, suppressed, elapsed);
    }

    /// A node's verdict was served from the shared
    /// [`crate::verdict::VerdictStore`] instead of a fresh kernel check: an
    /// exact replay (`inferred == false`) or a verdict derived by
    /// monotonicity closure (`inferred == true`). Reused verdicts never fire
    /// [`Self::node_checked`] and never consume node budget.
    fn verdict_reused(&self, height: usize, inferred: bool) {
        let _ = (height, inferred);
    }

    /// A full generalized table was materialized
    /// ([`crate::MaskingContext::evaluate`] — the expensive path the kernel
    /// exists to avoid).
    fn table_materialized(&self, elapsed: Duration) {
        let _ = elapsed;
    }

    /// A partition-style algorithm (mondrian, greedy clustering) finalized
    /// one output group of `rows` rows.
    fn partition_finalized(&self, rows: usize, elapsed: Duration) {
        let _ = (rows, elapsed);
    }
}

/// Starts a timer only when `O` records; `None` costs nothing.
pub fn start_timer<O: SearchObserver + ?Sized>() -> Option<Instant> {
    if O::ENABLED {
        Some(Instant::now())
    } else {
        None
    }
}

/// Elapsed time since [`start_timer`], zero when the timer was disabled.
pub fn elapsed_since(start: Option<Instant>) -> Duration {
    start.map(|t| t.elapsed()).unwrap_or(Duration::ZERO)
}

/// The do-nothing observer: `ENABLED = false`, so every instrumentation
/// site gated on the const compiles out.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SearchObserver for NoopObserver {
    const ENABLED: bool = false;
}

/// Per-stage accumulator: settled-node count and total check time.
#[derive(Debug, Default)]
struct StageCell {
    nodes: AtomicU64,
    ns: AtomicU64,
}

/// Thread-safe recording observer: accumulates counts and wall-clock totals
/// into atomics, rendered by [`Self::telemetry`].
#[derive(Debug, Default)]
pub struct RecordingObserver {
    cache_build_ns: AtomicU64,
    stages: [StageCell; 5],
    /// Per-height (nodes, ns); heights are small and sparse, so a map under
    /// a mutex beats sizing an array for an unknown lattice.
    heights: Mutex<std::collections::BTreeMap<usize, (u64, u64)>>,
    heights_entered: Mutex<Vec<usize>>,
    cache_hits: AtomicU64,
    cache_inferred: AtomicU64,
    tables_materialized: AtomicU64,
    materialize_ns: AtomicU64,
    suppressed_total: AtomicU64,
    partitions_finalized: AtomicU64,
    partition_rows: AtomicU64,
    partition_ns: AtomicU64,
}

impl RecordingObserver {
    /// A fresh observer with all counters at zero.
    pub fn new() -> RecordingObserver {
        RecordingObserver::default()
    }

    /// Snapshots the accumulated counters.
    pub fn telemetry(&self) -> Telemetry {
        let stages = STAGES
            .iter()
            .map(|&stage| {
                let cell = &self.stages[stage_index(stage)];
                StageTelemetry {
                    stage,
                    nodes: cell.nodes.load(Ordering::Relaxed),
                    ns: cell.ns.load(Ordering::Relaxed),
                }
            })
            .collect();
        let heights = self
            .heights
            .lock()
            .expect("observer mutex")
            .iter()
            .map(|(&height, &(nodes, ns))| HeightTelemetry { height, nodes, ns })
            .collect();
        Telemetry {
            cache_build_ns: self.cache_build_ns.load(Ordering::Relaxed),
            stages,
            heights,
            heights_entered: self.heights_entered.lock().expect("observer mutex").clone(),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_inferred: self.cache_inferred.load(Ordering::Relaxed),
            tables_materialized: self.tables_materialized.load(Ordering::Relaxed),
            materialize_ns: self.materialize_ns.load(Ordering::Relaxed),
            suppressed_total: self.suppressed_total.load(Ordering::Relaxed),
            partitions_finalized: self.partitions_finalized.load(Ordering::Relaxed),
            partition_rows: self.partition_rows.load(Ordering::Relaxed),
            partition_ns: self.partition_ns.load(Ordering::Relaxed),
        }
    }
}

impl SearchObserver for RecordingObserver {
    fn cache_built(&self, elapsed: Duration) {
        self.cache_build_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    fn height_entered(&self, height: usize) {
        self.heights_entered
            .lock()
            .expect("observer mutex")
            .push(height);
    }

    fn node_checked(&self, height: usize, stage: CheckStage, suppressed: usize, elapsed: Duration) {
        let ns = elapsed.as_nanos() as u64;
        let cell = &self.stages[stage_index(stage)];
        cell.nodes.fetch_add(1, Ordering::Relaxed);
        cell.ns.fetch_add(ns, Ordering::Relaxed);
        self.suppressed_total
            .fetch_add(suppressed as u64, Ordering::Relaxed);
        let mut heights = self.heights.lock().expect("observer mutex");
        let entry = heights.entry(height).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += ns;
    }

    fn verdict_reused(&self, _height: usize, inferred: bool) {
        if inferred {
            self.cache_inferred.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn table_materialized(&self, elapsed: Duration) {
        self.tables_materialized.fetch_add(1, Ordering::Relaxed);
        self.materialize_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    fn partition_finalized(&self, rows: usize, elapsed: Duration) {
        self.partitions_finalized.fetch_add(1, Ordering::Relaxed);
        self.partition_rows
            .fetch_add(rows as u64, Ordering::Relaxed);
        self.partition_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// One Algorithm 2 stage's share of the search: how many node checks it
/// settled and their total wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTelemetry {
    /// The settling stage.
    pub stage: CheckStage,
    /// Node checks this stage settled.
    pub nodes: u64,
    /// Total check time of those nodes, nanoseconds.
    pub ns: u64,
}

/// One lattice height's share of the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeightTelemetry {
    /// Lattice height (sum of node levels).
    pub height: usize,
    /// Node checks at this height.
    pub nodes: u64,
    /// Total check time of those nodes, nanoseconds.
    pub ns: u64,
}

/// Snapshot of everything a [`RecordingObserver`] accumulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Telemetry {
    /// Time to build the node-invariant kernel cache, nanoseconds.
    pub cache_build_ns: u64,
    /// Per-stage node counts and timings, in check order (all five stages,
    /// zeros included, so consumers can sum without guessing).
    pub stages: Vec<StageTelemetry>,
    /// Per-height node counts and timings, ascending height.
    pub heights: Vec<HeightTelemetry>,
    /// Lattice heights in the order the search visited them.
    pub heights_entered: Vec<usize>,
    /// Node verdicts replayed exactly from the shared verdict store (these
    /// are *not* in [`Self::nodes_checked`] — no kernel check ran).
    pub cache_hits: u64,
    /// Node verdicts served by monotonicity inference from the store.
    pub cache_inferred: u64,
    /// Full generalized tables materialized.
    pub tables_materialized: u64,
    /// Total table materialization time, nanoseconds.
    pub materialize_ns: u64,
    /// Total tuples removed by suppression simulation across all node checks.
    pub suppressed_total: u64,
    /// Output groups finalized by partition-style algorithms.
    pub partitions_finalized: u64,
    /// Rows across those finalized groups.
    pub partition_rows: u64,
    /// Total partition build time, nanoseconds.
    pub partition_ns: u64,
}

impl Telemetry {
    /// Total node checks, summed over stages.
    pub fn nodes_checked(&self) -> u64 {
        self.stages.iter().map(|s| s.nodes).sum()
    }

    /// Total node-check time, nanoseconds, summed over stages.
    pub fn check_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.ns).sum()
    }

    /// Renders the telemetry as a JSON object (the `telemetry` field of a
    /// `RunReport`; schema documented in DESIGN.md).
    pub fn to_json(&self) -> JsonValue {
        let mut out = JsonValue::object();
        out.set("cache_build_ns", JsonValue::Int(self.cache_build_ns as i64));
        out.set(
            "stages",
            JsonValue::Array(
                self.stages
                    .iter()
                    .map(|s| {
                        let mut entry = JsonValue::object();
                        entry.set("stage", JsonValue::Str(stage_name(s.stage).into()));
                        entry.set("nodes", JsonValue::Int(s.nodes as i64));
                        entry.set("ns", JsonValue::Int(s.ns as i64));
                        entry
                    })
                    .collect(),
            ),
        );
        out.set(
            "heights",
            JsonValue::Array(
                self.heights
                    .iter()
                    .map(|h| {
                        let mut entry = JsonValue::object();
                        entry.set("height", JsonValue::Int(h.height as i64));
                        entry.set("nodes", JsonValue::Int(h.nodes as i64));
                        entry.set("ns", JsonValue::Int(h.ns as i64));
                        entry
                    })
                    .collect(),
            ),
        );
        out.set(
            "heights_entered",
            JsonValue::Array(
                self.heights_entered
                    .iter()
                    .map(|&h| JsonValue::Int(h as i64))
                    .collect(),
            ),
        );
        out.set("nodes_checked", JsonValue::Int(self.nodes_checked() as i64));
        out.set("check_ns", JsonValue::Int(self.check_ns() as i64));
        out.set("cache_hits", JsonValue::Int(self.cache_hits as i64));
        out.set("cache_inferred", JsonValue::Int(self.cache_inferred as i64));
        out.set(
            "tables_materialized",
            JsonValue::Int(self.tables_materialized as i64),
        );
        out.set("materialize_ns", JsonValue::Int(self.materialize_ns as i64));
        out.set(
            "suppressed_total",
            JsonValue::Int(self.suppressed_total as i64),
        );
        out.set(
            "partitions_finalized",
            JsonValue::Int(self.partitions_finalized as i64),
        );
        out.set("partition_rows", JsonValue::Int(self.partition_rows as i64));
        out.set("partition_ns", JsonValue::Int(self.partition_ns as i64));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NoopObserver must opt out of instrumentation entirely; checked at
    // compile time.
    const _: () = assert!(!NoopObserver::ENABLED);

    #[test]
    fn noop_is_disabled_and_costless_to_time() {
        let t = start_timer::<NoopObserver>();
        assert!(t.is_none());
        assert_eq!(elapsed_since(t), Duration::ZERO);
    }

    #[test]
    fn recording_accumulates_by_stage_and_height() {
        let obs = RecordingObserver::new();
        obs.cache_built(Duration::from_nanos(10));
        obs.height_entered(2);
        obs.node_checked(2, CheckStage::Passed, 0, Duration::from_nanos(5));
        obs.node_checked(2, CheckStage::Condition2, 3, Duration::from_nanos(7));
        obs.node_checked(1, CheckStage::Condition1, 0, Duration::from_nanos(2));
        obs.table_materialized(Duration::from_nanos(100));
        obs.partition_finalized(4, Duration::from_nanos(20));
        obs.verdict_reused(2, false);
        obs.verdict_reused(3, true);
        obs.verdict_reused(3, true);
        let t = obs.telemetry();
        assert_eq!(t.cache_build_ns, 10);
        assert_eq!(t.nodes_checked(), 3);
        assert_eq!(t.check_ns(), 14);
        assert_eq!(t.suppressed_total, 3);
        assert_eq!(t.heights_entered, vec![2]);
        assert_eq!(
            t.heights,
            vec![
                HeightTelemetry {
                    height: 1,
                    nodes: 1,
                    ns: 2
                },
                HeightTelemetry {
                    height: 2,
                    nodes: 2,
                    ns: 12
                },
            ]
        );
        assert_eq!(t.stages[stage_index(CheckStage::Condition1)].nodes, 1);
        assert_eq!(t.stages[stage_index(CheckStage::Condition2)].nodes, 1);
        assert_eq!(t.stages[stage_index(CheckStage::KAnonymity)].nodes, 0);
        assert_eq!(t.stages[stage_index(CheckStage::Passed)].nodes, 1);
        assert_eq!(t.tables_materialized, 1);
        assert_eq!(t.materialize_ns, 100);
        assert_eq!(t.partitions_finalized, 1);
        assert_eq!(t.partition_rows, 4);
        assert_eq!(t.partition_ns, 20);
        // Reused verdicts land in their own counters, never in the stage
        // partition (nodes_checked stays the fresh-check count).
        assert_eq!(t.cache_hits, 1);
        assert_eq!(t.cache_inferred, 2);
        assert_eq!(t.nodes_checked(), 3);
    }

    #[test]
    fn telemetry_json_is_valid_and_sums() {
        let obs = RecordingObserver::new();
        obs.node_checked(0, CheckStage::Passed, 1, Duration::from_nanos(5));
        let t = obs.telemetry();
        let json = t.to_json().to_json();
        let parsed = JsonValue::parse(&json).unwrap();
        assert_eq!(
            parsed.require("nodes_checked").unwrap().as_u64().unwrap(),
            1
        );
        let stage_sum: u64 = parsed
            .require("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.require("nodes").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(stage_sum, 1);
    }

    #[test]
    fn observers_are_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<NoopObserver>();
        assert_sync::<RecordingObserver>();
    }
}
