//! # psens-core
//!
//! The paper's contribution: **p-sensitive k-anonymity** (Truta & Vinay,
//! *Privacy Protection: p-Sensitive k-Anonymity Property*, ICDE 2006).
//!
//! Plain k-anonymity (Definition 1) bounds *identity* disclosure: every
//! combination of key-attribute values occurs at least `k` times, so linkage
//! identifies an individual with probability at most `1/k`. It does nothing
//! about *attribute* disclosure: a QI-group that is homogeneous in a
//! confidential attribute reveals that attribute to anyone who can place a
//! target in the group. p-sensitive k-anonymity (Definition 2) closes the
//! gap by additionally requiring every confidential attribute to take at
//! least `p` distinct values inside every QI-group.
//!
//! ## Module map
//!
//! | module | paper artifact |
//! |---|---|
//! | [`kanonymity`] | Definition 1, Figure 3's violation counts |
//! | [`psensitive`] | Definition 2, Algorithm 1 (basic check) |
//! | [`conditions`] | Conditions 1–2, Tables 5–6, Example 1 |
//! | [`checker`] | Algorithm 2 (improved check) |
//! | [`theorems`] | Theorems 1–2 (reuse of `maxP`/`maxGroups`) |
//! | [`suppress`] | tuple suppression with threshold TS, plus cell-level local suppression |
//! | [`masking`] | generalize → suppress → check pipeline |
//! | [`evaluator`] | code-mapped node-evaluation kernel (no table materialization) |
//! | [`observe`] | zero-cost search telemetry (per-stage timings, Tables 7–8 inputs) |
//! | [`budget`] | search budgets, cancellation, anytime [`Termination`] verdicts |
//! | [`disclosure`] | identity/attribute disclosure counts (Table 8) |
//! | [`attack`] | the record-linkage / homogeneity attack (Tables 1–2) |
//! | [`extended`] | extended p-sensitivity over confidential hierarchies (follow-up model) |
//! | [`verdict`] | shared verdict store with monotonicity closure (Samarati's Algorithm 3 invariant) |
//! | [`model`] | pluggable privacy models (p-sensitivity, l-diversity, t-closeness) behind one trait |
//!
//! ## Example
//!
//! ```
//! use psens_core::psensitive::{is_p_sensitive_k_anonymous, max_p_of_masked};
//! use psens_microdata::{table_from_str_rows, Attribute, Schema};
//!
//! // Paper Table 3: satisfies 3-anonymity but only 1-sensitivity — the
//! // first group has a single Income value.
//! let schema = Schema::new(vec![
//!     Attribute::int_key("Age"),
//!     Attribute::cat_key("ZipCode"),
//!     Attribute::cat_key("Sex"),
//!     Attribute::cat_confidential("Illness"),
//!     Attribute::int_confidential("Income"),
//! ]).unwrap();
//! let mm = table_from_str_rows(schema, &[
//!     &["20", "43102", "F", "AIDS", "50000"],
//!     &["20", "43102", "F", "AIDS", "50000"],
//!     &["20", "43102", "F", "Diabetes", "50000"],
//!     &["30", "43102", "M", "Diabetes", "30000"],
//!     &["30", "43102", "M", "Diabetes", "40000"],
//!     &["30", "43102", "M", "Heart Disease", "30000"],
//!     &["30", "43102", "M", "Heart Disease", "40000"],
//! ]).unwrap();
//!
//! let keys = mm.schema().key_indices();
//! let conf = mm.schema().confidential_indices();
//! assert!(is_p_sensitive_k_anonymous(&mm, &keys, &conf, 1, 3));
//! assert!(!is_p_sensitive_k_anonymous(&mm, &keys, &conf, 2, 3));
//! assert_eq!(max_p_of_masked(&mm, &keys, &conf), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod budget;
pub mod checker;
pub mod conditions;
pub mod disclosure;
pub mod evaluator;
pub mod extended;
pub mod incremental;
pub mod kanonymity;
pub mod masking;
pub mod model;
pub mod observe;
pub mod psensitive;
pub mod suppress;
pub mod theorems;
pub mod verdict;

pub use budget::{BudgetState, CancelToken, SearchBudget, Termination};
pub use checker::{check_improved, CheckStage, ImprovedCheckOutcome};
pub use conditions::{AttributeFrequencyStats, ConfidentialStats, MaxGroups};
pub use disclosure::{attribute_disclosure_count, attribute_disclosures, AttributeDisclosure};
pub use evaluator::{CacheCheck, EvalContext, NodeCheck, NodeEvaluator, VerdictSource};
pub use extended::{check_extended, extended_max_p, ConfidentialSpec, ExtendedReport};
pub use incremental::{invalidation_for, DeltaEffect, LiveTable};
pub use kanonymity::{check_k_anonymity, is_k_anonymous, max_k, max_k_chunked, KAnonymityReport};
pub use masking::{MaskOutcome, MaskingContext};
pub use model::{
    check_table_model, CodeDistribution, DistinctLDiversity, EntropyLDiversity, GroupCheckMode,
    GroupVerdict, ModelDetail, ModelSpec, PSensitiveK, PrivacyModel, TCloseness, TableModelReport,
    FIXED_POINT_SCALE,
};
pub use observe::{
    HeightTelemetry, NoopObserver, RecordingObserver, SearchObserver, StageTelemetry, Telemetry,
};
pub use psensitive::{
    check_p_sensitivity, check_p_sensitivity_chunked, group_profiles, is_p_sensitive_k_anonymous,
    max_p_of_masked, max_p_of_masked_chunked, GroupProfile, PSensitivityReport,
    SensitivityViolation,
};
pub use suppress::{
    locally_suppress_to_k, suppress_to_k, suppress_within_threshold, LocalSuppressionResult,
    SuppressionResult,
};
pub use verdict::{Invalidation, InvalidationOutcome, StoreCounters, Verdict, VerdictStore};
