//! Disclosure accounting: identity vs. attribute disclosure (paper
//! Sections 2 and 4, Table 8).
//!
//! *Identity disclosure* is the re-identification of an entity; *attribute
//! disclosure* occurs when the intruder learns something new about the
//! entity — possible even without re-identification when a QI-group is
//! homogeneous in a confidential attribute (the paper's Sam/Erich Diabetes
//! example). Table 8 counts such homogeneous `(group, attribute)` pairs in
//! k-anonymous maskings.

use psens_microdata::{GroupBy, Table, Value};
use serde::Serialize;

/// One attribute disclosure: a QI-group whose members all share the same
/// value of a confidential attribute, so group membership reveals the value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AttributeDisclosure {
    /// Group id within the grouping used for the count.
    pub group: u32,
    /// Key-attribute values identifying the group.
    pub key: Vec<Value>,
    /// Number of individuals affected (the group size).
    pub group_size: u32,
    /// Index of the disclosed confidential attribute.
    pub attribute: usize,
    /// Name of the disclosed confidential attribute.
    pub attribute_name: String,
    /// The value every group member shares.
    pub value: Value,
}

/// Finds every attribute disclosure in `table`: `(group, attribute)` pairs
/// where a confidential attribute is constant within a QI-group.
///
/// This is exactly the paper's Table 8 metric ("several groups of attributes
/// with the same value for a confidential attribute, ... the attribute
/// disclosure could take place"), equivalently the set of 2-sensitivity
/// violations.
pub fn attribute_disclosures(
    table: &Table,
    keys: &[usize],
    confidential: &[usize],
) -> Vec<AttributeDisclosure> {
    let groups = GroupBy::compute(table, keys);
    let mut out = Vec::new();
    for &attr in confidential {
        let distinct = groups.distinct_per_group(table.column(attr));
        for (g, &d) in distinct.iter().enumerate() {
            if d == 1 {
                let rep = groups.representatives()[g] as usize;
                out.push(AttributeDisclosure {
                    group: g as u32,
                    key: groups.key_of_group(table, g),
                    group_size: groups.sizes()[g],
                    attribute: attr,
                    attribute_name: table.schema().attribute(attr).name().to_owned(),
                    value: table.value(rep, attr),
                });
            }
        }
    }
    out.sort_by_key(|d| (d.group, d.attribute));
    out
}

/// Number of attribute disclosures (Table 8's "No of attribute disclosures").
pub fn attribute_disclosure_count(table: &Table, keys: &[usize], confidential: &[usize]) -> usize {
    attribute_disclosures(table, keys, confidential).len()
}

/// Number of individuals at risk of *identity* disclosure under exact
/// linkage: tuples whose QI-group is a singleton.
pub fn identity_disclosure_count(table: &Table, keys: &[usize]) -> usize {
    let groups = GroupBy::compute(table, keys);
    groups.sizes().iter().filter(|&&s| s == 1).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    /// Paper Table 1 plus its homogeneous (20, 43102, M) Diabetes group.
    fn table1() -> Table {
        let schema = Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_key("ZipCode"),
            Attribute::cat_key("Sex"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["50", "43102", "M", "Colon Cancer"],
                &["30", "43102", "F", "Breast Cancer"],
                &["30", "43102", "F", "HIV"],
                &["20", "43102", "M", "Diabetes"],
                &["20", "43102", "M", "Diabetes"],
                &["50", "43102", "M", "Heart Disease"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn table1_has_exactly_the_diabetes_disclosure() {
        // The paper: "both of the tuples have Diabetes as the illness, and
        // therefore both Sam and Erich have Diabetes."
        let t = table1();
        let keys = t.schema().key_indices();
        let conf = t.schema().confidential_indices();
        let disclosures = attribute_disclosures(&t, &keys, &conf);
        assert_eq!(disclosures.len(), 1);
        let d = &disclosures[0];
        assert_eq!(d.attribute_name, "Illness");
        assert_eq!(d.value, Value::Text("Diabetes".into()));
        assert_eq!(d.group_size, 2);
        assert_eq!(
            d.key,
            vec![
                Value::Int(20),
                Value::Text("43102".into()),
                Value::Text("M".into())
            ]
        );
        assert_eq!(attribute_disclosure_count(&t, &keys, &conf), 1);
    }

    #[test]
    fn no_identity_disclosure_in_2_anonymous_table() {
        let t = table1();
        let keys = t.schema().key_indices();
        assert_eq!(identity_disclosure_count(&t, &keys), 0);
    }

    #[test]
    fn singleton_groups_are_identity_disclosures() {
        let t = table1();
        // Grouping by nothing but Age splits 50/30/20 into groups of 2 — add
        // Illness to the key set to force singletons.
        let keys = vec![0usize, 3];
        let count = identity_disclosure_count(&t, &keys);
        assert_eq!(count, 4); // only the Diabetes pair is non-singleton
    }

    #[test]
    fn multiple_attributes_counted_independently() {
        let schema = Schema::new(vec![
            Attribute::cat_key("Zip"),
            Attribute::cat_confidential("Illness"),
            Attribute::cat_confidential("Pay"),
        ])
        .unwrap();
        let t = table_from_str_rows(
            schema,
            &[
                &["A", "Flu", "Low"],
                &["A", "Flu", "Low"],
                &["B", "Flu", "Low"],
                &["B", "HIV", "Low"],
            ],
        )
        .unwrap();
        let disclosures = attribute_disclosures(&t, &[0], &[1, 2]);
        // Group A: Illness and Pay homogeneous (2 disclosures).
        // Group B: Pay homogeneous (1 disclosure).
        assert_eq!(disclosures.len(), 3);
        let affected: usize = disclosures.iter().map(|d| d.group_size as usize).sum();
        assert_eq!(affected, 6);
    }

    #[test]
    fn empty_and_clean_tables() {
        let t = table1().filter(|_| false);
        assert_eq!(attribute_disclosure_count(&t, &[0, 1, 2], &[3]), 0);
        // A table where every group has 2 distinct illnesses is clean.
        let schema = Schema::new(vec![
            Attribute::cat_key("Zip"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        let clean = table_from_str_rows(
            schema,
            &[&["A", "Flu"], &["A", "HIV"], &["B", "Flu"], &["B", "HIV"]],
        )
        .unwrap();
        assert_eq!(attribute_disclosure_count(&clean, &[0], &[1]), 0);
    }
}
