//! Pluggable privacy models behind the [`PrivacyModel`] trait.
//!
//! The paper's checker hardcodes one per-group predicate: *every
//! confidential attribute takes at least `p` distinct values in every
//! QI-group* (Definition 2). That predicate is the only model-specific
//! piece of the whole search stack — the lattice walk, the verdict cache,
//! budgets, suppression simulation, and winner materialization are all
//! model-agnostic. This module extracts the predicate into a trait so the
//! same engine can serve other group-level privacy models:
//!
//! | model | per-group property | source |
//! |---|---|---|
//! | [`PSensitiveK`] | `COUNT(DISTINCT S) >= p` | Truta & Vinay, ICDE 2006 |
//! | [`DistinctLDiversity`] | `COUNT(DISTINCT S) >= l` | Machanavajjhala et al., ICDE 2006 |
//! | [`EntropyLDiversity`] | `entropy(S) >= ln l` | Machanavajjhala et al., ICDE 2006 |
//! | [`TCloseness`] | `EMD(group, table) <= t` | Li et al., ICDE 2007; EMD per Soria-Comas et al. |
//!
//! ## Monotonicity
//!
//! [`crate::verdict::VerdictStore`] infers verdicts by closure along the
//! generalization lattice: a pass closes ancestors, a
//! beyond-threshold k-failure closes descendants. Both inferences assume
//! the model is **monotone** — generalizing can only merge QI-groups, and
//! merging groups must never turn a passing table into a failing one. All
//! four shipped models are monotone:
//!
//! - distinct counts only grow when groups merge (p-sensitivity,
//!   distinct l-diversity);
//! - entropy of a mixture is at least the minimum component entropy, by
//!   concavity of Shannon entropy (entropy l-diversity);
//! - equal-distance EMD to the table distribution is half the total
//!   variation distance, which is convex: the distance of a merged group
//!   is at most the maximum component distance (t-closeness).
//!
//! A model that is *not* monotone must say so via
//! [`PrivacyModel::is_monotone`]; the store then refuses closure in both
//! directions (see `VerdictStore::for_model`) and every verdict is exact.

use psens_microdata::{GroupBy, Table};
use serde::Serialize;
use std::fmt;
use std::sync::Arc;

/// Nats-to-micro-nats (and probability-to-ppm) fixed-point scale. Model
/// parameters and detail metrics are stored as integers at this scale so
/// they can be hashed, ordered, journaled, and replayed exactly.
pub const FIXED_POINT_SCALE: f64 = 1_000_000.0;

/// Slack for float comparisons at group boundaries: a group whose metric
/// misses the threshold by less than this is considered passing, so the
/// verdict never depends on the last bit of a float summation.
const METRIC_EPSILON: f64 = 1e-9;

/// A privacy model plus its parameter, in fixed-point form — `Copy`,
/// hashable, and totally ordered so it can key warm verdict-store pools
/// and round-trip through the server journal exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum ModelSpec {
    /// p-sensitive k-anonymity (paper Definition 2): every confidential
    /// attribute takes at least `p` distinct values per QI-group.
    PSensitiveK {
        /// Minimum distinct confidential values per QI-group.
        p: u32,
    },
    /// Distinct l-diversity: at least `l` distinct confidential values per
    /// QI-group — structurally the same predicate as p-sensitivity with
    /// `p = l`.
    DistinctL {
        /// Minimum distinct confidential values per QI-group.
        l: u32,
    },
    /// Entropy l-diversity: the Shannon entropy of each confidential
    /// attribute within each QI-group is at least `ln l`.
    EntropyL {
        /// Entropy threshold, as `ln l` with integer `l`.
        l: u32,
    },
    /// t-closeness: the earth mover's distance between each QI-group's
    /// confidential distribution and the whole-table distribution is at
    /// most `t`. Equal-distance ground metric (the flat-hierarchy case of
    /// Soria-Comas et al.), where EMD is half the L1 distance.
    TCloseness {
        /// The threshold `t` in parts-per-million (`t = t_ppm / 1e6`).
        t_ppm: u32,
    },
}

impl ModelSpec {
    /// The model's wire name (`--model` value, journal field).
    pub fn name(&self) -> &'static str {
        match self {
            ModelSpec::PSensitiveK { .. } => "psens-k",
            ModelSpec::DistinctL { .. } => "distinct-l",
            ModelSpec::EntropyL { .. } => "entropy-l",
            ModelSpec::TCloseness { .. } => "t-closeness",
        }
    }

    /// The model's parameter as one canonical integer: `p`, `l`, `l`, or
    /// `t_ppm`. Together with [`Self::name`] this round-trips through
    /// [`Self::from_parts`].
    pub fn param(&self) -> u64 {
        match *self {
            ModelSpec::PSensitiveK { p } => u64::from(p),
            ModelSpec::DistinctL { l } | ModelSpec::EntropyL { l } => u64::from(l),
            ModelSpec::TCloseness { t_ppm } => u64::from(t_ppm),
        }
    }

    /// Rebuilds a spec from its wire `(name, param)` pair (the inverse of
    /// [`Self::name`] + [`Self::param`]). Errors on an unknown name or an
    /// out-of-range parameter.
    pub fn from_parts(name: &str, param: u64) -> Result<ModelSpec, String> {
        let narrow = |what: &str| -> Result<u32, String> {
            u32::try_from(param).map_err(|_| format!("model parameter {what}={param} out of range"))
        };
        match name {
            "psens-k" => Ok(ModelSpec::PSensitiveK { p: narrow("p")? }),
            "distinct-l" => Ok(ModelSpec::DistinctL { l: narrow("l")? }),
            "entropy-l" => Ok(ModelSpec::EntropyL { l: narrow("l")? }),
            "t-closeness" => Ok(ModelSpec::TCloseness {
                t_ppm: narrow("t_ppm")?,
            }),
            other => Err(format!(
                "unknown privacy model `{other}` (expected psens-k, distinct-l, entropy-l, or t-closeness)"
            )),
        }
    }

    /// Human-readable form, e.g. `psens-k(p=2)` or `t-closeness(t=0.2)`.
    pub fn describe(&self) -> String {
        match *self {
            ModelSpec::PSensitiveK { p } => format!("psens-k(p={p})"),
            ModelSpec::DistinctL { l } => format!("distinct-l(l={l})"),
            ModelSpec::EntropyL { l } => format!("entropy-l(l={l})"),
            ModelSpec::TCloseness { t_ppm } => {
                format!("t-closeness(t={})", f64::from(t_ppm) / FIXED_POINT_SCALE)
            }
        }
    }

    /// The `p` to feed the paper's Conditions 1–2 as a *necessary*
    /// condition for this model. Distinct-count models use their own
    /// target; entropy l-diversity uses `l` because `entropy >= ln l`
    /// forces at least `l` distinct values (Shannon entropy over `d`
    /// values is at most `ln d`); t-closeness gets the vacuous `p = 1` —
    /// no distinct-count bound follows from a distribution distance.
    pub fn conditions_p(&self) -> u32 {
        match *self {
            ModelSpec::PSensitiveK { p } => p,
            ModelSpec::DistinctL { l } | ModelSpec::EntropyL { l } => l,
            ModelSpec::TCloseness { .. } => 1,
        }
    }

    /// Whether the model is monotone along the generalization lattice (see
    /// the module docs). All shipped specs are; the accessor exists so
    /// callers configure verdict stores from the spec, not from a habit.
    pub fn is_monotone(&self) -> bool {
        self.instantiate().is_monotone()
    }

    /// Builds the runtime checker for this spec.
    pub fn instantiate(&self) -> Arc<dyn PrivacyModel> {
        match *self {
            ModelSpec::PSensitiveK { p } => Arc::new(PSensitiveK { p }),
            ModelSpec::DistinctL { l } => Arc::new(DistinctLDiversity { l }),
            ModelSpec::EntropyL { l } => Arc::new(EntropyLDiversity { l }),
            ModelSpec::TCloseness { t_ppm } => Arc::new(TCloseness { t_ppm }),
        }
    }
}

/// How the kernel should scan QI-groups for a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupCheckMode {
    /// Count distinct codes per group, early-exiting at `target` — the
    /// fast path shared by p-sensitivity and distinct l-diversity (it
    /// needs no per-code counts, only a seen-stamp).
    Distinct {
        /// Minimum distinct values per group.
        target: u32,
    },
    /// Build a per-group code histogram and ask
    /// [`PrivacyModel::check_group`] for the verdict.
    Histogram {
        /// Whether `check_group` needs the whole-table code distribution
        /// (t-closeness does; entropy does not).
        needs_global: bool,
    },
}

/// Whole-table distribution of one confidential attribute's dense codes —
/// the reference distribution for distance-based models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeDistribution {
    counts: Vec<u64>,
    total: u64,
}

impl CodeDistribution {
    /// Tallies `codes` (each `< n_codes`) into a distribution.
    pub fn from_codes(codes: impl Iterator<Item = u32>, n_codes: u32) -> CodeDistribution {
        let mut counts = vec![0u64; n_codes as usize];
        let mut total = 0u64;
        for code in codes {
            counts[code as usize] += 1;
            total += 1;
        }
        CodeDistribution { counts, total }
    }

    /// The fraction of rows carrying `code` (0 for an empty table).
    pub fn fraction(&self, code: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[code as usize] as f64 / self.total as f64
        }
    }

    /// Total rows tallied.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// A model's verdict on one QI-group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupVerdict {
    /// Whether the group satisfies the model.
    pub passes: bool,
    /// The group's metric in the model's fixed-point unit (distinct
    /// count, micro-nats of entropy, ppm of EMD) — folded across groups
    /// into the node-level [`ModelDetail`].
    pub metric: u64,
}

/// Model-specific payload on a node verdict: the extremal per-group metric
/// the detailed scan observed, in fixed-point units so verdicts stay
/// `Eq`/hashable and replay exactly from snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ModelDetail {
    /// Minimum per-group distinct-value count across groups and
    /// confidential attributes.
    MinDistinct(u32),
    /// Minimum per-group Shannon entropy, in micro-nats.
    MinEntropyMicroNats(u64),
    /// Maximum per-group earth mover's distance, in parts-per-million.
    MaxEmdPpm(u32),
}

impl ModelDetail {
    /// The detail's wire name, paired with [`Self::value`] for snapshots.
    pub fn kind(&self) -> &'static str {
        match self {
            ModelDetail::MinDistinct(_) => "min_distinct",
            ModelDetail::MinEntropyMicroNats(_) => "min_entropy_micro_nats",
            ModelDetail::MaxEmdPpm(_) => "max_emd_ppm",
        }
    }

    /// The detail's value as one canonical integer.
    pub fn value(&self) -> u64 {
        match *self {
            ModelDetail::MinDistinct(v) => u64::from(v),
            ModelDetail::MinEntropyMicroNats(v) => v,
            ModelDetail::MaxEmdPpm(v) => u64::from(v),
        }
    }

    /// Rebuilds a detail from its wire `(kind, value)` pair.
    pub fn from_parts(kind: &str, value: u64) -> Result<ModelDetail, String> {
        let narrow = || -> Result<u32, String> {
            u32::try_from(value).map_err(|_| format!("detail value {value} out of range"))
        };
        match kind {
            "min_distinct" => Ok(ModelDetail::MinDistinct(narrow()?)),
            "min_entropy_micro_nats" => Ok(ModelDetail::MinEntropyMicroNats(value)),
            "max_emd_ppm" => Ok(ModelDetail::MaxEmdPpm(narrow()?)),
            other => Err(format!("unknown model detail kind `{other}`")),
        }
    }
}

/// A group-level privacy model the node-evaluation kernel can check.
///
/// Implementations are stateless predicates over per-group confidential
/// histograms; everything table- and node-specific arrives as arguments.
/// The trait is object-safe: the kernel holds an `Arc<dyn PrivacyModel>`.
pub trait PrivacyModel: fmt::Debug + Send + Sync {
    /// The model's wire name (matches [`ModelSpec::name`] for shipped
    /// models).
    fn name(&self) -> &'static str;

    /// Whether the model is monotone along the generalization lattice.
    /// Non-monotone models make [`crate::verdict::VerdictStore`] closure
    /// unsound; build their stores with `VerdictStore::for_model(..,
    /// false)` so every verdict stays exact.
    fn is_monotone(&self) -> bool;

    /// The `p` to feed Conditions 1–2 as a necessary condition (see
    /// [`ModelSpec::conditions_p`]).
    fn conditions_p(&self) -> u32;

    /// How the kernel should scan groups for this model.
    fn mode(&self) -> GroupCheckMode;

    /// Per-group verdict. `counts` holds the group's `(code, count)`
    /// pairs in ascending code order (only codes present in the group),
    /// `group_size` its row count, and `global` the whole-table
    /// distribution when the mode asked for it.
    fn check_group(
        &self,
        counts: &[(u32, u32)],
        group_size: u32,
        global: Option<&CodeDistribution>,
    ) -> GroupVerdict;

    /// Folds the extremal per-group metrics the scan observed into the
    /// node-level detail payload — entropy keeps the minimum, EMD the
    /// maximum.
    fn node_detail(&self, min_metric: u64, max_metric: u64) -> ModelDetail;
}

/// p-sensitive k-anonymity (paper Definition 2) as a [`PrivacyModel`] —
/// the port of the previously hardcoded checker, verdict-for-verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PSensitiveK {
    /// Minimum distinct confidential values per QI-group.
    pub p: u32,
}

impl PrivacyModel for PSensitiveK {
    fn name(&self) -> &'static str {
        "psens-k"
    }

    fn is_monotone(&self) -> bool {
        true
    }

    fn conditions_p(&self) -> u32 {
        self.p
    }

    fn mode(&self) -> GroupCheckMode {
        GroupCheckMode::Distinct { target: self.p }
    }

    fn check_group(
        &self,
        counts: &[(u32, u32)],
        _group_size: u32,
        _global: Option<&CodeDistribution>,
    ) -> GroupVerdict {
        let distinct = counts.len() as u64;
        GroupVerdict {
            passes: distinct >= u64::from(self.p),
            metric: distinct,
        }
    }

    fn node_detail(&self, min_metric: u64, _max_metric: u64) -> ModelDetail {
        ModelDetail::MinDistinct(min_metric.min(u64::from(u32::MAX)) as u32)
    }
}

/// Distinct l-diversity: the same distinct-count predicate as
/// p-sensitivity with `p = l` (the models differ only in provenance), so
/// it shares the kernel's early-exit distinct scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistinctLDiversity {
    /// Minimum distinct confidential values per QI-group.
    pub l: u32,
}

impl PrivacyModel for DistinctLDiversity {
    fn name(&self) -> &'static str {
        "distinct-l"
    }

    fn is_monotone(&self) -> bool {
        true
    }

    fn conditions_p(&self) -> u32 {
        self.l
    }

    fn mode(&self) -> GroupCheckMode {
        GroupCheckMode::Distinct { target: self.l }
    }

    fn check_group(
        &self,
        counts: &[(u32, u32)],
        _group_size: u32,
        _global: Option<&CodeDistribution>,
    ) -> GroupVerdict {
        let distinct = counts.len() as u64;
        GroupVerdict {
            passes: distinct >= u64::from(self.l),
            metric: distinct,
        }
    }

    fn node_detail(&self, min_metric: u64, _max_metric: u64) -> ModelDetail {
        ModelDetail::MinDistinct(min_metric.min(u64::from(u32::MAX)) as u32)
    }
}

/// Entropy l-diversity: every group's confidential entropy is at least
/// `ln l`. Monotone because Shannon entropy is concave: a merged group's
/// distribution is a mixture, and `H(Σ wᵢ Pᵢ) >= Σ wᵢ H(Pᵢ) >= min H(Pᵢ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntropyLDiversity {
    /// Entropy threshold, as `ln l`.
    pub l: u32,
}

impl EntropyLDiversity {
    /// The group's Shannon entropy in nats: `ln n − (Σ c·ln c)/n`.
    fn entropy_nats(counts: &[(u32, u32)], group_size: u32) -> f64 {
        if group_size == 0 {
            return 0.0;
        }
        let n = f64::from(group_size);
        let weighted: f64 = counts
            .iter()
            .map(|&(_, c)| {
                let c = f64::from(c);
                c * c.ln()
            })
            .sum();
        (n.ln() - weighted / n).max(0.0)
    }
}

impl PrivacyModel for EntropyLDiversity {
    fn name(&self) -> &'static str {
        "entropy-l"
    }

    fn is_monotone(&self) -> bool {
        true
    }

    fn conditions_p(&self) -> u32 {
        self.l
    }

    fn mode(&self) -> GroupCheckMode {
        GroupCheckMode::Histogram {
            needs_global: false,
        }
    }

    fn check_group(
        &self,
        counts: &[(u32, u32)],
        group_size: u32,
        _global: Option<&CodeDistribution>,
    ) -> GroupVerdict {
        let h = Self::entropy_nats(counts, group_size);
        let threshold = f64::from(self.l).ln();
        GroupVerdict {
            passes: h + METRIC_EPSILON >= threshold,
            metric: (h * FIXED_POINT_SCALE).round() as u64,
        }
    }

    fn node_detail(&self, min_metric: u64, _max_metric: u64) -> ModelDetail {
        ModelDetail::MinEntropyMicroNats(min_metric)
    }
}

/// t-closeness with the equal-distance ground metric, where EMD degenerates
/// to half the L1 distance between the group's and the table's
/// confidential distributions (the flat-hierarchy case of Soria-Comas et
/// al.'s microaggregation t-closeness). Monotone because total variation
/// distance is jointly convex: a merged group's distance to the table
/// distribution is at most the maximum of its parts'.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TCloseness {
    /// The threshold `t` in parts-per-million.
    pub t_ppm: u32,
}

impl TCloseness {
    /// Equal-distance EMD of the group against `global`: `0.5·Σ|gᵢ − Gᵢ|`
    /// computed from the group's touched codes only, since every code
    /// absent from the group contributes exactly its global mass.
    fn emd(counts: &[(u32, u32)], group_size: u32, global: &CodeDistribution) -> f64 {
        if group_size == 0 || global.total() == 0 {
            return 0.0;
        }
        let n = f64::from(group_size);
        let mut touched = 0.0f64;
        for &(code, count) in counts {
            let g = f64::from(count) / n;
            let q = global.fraction(code);
            touched += (g - q).abs() - q;
        }
        (0.5 * (touched + 1.0)).clamp(0.0, 1.0)
    }
}

impl PrivacyModel for TCloseness {
    fn name(&self) -> &'static str {
        "t-closeness"
    }

    fn is_monotone(&self) -> bool {
        true
    }

    fn conditions_p(&self) -> u32 {
        1
    }

    fn mode(&self) -> GroupCheckMode {
        GroupCheckMode::Histogram { needs_global: true }
    }

    fn check_group(
        &self,
        counts: &[(u32, u32)],
        group_size: u32,
        global: Option<&CodeDistribution>,
    ) -> GroupVerdict {
        let global = global.expect("t-closeness needs the whole-table distribution");
        let emd = Self::emd(counts, group_size, global);
        let threshold = f64::from(self.t_ppm) / FIXED_POINT_SCALE;
        GroupVerdict {
            passes: emd <= threshold + METRIC_EPSILON,
            metric: (emd * FIXED_POINT_SCALE).round() as u64,
        }
    }

    fn node_detail(&self, _min_metric: u64, max_metric: u64) -> ModelDetail {
        ModelDetail::MaxEmdPpm(max_metric.min(u64::from(u32::MAX)) as u32)
    }
}

/// Result of the table-level model check (the model-generic analogue of
/// [`crate::psensitive::check_p_sensitivity`]): k-anonymity over the keys,
/// plus the model's per-group property on every confidential attribute.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TableModelReport {
    /// Whether k-anonymity holds.
    pub k_anonymous: bool,
    /// Number of QI-groups.
    pub n_groups: usize,
    /// `(group, attribute)` pairs failing the model's per-group property.
    pub violating_pairs: usize,
    /// Extremal per-group metric the scan observed (absent when there are
    /// no groups or no confidential attributes).
    pub detail: Option<ModelDetail>,
}

impl TableModelReport {
    /// True when the table satisfies k-anonymity and the model.
    pub fn satisfied(&self) -> bool {
        self.k_anonymous && self.violating_pairs == 0
    }
}

/// Checks `model` (plus k-anonymity) on a materialized table — the slow,
/// simple oracle behind `psens check --model` and the PRAM backend's
/// convergence loop. Groups by `keys`, then feeds each group's histogram
/// of each confidential attribute to [`PrivacyModel::check_group`].
pub fn check_table_model(
    table: &Table,
    keys: &[usize],
    confidential: &[usize],
    model: &dyn PrivacyModel,
    k: u32,
) -> TableModelReport {
    let groups = GroupBy::compute(table, keys);
    let k_anonymous = groups.rows_in_small_groups(k) == 0;
    let mut violating_pairs = 0usize;
    let mut min_metric = u64::MAX;
    let mut max_metric = 0u64;
    let mut any = false;
    let needs_global = matches!(
        model.mode(),
        GroupCheckMode::Histogram { needs_global: true }
    );
    for &attr in confidential {
        let (codes, n_codes) = table.column(attr).dense_codes();
        let global =
            needs_global.then(|| CodeDistribution::from_codes(codes.iter().copied(), n_codes));
        // Per-group histograms over dense codes, groups in id order and
        // codes in ascending order within each group — the same
        // deterministic order the kernel's scan produces.
        let mut hists: Vec<Vec<(u32, u32)>> = vec![Vec::new(); groups.n_groups()];
        let mut ordered: Vec<(u32, u32)> = groups
            .assignments()
            .iter()
            .zip(codes.iter())
            .map(|(&g, &c)| (g, c))
            .collect();
        ordered.sort_unstable();
        for (g, code) in ordered {
            let hist = &mut hists[g as usize];
            match hist.last_mut() {
                Some(last) if last.0 == code => last.1 += 1,
                _ => hist.push((code, 1)),
            }
        }
        for (g, hist) in hists.iter().enumerate() {
            let size = groups.sizes()[g];
            let verdict = model.check_group(hist, size, global.as_ref());
            any = true;
            min_metric = min_metric.min(verdict.metric);
            max_metric = max_metric.max(verdict.metric);
            if !verdict.passes {
                violating_pairs += 1;
            }
        }
    }
    TableModelReport {
        k_anonymous,
        n_groups: groups.n_groups(),
        violating_pairs,
        detail: any.then(|| model.node_detail(min_metric, max_metric)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    /// Paper Table 3: 3-anonymous, first group homogeneous in Income.
    fn table3() -> Table {
        let schema = Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_key("ZipCode"),
            Attribute::cat_key("Sex"),
            Attribute::cat_confidential("Illness"),
            Attribute::int_confidential("Income"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["20", "43102", "F", "AIDS", "50000"],
                &["20", "43102", "F", "AIDS", "50000"],
                &["20", "43102", "F", "Diabetes", "50000"],
                &["30", "43102", "M", "Diabetes", "30000"],
                &["30", "43102", "M", "Diabetes", "40000"],
                &["30", "43102", "M", "Heart Disease", "30000"],
                &["30", "43102", "M", "Heart Disease", "40000"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn spec_round_trips_through_wire_parts() {
        for spec in [
            ModelSpec::PSensitiveK { p: 2 },
            ModelSpec::DistinctL { l: 3 },
            ModelSpec::EntropyL { l: 4 },
            ModelSpec::TCloseness { t_ppm: 200_000 },
        ] {
            let back = ModelSpec::from_parts(spec.name(), spec.param()).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.instantiate().name(), spec.name());
        }
        assert!(ModelSpec::from_parts("k-map", 2).is_err());
        assert!(ModelSpec::from_parts("psens-k", u64::from(u32::MAX) + 1).is_err());
    }

    #[test]
    fn psens_and_distinct_l_share_the_distinct_predicate() {
        let psens = PSensitiveK { p: 2 };
        let dl = DistinctLDiversity { l: 2 };
        let counts = [(0u32, 3u32), (4, 1)];
        for model in [&psens as &dyn PrivacyModel, &dl] {
            let v = model.check_group(&counts, 4, None);
            assert!(v.passes);
            assert_eq!(v.metric, 2);
            assert!(!model.check_group(&counts[..1], 3, None).passes);
            assert_eq!(model.mode(), GroupCheckMode::Distinct { target: 2 });
        }
    }

    #[test]
    fn entropy_matches_closed_forms() {
        let model = EntropyLDiversity { l: 2 };
        // Uniform over 2 values: H = ln 2 ≈ 0.693147 — exactly the l=2
        // threshold.
        let v = model.check_group(&[(0, 2), (1, 2)], 4, None);
        assert!(v.passes);
        assert_eq!(v.metric, 693_147);
        // Homogeneous group: H = 0, fails any l >= 2.
        let v = model.check_group(&[(0, 5)], 5, None);
        assert!(!v.passes);
        assert_eq!(v.metric, 0);
        // (1/2, 1/4, 1/4): H = 1.5·ln 2 ≈ 1.039721 — passes l=2, fails
        // l=3 (ln 3 ≈ 1.0986).
        let v = model.check_group(&[(0, 2), (1, 1), (2, 1)], 4, None);
        assert!(v.passes);
        assert_eq!(v.metric, 1_039_721);
        assert!(
            !EntropyLDiversity { l: 3 }
                .check_group(&[(0, 2), (1, 1), (2, 1)], 4, None)
                .passes
        );
        // l = 1: threshold ln 1 = 0, everything passes.
        assert!(
            EntropyLDiversity { l: 1 }
                .check_group(&[(0, 5)], 5, None)
                .passes
        );
    }

    #[test]
    fn emd_matches_hand_computation() {
        // Global distribution (1/2, 1/4, 1/4) over codes 0..3.
        let global = CodeDistribution::from_codes([0, 0, 1, 2].into_iter(), 3);
        // A homogeneous all-code-0 group: EMD = 0.5·(|1 − 1/2| + 1/4 + 1/4)
        // = 0.5.
        let model = TCloseness { t_ppm: 400_000 };
        let v = model.check_group(&[(0, 4)], 4, Some(&global));
        assert!(!v.passes, "EMD 0.5 exceeds t = 0.4");
        assert_eq!(v.metric, 500_000);
        // A group mirroring the global distribution: EMD = 0.
        let v = model.check_group(&[(0, 2), (1, 1), (2, 1)], 4, Some(&global));
        assert!(v.passes);
        assert_eq!(v.metric, 0);
        // t = 0.5 admits the homogeneous group exactly at the boundary.
        let at = TCloseness { t_ppm: 500_000 };
        assert!(at.check_group(&[(0, 4)], 4, Some(&global)).passes);
    }

    #[test]
    fn table_check_agrees_with_the_hardcoded_checker() {
        let t = table3();
        let keys = t.schema().key_indices();
        let conf = t.schema().confidential_indices();
        for p in [1u32, 2, 3] {
            for k in [1u32, 3, 4] {
                let report = check_table_model(&t, &keys, &conf, &PSensitiveK { p }, k);
                assert_eq!(
                    report.satisfied(),
                    crate::psensitive::is_p_sensitive_k_anonymous(&t, &keys, &conf, p, k),
                    "p={p} k={k}"
                );
            }
        }
        // Table 3's minimum distinct count is 1 (the first group's Income).
        let report = check_table_model(&t, &keys, &conf, &PSensitiveK { p: 2 }, 3);
        assert_eq!(report.detail, Some(ModelDetail::MinDistinct(1)));
        assert_eq!(report.n_groups, 2);
    }

    #[test]
    fn detail_round_trips_through_wire_parts() {
        for detail in [
            ModelDetail::MinDistinct(3),
            ModelDetail::MinEntropyMicroNats(693_147),
            ModelDetail::MaxEmdPpm(250_000),
        ] {
            let back = ModelDetail::from_parts(detail.kind(), detail.value()).unwrap();
            assert_eq!(back, detail);
        }
        assert!(ModelDetail::from_parts("nope", 1).is_err());
    }

    #[test]
    fn conditions_p_is_a_necessary_condition_per_model() {
        assert_eq!(ModelSpec::PSensitiveK { p: 4 }.conditions_p(), 4);
        assert_eq!(ModelSpec::DistinctL { l: 3 }.conditions_p(), 3);
        // entropy >= ln l forces >= l distinct values, so Conditions 1–2
        // with p = l stay valid necessary conditions.
        assert_eq!(ModelSpec::EntropyL { l: 3 }.conditions_p(), 3);
        // No distinct-count bound follows from t-closeness.
        assert_eq!(ModelSpec::TCloseness { t_ppm: 1 }.conditions_p(), 1);
        for spec in [
            ModelSpec::PSensitiveK { p: 2 },
            ModelSpec::DistinctL { l: 2 },
            ModelSpec::EntropyL { l: 2 },
            ModelSpec::TCloseness { t_ppm: 100_000 },
        ] {
            assert!(spec.is_monotone(), "{} is monotone", spec.name());
        }
    }
}
