//! Search budgets and cooperative cancellation: bound any lattice search by
//! wall-clock deadline, node budget, or an external cancel signal, and learn
//! from a [`Termination`] verdict whether the result is complete or anytime.
//!
//! The lattice is exponential in QI width, so a service cannot let a search
//! run open-ended. The contract here is *anytime*: a search given a
//! [`SearchBudget`] runs until the budget trips, then returns its best
//! result so far together with the [`Termination`] cause, instead of either
//! running away or returning nothing.
//!
//! Cost model: the kernel's node checks are the high-rate unit (thousands
//! per second), so [`BudgetState::admit`] keeps the per-node cost to one
//! relaxed atomic increment and two predictable branches, polling the clock
//! and the cancel flag only every [`SearchBudget::check_interval`] nodes.
//! Coarse-grained algorithms (Mondrian splits, cluster growth), whose units
//! cost milliseconds each, use [`BudgetState::admit_coarse`] and poll every
//! time. The node budget itself is enforced exactly on every admission —
//! `max_nodes = N` admits exactly `N` units, even across threads.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag. Clones share the underlying flag, so one
/// token can be handed to a signal handler (or another thread) while its
/// clone rides inside a [`SearchBudget`]; `cancel()` trips every clone.
///
/// Tokens form a tree: [`CancelToken::child`] derives a token with its own
/// flag that *also* observes every ancestor. A daemon hands each request a
/// child of its shutdown token — cancelling one request (client disconnect,
/// per-request deadline) trips only that child, while cancelling the parent
/// (SIGINT) trips every outstanding request at once. The one-shot CLI keeps
/// using a single root token, whose behaviour is unchanged.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A fresh, untripped root token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token. Idempotent, safe from any thread, and — being a
    /// single atomic store — safe to call from a signal handler. Ancestors
    /// are left untouched; descendants observe the trip through their
    /// parent chain.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token — or any ancestor it was derived from — has been
    /// tripped.
    pub fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match &self.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }

    /// Derives a child token: cancelling the child does not affect this
    /// token (or any sibling child), but cancelling this token — or any of
    /// its ancestors — is observed by the child. Clones of the child share
    /// the child's flag, as usual.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            parent: Some(Arc::new(self.clone())),
        }
    }
}

/// How a search ended — the verdict every search outcome carries.
///
/// Anything other than [`Termination::Completed`] means the outcome holds
/// *best-so-far* results: still internally consistent, but possibly missing
/// answers a full run would have found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The search ran to its natural end; results are exhaustive for the
    /// algorithm's contract.
    Completed,
    /// The wall-clock deadline passed mid-search.
    DeadlineExceeded,
    /// The node budget was spent mid-search.
    NodeBudgetExhausted,
    /// The cancel token was tripped mid-search.
    Cancelled,
}

impl Termination {
    /// Whether the search ran to completion.
    pub fn is_complete(self) -> bool {
        self == Termination::Completed
    }

    /// Stable machine-readable name (the `reason` field of a report's
    /// `termination` section).
    pub fn as_str(self) -> &'static str {
        match self {
            Termination::Completed => "completed",
            Termination::DeadlineExceeded => "deadline_exceeded",
            Termination::NodeBudgetExhausted => "node_budget_exhausted",
            Termination::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Limits for one search: an absolute wall-clock deadline, a node budget,
/// and/or a cancel token. The default ([`SearchBudget::unlimited`]) imposes
/// nothing, and every search accepts it at negligible cost (see the module
/// docs and BENCH_3.json).
///
/// The deadline is an absolute [`Instant`] so one budget can bound a whole
/// pipeline (load → search → write): compute `Instant::now() + timeout`
/// once, and every stage measures against the same wall.
#[derive(Debug, Clone, Default)]
pub struct SearchBudget {
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Maximum number of work units (lattice node checks, subset frequency
    /// sets, Mondrian split attempts, cluster-growth steps) to admit.
    pub max_nodes: Option<u64>,
    /// Cooperative cancellation flag.
    pub cancel: Option<CancelToken>,
    /// Poll the clock and cancel flag every this many admissions on the
    /// high-rate path; `0` (the `Default`) means
    /// [`SearchBudget::DEFAULT_CHECK_INTERVAL`].
    pub check_interval: u32,
}

impl SearchBudget {
    /// Default high-rate polling interval, in nodes.
    pub const DEFAULT_CHECK_INTERVAL: u32 = 64;

    /// A budget with no limits at all.
    pub fn unlimited() -> SearchBudget {
        SearchBudget::default()
    }

    /// Whether this budget can ever trip a search.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_nodes.is_none() && self.cancel.is_none()
    }

    /// Sets the deadline to `timeout` from now.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> SearchBudget {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets an absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> SearchBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the number of admitted work units.
    #[must_use]
    pub fn with_max_nodes(mut self, max_nodes: u64) -> SearchBudget {
        self.max_nodes = Some(max_nodes);
        self
    }

    /// Attaches a cancel token (a clone; the caller keeps theirs to trip).
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> SearchBudget {
        self.cancel = Some(token);
        self
    }

    /// Overrides the high-rate polling interval.
    #[must_use]
    pub fn with_check_interval(mut self, interval: u32) -> SearchBudget {
        self.check_interval = interval;
        self
    }

    /// Arms the budget for one search run. The state is `Sync`: a parallel
    /// scan shares one `BudgetState` across workers so the node budget is
    /// global, and one worker tripping stops the others at their next
    /// admission.
    pub fn start(&self) -> BudgetState {
        let interval = match self.check_interval {
            0 => Self::DEFAULT_CHECK_INTERVAL,
            n => n,
        };
        BudgetState {
            deadline: self.deadline,
            max_nodes: self.max_nodes.unwrap_or(u64::MAX),
            cancel: self.cancel.clone(),
            interval: u64::from(interval),
            admitted: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
        }
    }
}

const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_NODES: u8 = 2;
const TRIP_CANCELLED: u8 = 3;

fn trip_cause(value: u8) -> Option<Termination> {
    match value {
        TRIP_DEADLINE => Some(Termination::DeadlineExceeded),
        TRIP_NODES => Some(Termination::NodeBudgetExhausted),
        TRIP_CANCELLED => Some(Termination::Cancelled),
        _ => None,
    }
}

/// One search run's armed budget: shared (it is `Sync`) by every worker of
/// that run. Once any limit trips, the cause is latched and every later
/// admission fails with the same [`Termination`].
#[derive(Debug)]
pub struct BudgetState {
    deadline: Option<Instant>,
    max_nodes: u64,
    cancel: Option<CancelToken>,
    interval: u64,
    admitted: AtomicU64,
    tripped: AtomicU8,
}

impl BudgetState {
    /// Admits one high-rate work unit (a kernel node check). Returns
    /// `Err(cause)` when the search must stop *without* doing the unit.
    ///
    /// The node budget is exact: with `max_nodes = N`, exactly `N`
    /// admissions succeed (across all threads). Deadline and cancellation
    /// are polled every [`SearchBudget::check_interval`] admissions, so a
    /// trip is noticed within one interval.
    pub fn admit(&self) -> Result<(), Termination> {
        if let Some(cause) = trip_cause(self.tripped.load(Ordering::Relaxed)) {
            return Err(cause);
        }
        let n = self.admitted.fetch_add(1, Ordering::Relaxed);
        if n >= self.max_nodes {
            return Err(self.trip(TRIP_NODES));
        }
        if n.is_multiple_of(self.interval) {
            self.poll()?;
        }
        Ok(())
    }

    /// Admits one coarse work unit (a Mondrian split attempt, one
    /// cluster-growth step): like [`Self::admit`] but polls the clock and
    /// cancel flag on every call — coarse units cost enough that the poll
    /// is free and promptness matters more than throughput.
    pub fn admit_coarse(&self) -> Result<(), Termination> {
        if let Some(cause) = trip_cause(self.tripped.load(Ordering::Relaxed)) {
            return Err(cause);
        }
        let n = self.admitted.fetch_add(1, Ordering::Relaxed);
        if n >= self.max_nodes {
            return Err(self.trip(TRIP_NODES));
        }
        self.poll()
    }

    /// Polls deadline and cancellation without admitting any work — for
    /// checkpoints between phases (e.g. before materializing a winner).
    pub fn checkpoint(&self) -> Result<(), Termination> {
        if let Some(cause) = trip_cause(self.tripped.load(Ordering::Relaxed)) {
            return Err(cause);
        }
        self.poll()
    }

    /// How the run *has* ended so far: [`Termination::Completed`] unless a
    /// limit tripped. Call after the search loop to label the outcome.
    pub fn termination(&self) -> Termination {
        trip_cause(self.tripped.load(Ordering::Acquire)).unwrap_or(Termination::Completed)
    }

    /// Work units admitted so far (clamped to `max_nodes`: the raw counter
    /// also counts refused admissions, which never did any work).
    pub fn nodes_admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed).min(self.max_nodes)
    }

    fn poll(&self) -> Result<(), Termination> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(self.trip(TRIP_CANCELLED));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.trip(TRIP_DEADLINE));
            }
        }
        Ok(())
    }

    /// Latches `cause` (first cause wins) and returns the winning cause.
    fn trip(&self, cause: u8) -> Termination {
        match self
            .tripped
            .compare_exchange(TRIP_NONE, cause, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => trip_cause(cause).expect("trip called with a real cause"),
            Err(previous) => trip_cause(previous).expect("tripped is never reset"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_admits_everything() {
        let state = SearchBudget::unlimited().start();
        for _ in 0..10_000 {
            assert!(state.admit().is_ok());
        }
        assert_eq!(state.termination(), Termination::Completed);
        assert_eq!(state.nodes_admitted(), 10_000);
    }

    #[test]
    fn node_budget_is_exact() {
        let state = SearchBudget::unlimited().with_max_nodes(5).start();
        for _ in 0..5 {
            assert!(state.admit().is_ok());
        }
        assert_eq!(state.admit(), Err(Termination::NodeBudgetExhausted));
        assert_eq!(state.admit(), Err(Termination::NodeBudgetExhausted));
        assert_eq!(state.termination(), Termination::NodeBudgetExhausted);
        assert_eq!(state.nodes_admitted(), 5);
    }

    #[test]
    fn node_budget_is_exact_across_threads() {
        let state = SearchBudget::unlimited().with_max_nodes(100).start();
        let admitted = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    while state.admit().is_ok() {
                        admitted.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(admitted.load(Ordering::Relaxed), 100);
        assert_eq!(state.termination(), Termination::NodeBudgetExhausted);
    }

    #[test]
    fn cancellation_is_noticed_within_one_interval() {
        let token = CancelToken::new();
        let state = SearchBudget::unlimited()
            .with_cancel(token.clone())
            .with_check_interval(8)
            .start();
        assert!(state.admit().is_ok());
        token.cancel();
        let mut admitted_after_cancel = 0;
        while state.admit().is_ok() {
            admitted_after_cancel += 1;
            assert!(admitted_after_cancel <= 8, "poll interval not honored");
        }
        assert_eq!(state.termination(), Termination::Cancelled);
    }

    #[test]
    fn coarse_admission_notices_cancellation_immediately() {
        let token = CancelToken::new();
        let state = SearchBudget::unlimited().with_cancel(token.clone()).start();
        assert!(state.admit_coarse().is_ok());
        token.cancel();
        assert_eq!(state.admit_coarse(), Err(Termination::Cancelled));
    }

    #[test]
    fn elapsed_deadline_trips() {
        let state = SearchBudget::unlimited()
            .with_deadline(Instant::now())
            .start();
        assert_eq!(state.checkpoint(), Err(Termination::DeadlineExceeded));
        assert_eq!(state.termination(), Termination::DeadlineExceeded);
    }

    #[test]
    fn first_cause_is_latched() {
        let token = CancelToken::new();
        token.cancel();
        let state = SearchBudget::unlimited()
            .with_cancel(token)
            .with_max_nodes(0)
            .start();
        // Node budget of zero trips on the very first admission, before the
        // interval poll would see the cancellation.
        assert_eq!(state.admit(), Err(Termination::NodeBudgetExhausted));
        assert_eq!(state.termination(), Termination::NodeBudgetExhausted);
        assert_eq!(state.checkpoint(), Err(Termination::NodeBudgetExhausted));
    }

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn child_cancellation_is_isolated_from_parent_and_siblings() {
        // The daemon regression: one request's cancellation (a child) must
        // not trip the server token (parent) or any other request (sibling).
        let server = CancelToken::new();
        let request_a = server.child();
        let request_b = server.child();
        request_a.cancel();
        assert!(request_a.is_cancelled());
        assert!(!server.is_cancelled(), "child trip leaked to parent");
        assert!(!request_b.is_cancelled(), "child trip leaked to sibling");
    }

    #[test]
    fn parent_cancellation_fans_out_to_all_children() {
        let server = CancelToken::new();
        let request_a = server.child();
        let request_b = server.child();
        let grandchild = request_a.child();
        server.cancel();
        assert!(request_a.is_cancelled());
        assert!(request_b.is_cancelled());
        assert!(grandchild.is_cancelled(), "trip crosses generations");
    }

    #[test]
    fn child_token_trips_a_budget_like_a_root_token() {
        let server = CancelToken::new();
        let request = server.child();
        let state = SearchBudget::unlimited().with_cancel(request).start();
        assert!(state.admit_coarse().is_ok());
        server.cancel();
        assert_eq!(state.admit_coarse(), Err(Termination::Cancelled));
        assert_eq!(state.termination(), Termination::Cancelled);
    }

    #[test]
    fn termination_names_are_stable() {
        assert_eq!(Termination::Completed.as_str(), "completed");
        assert_eq!(Termination::DeadlineExceeded.as_str(), "deadline_exceeded");
        assert_eq!(
            Termination::NodeBudgetExhausted.as_str(),
            "node_budget_exhausted"
        );
        assert_eq!(Termination::Cancelled.as_str(), "cancelled");
        assert!(Termination::Completed.is_complete());
        assert!(!Termination::Cancelled.is_complete());
        assert_eq!(Termination::Cancelled.to_string(), "cancelled");
    }

    #[test]
    fn state_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<BudgetState>();
        assert_sync::<CancelToken>();
    }
}
