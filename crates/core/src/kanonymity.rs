//! k-anonymity (paper Definition 1).
//!
//! > *The k-anonymity property for a masked microdata (MM) is satisfied if
//! > every combination of key attribute values in MM occurs k or more times.*

use psens_microdata::{ChunkedTable, GroupBy, Table};
use serde::Serialize;

/// Result of checking k-anonymity for one table and key-attribute set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct KAnonymityReport {
    /// The `k` that was checked.
    pub k: u32,
    /// Number of distinct key-attribute combinations (QI-groups).
    pub n_groups: usize,
    /// Size of the smallest QI-group (`None` for an empty table).
    pub min_group_size: Option<u32>,
    /// Number of tuples living in groups smaller than `k` — the per-node
    /// annotation of the paper's Figure 3, compared against the suppression
    /// threshold TS.
    pub violating_tuples: usize,
}

impl KAnonymityReport {
    /// True when the table satisfies k-anonymity (no violating tuples).
    pub fn satisfied(&self) -> bool {
        self.violating_tuples == 0
    }

    /// True when suppressing at most `ts` tuples would make the table
    /// k-anonymous.
    pub fn satisfiable_with_suppression(&self, ts: usize) -> bool {
        self.violating_tuples <= ts
    }
}

/// Checks Definition 1 for `table` grouped by the attributes at `keys`.
///
/// An empty table is vacuously k-anonymous (every — i.e. no — combination
/// occurs at least `k` times).
pub fn check_k_anonymity(table: &Table, keys: &[usize], k: u32) -> KAnonymityReport {
    let groups = GroupBy::compute(table, keys);
    report_from_groups(&groups, k)
}

/// Same as [`check_k_anonymity`] but reuses an existing grouping.
pub fn report_from_groups(groups: &GroupBy, k: u32) -> KAnonymityReport {
    KAnonymityReport {
        k,
        n_groups: groups.n_groups(),
        min_group_size: groups.min_group_size(),
        violating_tuples: groups.rows_in_small_groups(k),
    }
}

/// Convenience wrapper: does `table` satisfy k-anonymity over `keys`?
pub fn is_k_anonymous(table: &Table, keys: &[usize], k: u32) -> bool {
    check_k_anonymity(table, keys, k).satisfied()
}

/// Maximum `k` for which the table is k-anonymous: the minimum QI-group size
/// (`0` for an empty table, by convention).
pub fn max_k(table: &Table, keys: &[usize]) -> u32 {
    GroupBy::compute(table, keys).min_group_size().unwrap_or(0)
}

/// [`max_k`] over a [`ChunkedTable`], chunk-parallel on `threads` workers.
/// Equal to the serial value on `chunked.to_table()`.
pub fn max_k_chunked(chunked: &ChunkedTable, keys: &[usize], threads: usize) -> u32 {
    GroupBy::compute_chunked(chunked, keys, threads)
        .min_group_size()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    /// Paper Table 1: patient masked microdata satisfying 2-anonymity.
    fn table1() -> Table {
        let schema = Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_key("ZipCode"),
            Attribute::cat_key("Sex"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["50", "43102", "M", "Colon Cancer"],
                &["30", "43102", "F", "Breast Cancer"],
                &["30", "43102", "F", "HIV"],
                &["20", "43102", "M", "Diabetes"],
                &["20", "43102", "M", "Diabetes"],
                &["50", "43102", "M", "Heart Disease"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn table1_satisfies_2_anonymity() {
        let t = table1();
        let keys = t.schema().key_indices();
        let report = check_k_anonymity(&t, &keys, 2);
        assert!(report.satisfied());
        assert_eq!(report.n_groups, 3);
        assert_eq!(report.min_group_size, Some(2));
        assert!(is_k_anonymous(&t, &keys, 2));
        assert!(is_k_anonymous(&t, &keys, 1));
    }

    #[test]
    fn table1_fails_3_anonymity() {
        let t = table1();
        let keys = t.schema().key_indices();
        let report = check_k_anonymity(&t, &keys, 3);
        assert!(!report.satisfied());
        assert_eq!(report.violating_tuples, 6);
        assert!(report.satisfiable_with_suppression(6));
        assert!(!report.satisfiable_with_suppression(5));
    }

    #[test]
    fn max_k_is_min_group_size() {
        let t = table1();
        let keys = t.schema().key_indices();
        assert_eq!(max_k(&t, &keys), 2);
    }

    #[test]
    fn empty_table_is_vacuously_anonymous() {
        let t = table1().filter(|_| false);
        let keys = t.schema().key_indices();
        let report = check_k_anonymity(&t, &keys, 5);
        assert!(report.satisfied());
        assert_eq!(report.min_group_size, None);
        assert_eq!(max_k(&t, &keys), 0);
    }

    #[test]
    fn probability_interpretation() {
        // "the probability to identify correctly an individual is at most
        // 1/k": the smallest group bounds the linkage probability.
        let t = table1();
        let keys = t.schema().key_indices();
        let k = max_k(&t, &keys);
        assert!(1.0 / f64::from(k) <= 0.5);
    }
}
