//! The record-linkage / homogeneity attack (paper Section 2, Tables 1–2).
//!
//! An intruder who holds external information (names plus key-attribute
//! values, like the paper's Table 2) and knows how the release was
//! generalized can link individuals to QI-groups. k-anonymity caps the
//! *identity* disclosure probability at `1/k`, but whenever a group is
//! homogeneous in a confidential attribute the intruder still learns that
//! attribute — the paper's Sam/Erich Diabetes example. This module makes the
//! attack executable so the gap is demonstrable.

use psens_hierarchy::{Node, QiSpace};
use psens_microdata::{Table, Value};
use serde::Serialize;
use std::collections::HashMap;

/// What the intruder learns about one external individual.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LinkageFinding {
    /// The individual's identifier value from the external table.
    pub individual: Value,
    /// Masked rows whose generalized key matches the individual's.
    pub candidate_rows: Vec<usize>,
    /// True when exactly one masked row matches: full re-identification.
    pub identity_disclosed: bool,
    /// Confidential attributes whose value is constant across all candidate
    /// rows — learned with certainty despite k-anonymity.
    pub learned: Vec<(String, Value)>,
}

/// Runs the linkage attack.
///
/// - `masked` is the released microdata, produced by applying `node` of
///   `qi`'s lattice (the paper assumes the intruder knows the recoding, e.g.
///   "the Age attribute was generalized to multiples of 10").
/// - `external` holds the intruder's background knowledge: an identifier
///   attribute named `identifier` plus raw values for every QI attribute.
///
/// Returns one finding per external individual that matches at least one
/// masked row.
pub fn linkage_attack(
    masked: &Table,
    qi: &QiSpace,
    node: &Node,
    external: &Table,
    identifier: &str,
) -> Result<Vec<LinkageFinding>, psens_hierarchy::Error> {
    let qi_names = qi.names();
    let masked_qi_cols: Vec<usize> = qi_names
        .iter()
        .map(|n| masked.schema().index_of(n))
        .collect::<Result<_, _>>()?;
    let external_qi_cols: Vec<usize> = qi_names
        .iter()
        .map(|n| external.schema().index_of(n))
        .collect::<Result<_, _>>()?;
    let id_col = external.schema().index_of(identifier)?;
    let confidential = masked.schema().confidential_indices();

    // Index masked rows by their (already generalized) key.
    let mut by_key: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for row in 0..masked.n_rows() {
        let key: Vec<Value> = masked_qi_cols
            .iter()
            .map(|&c| masked.value(row, c))
            .collect();
        by_key.entry(key).or_default().push(row);
    }

    let mut findings = Vec::new();
    for row in 0..external.n_rows() {
        // Generalize the intruder's raw knowledge with the public recoding.
        let mut key = Vec::with_capacity(qi_names.len());
        for (i, &col) in external_qi_cols.iter().enumerate() {
            let raw = external.value(row, col);
            let level = node.levels()[i] as usize;
            key.push(qi.hierarchy(i).generalize(&raw, level)?);
        }
        let Some(candidates) = by_key.get(&key) else {
            continue;
        };
        let mut learned = Vec::new();
        for &attr in &confidential {
            let first = masked.value(candidates[0], attr);
            if candidates.iter().all(|&r| masked.value(r, attr) == first) {
                learned.push((masked.schema().attribute(attr).name().to_owned(), first));
            }
        }
        findings.push(LinkageFinding {
            individual: external.value(row, id_col),
            identity_disclosed: candidates.len() == 1,
            candidate_rows: candidates.clone(),
            learned,
        });
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_hierarchy::builders::flat_hierarchy;
    use psens_hierarchy::{Hierarchy, IntHierarchy, IntLevel};
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    /// Paper Table 1: the masked release (Age in multiples of 10).
    fn masked() -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_key("Age"),
            Attribute::cat_key("ZipCode"),
            Attribute::cat_key("Sex"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["50-59", "43102", "M", "Colon Cancer"],
                &["30-39", "43102", "F", "Breast Cancer"],
                &["30-39", "43102", "F", "HIV"],
                &["20-29", "43102", "M", "Diabetes"],
                &["20-29", "43102", "M", "Diabetes"],
                &["50-59", "43102", "M", "Heart Disease"],
            ],
        )
        .unwrap()
    }

    /// Paper Table 2: the intruder's external information.
    fn external() -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_identifier("Name"),
            Attribute::int_key("Age"),
            Attribute::cat_key("Sex"),
            Attribute::cat_key("ZipCode"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["Sam", "29", "M", "43102"],
                &["Gloria", "38", "F", "43102"],
                &["Adam", "51", "M", "43102"],
                &["Eric", "29", "M", "43102"],
                &["Tanisha", "34", "F", "43102"],
                &["Don", "51", "M", "43102"],
            ],
        )
        .unwrap()
    }

    fn qi() -> QiSpace {
        let age = Hierarchy::Int(
            IntHierarchy::new(vec![IntLevel::Ranges {
                cuts: vec![30, 40, 50, 60],
                labels: vec![
                    "20-29".into(),
                    "30-39".into(),
                    "40-49".into(),
                    "50-59".into(),
                    "60+".into(),
                ],
            }])
            .unwrap(),
        );
        let zip = flat_hierarchy(vec!["43102"]).unwrap();
        let sex = flat_hierarchy(vec!["M", "F"]).unwrap();
        QiSpace::new(vec![
            ("Age".into(), age),
            ("ZipCode".into(), zip),
            ("Sex".into(), sex),
        ])
        .unwrap()
    }

    #[test]
    fn sam_and_eric_learn_nothing_about_identity_but_lose_their_diagnosis() {
        // Age generalized to level 1, ZipCode and Sex released raw (level 0).
        let findings =
            linkage_attack(&masked(), &qi(), &Node(vec![1, 0, 0]), &external(), "Name").unwrap();
        assert_eq!(findings.len(), 6);
        let sam = findings
            .iter()
            .find(|f| f.individual == Value::Text("Sam".into()))
            .unwrap();
        // Two candidates: identity protected by 2-anonymity...
        assert_eq!(sam.candidate_rows.len(), 2);
        assert!(!sam.identity_disclosed);
        // ...but the group is homogeneous: Diabetes is disclosed.
        assert_eq!(
            sam.learned,
            vec![("Illness".to_owned(), Value::Text("Diabetes".into()))]
        );
        let eric = findings
            .iter()
            .find(|f| f.individual == Value::Text("Eric".into()))
            .unwrap();
        assert_eq!(eric.learned.len(), 1);
    }

    #[test]
    fn heterogeneous_groups_leak_nothing() {
        let findings =
            linkage_attack(&masked(), &qi(), &Node(vec![1, 0, 0]), &external(), "Name").unwrap();
        for name in ["Adam", "Don", "Gloria", "Tanisha"] {
            let f = findings
                .iter()
                .find(|f| f.individual == Value::Text(name.into()))
                .unwrap();
            assert!(!f.identity_disclosed, "{name}");
            assert!(f.learned.is_empty(), "{name} should learn nothing");
        }
    }

    #[test]
    fn unmatched_individuals_are_skipped() {
        let schema = external().schema().clone();
        let strangers = table_from_str_rows(schema, &[&["Zoe", "75", "F", "43102"]]).unwrap();
        let findings =
            linkage_attack(&masked(), &qi(), &Node(vec![1, 0, 0]), &strangers, "Name").unwrap();
        assert!(findings.is_empty());
    }

    #[test]
    fn missing_attributes_error() {
        let bad = table_from_str_rows(
            Schema::new(vec![Attribute::cat_identifier("Name")]).unwrap(),
            &[&["Sam"]],
        )
        .unwrap();
        assert!(linkage_attack(&masked(), &qi(), &Node(vec![1, 0, 0]), &bad, "Name").is_err());
    }
}
