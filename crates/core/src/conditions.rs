//! The two necessary conditions for p-sensitive k-anonymity
//! (paper Conditions 1 and 2, Tables 5 and 6).
//!
//! Both conditions depend only on the confidential attributes, which
//! full-domain generalization never touches, so they can be computed once on
//! the initial microdata and reused across every candidate masking (Theorems
//! 1 and 2 extend the reuse to suppression).

use psens_microdata::{ChunkedTable, FrequencySet, Table};
use serde::Serialize;

/// Frequency statistics of one confidential attribute `S_j`:
/// `s_j`, the descending frequencies `f_i^j`, and their cumulative sums
/// `cf_i^j` (one row of the paper's Tables 5 and 6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AttributeFrequencyStats {
    /// Index of the attribute in the table's schema.
    pub attribute: usize,
    /// Attribute name.
    pub name: String,
    /// Number of distinct values (`s_j`).
    pub s: usize,
    /// Descending ordered frequencies (`f_1^j >= f_2^j >= ...`).
    pub descending: Vec<usize>,
    /// Cumulative descending frequencies (`cf_i^j = f_1^j + ... + f_i^j`).
    pub cumulative: Vec<usize>,
}

/// Bound on the number of QI-groups returned by Condition 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MaxGroups {
    /// `p` exceeds Condition 1's `maxP`: no masking can satisfy it.
    Unsatisfiable,
    /// No constraint (`p <= 1`, or there are no confidential attributes).
    Unbounded,
    /// At most this many distinct key-attribute combinations are allowed.
    Bounded(usize),
}

impl MaxGroups {
    /// True when a masking with `n_groups` QI-groups passes this bound.
    pub fn admits(&self, n_groups: usize) -> bool {
        match self {
            MaxGroups::Unsatisfiable => false,
            MaxGroups::Unbounded => true,
            MaxGroups::Bounded(limit) => n_groups <= *limit,
        }
    }
}

/// Frequency statistics of all confidential attributes, plus the combined
/// `cf_i = max_j cf_i^j` sequence (last row of the paper's Table 6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ConfidentialStats {
    /// Number of tuples (`n`).
    pub n: usize,
    /// Per-attribute statistics, in the order the attributes were given.
    pub per_attribute: Vec<AttributeFrequencyStats>,
    /// `cf_i` for `i = 1..=maxP` (`cf[i-1]` is `cf_i`).
    pub cf: Vec<usize>,
}

impl AttributeFrequencyStats {
    /// Builds one attribute's statistics from its descending-ordered
    /// frequencies. Every other field (`s`, `cumulative`) is a pure function
    /// of that sequence, so any producer that reproduces the descending
    /// counts byte-for-byte — `FrequencySet` or the incremental
    /// hash-multiset tracker — yields `==` statistics by construction.
    pub fn from_descending(
        attribute: usize,
        name: String,
        descending: Vec<usize>,
    ) -> AttributeFrequencyStats {
        let cumulative = descending
            .iter()
            .scan(0usize, |acc, &f| {
                *acc += f;
                Some(*acc)
            })
            .collect();
        AttributeFrequencyStats {
            attribute,
            name,
            s: descending.len(),
            descending,
            cumulative,
        }
    }
}

impl ConfidentialStats {
    /// Assembles the combined statistics from per-attribute rows: `cf_i =
    /// max_j cf_i^j` for `i = 1..=maxP`. The single seam every computation
    /// path (serial, chunk-parallel, incremental) funnels through.
    pub fn assemble(n: usize, per_attribute: Vec<AttributeFrequencyStats>) -> ConfidentialStats {
        let max_p = per_attribute.iter().map(|a| a.s).min().unwrap_or(0);
        let cf = (0..max_p)
            .map(|i| {
                per_attribute
                    .iter()
                    .map(|a| a.cumulative[i])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        ConfidentialStats {
            n,
            per_attribute,
            cf,
        }
    }

    /// Computes the statistics of `table`'s attributes at `confidential`.
    pub fn compute(table: &Table, confidential: &[usize]) -> ConfidentialStats {
        let per_attribute = confidential
            .iter()
            .map(|&attr| {
                let fs = FrequencySet::of(table, &[attr]);
                AttributeFrequencyStats::from_descending(
                    attr,
                    table.schema().attribute(attr).name().to_owned(),
                    fs.descending_counts(),
                )
            })
            .collect();
        ConfidentialStats::assemble(table.n_rows(), per_attribute)
    }

    /// [`ConfidentialStats::compute`] over a [`ChunkedTable`], with the
    /// per-attribute frequency sets computed chunk-parallel on `threads`
    /// workers. Equal (`==`) to the serial statistics of the materialized
    /// table: the chunked grouping is byte-identical, and `s`/`descending`/
    /// `cumulative` depend only on the multiset of counts.
    pub fn compute_chunked(
        chunked: &ChunkedTable,
        confidential: &[usize],
        threads: usize,
    ) -> ConfidentialStats {
        let per_attribute = confidential
            .iter()
            .map(|&attr| {
                let fs = FrequencySet::of_chunked(chunked, &[attr], threads);
                AttributeFrequencyStats::from_descending(
                    attr,
                    chunked.schema().attribute(attr).name().to_owned(),
                    fs.descending_counts(),
                )
            })
            .collect();
        ConfidentialStats::assemble(chunked.n_rows(), per_attribute)
    }

    /// **Condition 1**: the largest `p` any masking of this microdata can
    /// satisfy — `maxP = min_j s_j`.
    ///
    /// With no confidential attributes the sensitivity requirement is vacuous
    /// and `usize::MAX` is returned.
    pub fn max_p(&self) -> usize {
        self.per_attribute
            .iter()
            .map(|a| a.s)
            .min()
            .unwrap_or(usize::MAX)
    }

    /// True when Condition 1 admits `p`.
    pub fn condition1(&self, p: u32) -> bool {
        (p as usize) <= self.max_p()
    }

    /// **Condition 2**: the maximum allowed number of key-attribute value
    /// combinations, `maxGroups = min_{i=1..p-1} floor((n - cf_{p-i}) / i)`.
    ///
    /// Rationale (paper Example 1): to give every group `p` distinct values
    /// of attribute `S_j`, the tuples *outside* the `p - i` most frequent
    /// values must contribute at least `i` tuples to every group.
    pub fn max_groups(&self, p: u32) -> MaxGroups {
        if self.per_attribute.is_empty() || p <= 1 {
            return MaxGroups::Unbounded;
        }
        let p = p as usize;
        if p > self.max_p() {
            return MaxGroups::Unsatisfiable;
        }
        let bound = (1..p)
            .map(|i| (self.n - self.cf[p - i - 1]) / i)
            .min()
            .expect("p >= 2 yields at least one term");
        MaxGroups::Bounded(bound)
    }

    /// True when Condition 2 admits a masking with `n_groups` QI-groups at
    /// sensitivity `p`.
    pub fn condition2(&self, p: u32, n_groups: usize) -> bool {
        self.max_groups(p).admits(n_groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{Attribute, Schema, TableBuilder, Value};

    /// Builds the paper's Example 1: 1,000 tuples, three confidential
    /// attributes with the exact frequencies of Table 5. Key attributes are
    /// irrelevant to the conditions, so a single constant key is used.
    fn example1() -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_key("K1"),
            Attribute::cat_confidential("S1"),
            Attribute::cat_confidential("S2"),
            Attribute::cat_confidential("S3"),
        ])
        .unwrap();
        let f1: &[usize] = &[300, 300, 200, 100, 100];
        let f2: &[usize] = &[500, 300, 100, 40, 35, 25];
        let f3: &[usize] = &[700, 200, 50, 10, 10, 10, 10, 5, 3, 2];
        let expand = |freqs: &[usize]| -> Vec<String> {
            freqs
                .iter()
                .enumerate()
                .flat_map(|(v, &count)| std::iter::repeat_n(format!("v{v}"), count))
                .collect()
        };
        let (c1, c2, c3) = (expand(f1), expand(f2), expand(f3));
        let mut builder = TableBuilder::new(schema);
        for i in 0..1000 {
            builder
                .push_row(vec![
                    Value::Text("k".into()),
                    Value::Text(c1[i].clone()),
                    Value::Text(c2[i].clone()),
                    Value::Text(c3[i].clone()),
                ])
                .unwrap();
        }
        builder.finish()
    }

    #[test]
    fn table5_frequencies_match() {
        let t = example1();
        let stats = ConfidentialStats::compute(&t, &[1, 2, 3]);
        assert_eq!(stats.n, 1000);
        assert_eq!(stats.per_attribute[0].s, 5);
        assert_eq!(stats.per_attribute[1].s, 6);
        assert_eq!(stats.per_attribute[2].s, 10);
        assert_eq!(
            stats.per_attribute[0].descending,
            vec![300, 300, 200, 100, 100]
        );
        assert_eq!(
            stats.per_attribute[1].descending,
            vec![500, 300, 100, 40, 35, 25]
        );
        assert_eq!(
            stats.per_attribute[2].descending,
            vec![700, 200, 50, 10, 10, 10, 10, 5, 3, 2]
        );
    }

    #[test]
    fn table6_cumulative_match() {
        let t = example1();
        let stats = ConfidentialStats::compute(&t, &[1, 2, 3]);
        assert_eq!(
            stats.per_attribute[0].cumulative,
            vec![300, 600, 800, 900, 1000]
        );
        assert_eq!(
            stats.per_attribute[1].cumulative,
            vec![500, 800, 900, 940, 975, 1000]
        );
        assert_eq!(
            stats.per_attribute[2].cumulative,
            vec![700, 900, 950, 960, 970, 980, 990, 995, 998, 1000]
        );
        // The combined row: cf_i = max_j cf_i^j for i = 1..=maxP = 5.
        assert_eq!(stats.cf, vec![700, 900, 950, 960, 1000]);
    }

    #[test]
    fn condition1_max_p() {
        let t = example1();
        let stats = ConfidentialStats::compute(&t, &[1, 2, 3]);
        assert_eq!(stats.max_p(), 5);
        assert!(stats.condition1(5));
        assert!(!stats.condition1(6));
    }

    #[test]
    fn condition2_matches_example1_walkthrough() {
        let t = example1();
        let stats = ConfidentialStats::compute(&t, &[1, 2, 3]);
        // "For p = 2 there are at most 300 groups allowed."
        assert_eq!(stats.max_groups(2), MaxGroups::Bounded(300));
        // "When p = 3, the maximum allowed number of groups is 100."
        assert_eq!(stats.max_groups(3), MaxGroups::Bounded(100));
        // "when p = 4 the number of groups is at most 50."
        assert_eq!(stats.max_groups(4), MaxGroups::Bounded(50));
        // "Therefore the maximum number of groups is only 25." (p = 5)
        assert_eq!(stats.max_groups(5), MaxGroups::Bounded(25));
        // p beyond maxP is unsatisfiable.
        assert_eq!(stats.max_groups(6), MaxGroups::Unsatisfiable);
        // p = 1 imposes no bound.
        assert_eq!(stats.max_groups(1), MaxGroups::Unbounded);
    }

    #[test]
    fn condition2_admission() {
        let t = example1();
        let stats = ConfidentialStats::compute(&t, &[1, 2, 3]);
        assert!(stats.condition2(5, 25));
        assert!(!stats.condition2(5, 26));
        assert!(stats.condition2(2, 300));
        assert!(!stats.condition2(2, 301));
        assert!(MaxGroups::Unbounded.admits(usize::MAX));
        assert!(!MaxGroups::Unsatisfiable.admits(0));
    }

    #[test]
    fn single_confidential_attribute_example() {
        // The motivating example before Definition 4: S with frequencies
        // 900, 90, 5, 3, 2 and n = 1000; for p = 3 at most... the text says
        // 11 or more groups can never work, i.e. the bound is at most 10.
        let schema = Schema::new(vec![
            Attribute::cat_key("K"),
            Attribute::cat_confidential("S"),
        ])
        .unwrap();
        let mut builder = TableBuilder::new(schema);
        for (v, count) in [900usize, 90, 5, 3, 2].iter().enumerate() {
            for _ in 0..*count {
                builder
                    .push_row(vec![Value::Text("k".into()), Value::Text(format!("v{v}"))])
                    .unwrap();
            }
        }
        let t = builder.finish();
        let stats = ConfidentialStats::compute(&t, &[1]);
        assert_eq!(stats.max_p(), 5);
        let MaxGroups::Bounded(bound) = stats.max_groups(3) else {
            panic!("expected a bound");
        };
        assert!(bound <= 10, "bound {bound} must forbid 11+ groups");
        // Exact value: min((1000-990)/1, (1000-900)/2) = min(10, 50) = 10.
        assert_eq!(bound, 10);
    }

    #[test]
    fn compute_chunked_equals_serial() {
        let t = example1();
        let serial = ConfidentialStats::compute(&t, &[1, 2, 3]);
        for chunk_rows in [1usize, 7, 128, 4096] {
            let chunked = ChunkedTable::from_table(&t, chunk_rows);
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    ConfidentialStats::compute_chunked(&chunked, &[1, 2, 3], threads),
                    serial,
                    "chunk_rows={chunk_rows} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn no_confidential_attributes_is_unbounded() {
        let t = example1();
        let stats = ConfidentialStats::compute(&t, &[]);
        assert_eq!(stats.max_p(), usize::MAX);
        assert_eq!(stats.max_groups(5), MaxGroups::Unbounded);
        assert!(stats.condition1(u32::MAX));
    }

    #[test]
    fn uniform_attribute_bound() {
        // A confidential attribute with 4 equally frequent values (25 each,
        // n = 100): for p = 2 the bound is n - cf_1 = 75.
        let schema = Schema::new(vec![Attribute::cat_confidential("S")]).unwrap();
        let mut builder = TableBuilder::new(schema);
        for v in 0..4 {
            for _ in 0..25 {
                builder
                    .push_row(vec![Value::Text(format!("v{v}"))])
                    .unwrap();
            }
        }
        let t = builder.finish();
        let stats = ConfidentialStats::compute(&t, &[0]);
        assert_eq!(stats.max_groups(2), MaxGroups::Bounded(75));
        assert_eq!(stats.max_groups(4), MaxGroups::Bounded(25));
    }
}
