//! The improved p-sensitive k-anonymity test (paper Algorithm 2).
//!
//! Algorithm 2 front-loads the two necessary conditions so that hopeless
//! maskings are rejected before the expensive per-group scan:
//!
//! 1. Condition 1 — `p <= maxP`;
//! 2. Condition 2 — `noGroups <= maxGroups`;
//! 3. k-anonymity;
//! 4. only then the detailed per-group, per-attribute distinct scan.
//!
//! Per Theorems 1 and 2, steps 1–2 may reuse statistics computed on the
//! *initial* microdata even when the masked microdata was produced by
//! generalization followed by suppression.

use crate::conditions::ConfidentialStats;
use psens_microdata::{GroupBy, Table};
use serde::Serialize;

/// The stage at which Algorithm 2 settled the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CheckStage {
    /// Rejected by Condition 1 (`p > maxP`) — no grouping was computed.
    Condition1,
    /// Rejected by Condition 2 (`noGroups > maxGroups`).
    Condition2,
    /// Rejected because k-anonymity fails.
    KAnonymity,
    /// Rejected by the detailed per-group scan.
    DetailedScan,
    /// All stages passed: the property holds.
    Passed,
}

/// Outcome of the improved check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ImprovedCheckOutcome {
    /// Whether p-sensitive k-anonymity holds.
    pub satisfied: bool,
    /// The stage that settled the answer.
    pub stage: CheckStage,
    /// QI-group count, when grouping was reached (`None` after a
    /// Condition 1 rejection).
    pub n_groups: Option<usize>,
}

/// Runs Algorithm 2 on `table`.
///
/// `stats` are the confidential-attribute statistics to use for the two
/// necessary conditions. Passing statistics computed from the *initial*
/// microdata is sound for any masked microdata derived by generalization and
/// suppression (Theorems 1 and 2) and is the intended, cheap usage; pass
/// `ConfidentialStats::compute(&table, confidential)` to check a standalone
/// table.
pub fn check_improved(
    table: &Table,
    keys: &[usize],
    confidential: &[usize],
    p: u32,
    k: u32,
    stats: &ConfidentialStats,
) -> ImprovedCheckOutcome {
    // Stage 1: Condition 1.
    if !stats.condition1(p) {
        return ImprovedCheckOutcome {
            satisfied: false,
            stage: CheckStage::Condition1,
            n_groups: None,
        };
    }
    // Stage 2: Condition 2 (needs only the group count).
    let groups = GroupBy::compute(table, keys);
    let n_groups = groups.n_groups();
    if !stats.condition2(p, n_groups) {
        return ImprovedCheckOutcome {
            satisfied: false,
            stage: CheckStage::Condition2,
            n_groups: Some(n_groups),
        };
    }
    // Stage 3: k-anonymity.
    if groups.rows_in_small_groups(k) > 0 {
        return ImprovedCheckOutcome {
            satisfied: false,
            stage: CheckStage::KAnonymity,
            n_groups: Some(n_groups),
        };
    }
    // Stage 4: detailed scan, with Algorithm 1's early exit.
    for &attr in confidential {
        let distinct = groups.distinct_per_group(table.column(attr));
        if distinct.iter().any(|&d| d < p) {
            return ImprovedCheckOutcome {
                satisfied: false,
                stage: CheckStage::DetailedScan,
                n_groups: Some(n_groups),
            };
        }
    }
    ImprovedCheckOutcome {
        satisfied: true,
        stage: CheckStage::Passed,
        n_groups: Some(n_groups),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psensitive::is_p_sensitive_k_anonymous;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::cat_key("Zip"),
            Attribute::cat_key("Sex"),
            Attribute::cat_confidential("Illness"),
            Attribute::cat_confidential("Pay"),
        ])
        .unwrap()
    }

    /// Two groups of 3; Illness has >=2 distinct per group, Pay varies.
    fn good_table() -> Table {
        table_from_str_rows(
            schema(),
            &[
                &["41076", "M", "Flu", "Low"],
                &["41076", "M", "HIV", "High"],
                &["41076", "M", "Flu", "High"],
                &["43102", "F", "Asthma", "Low"],
                &["43102", "F", "HIV", "High"],
                &["43102", "F", "HIV", "Low"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn passes_all_stages() {
        let t = good_table();
        let keys = [0, 1];
        let conf = [2, 3];
        let stats = ConfidentialStats::compute(&t, &conf);
        let outcome = check_improved(&t, &keys, &conf, 2, 3, &stats);
        assert!(outcome.satisfied);
        assert_eq!(outcome.stage, CheckStage::Passed);
        assert_eq!(outcome.n_groups, Some(2));
    }

    #[test]
    fn condition1_rejects_without_grouping() {
        let t = good_table();
        let conf = [2, 3];
        let stats = ConfidentialStats::compute(&t, &conf);
        // Pay has only 2 distinct values, so p = 3 violates Condition 1.
        let outcome = check_improved(&t, &[0, 1], &conf, 3, 2, &stats);
        assert!(!outcome.satisfied);
        assert_eq!(outcome.stage, CheckStage::Condition1);
        assert_eq!(outcome.n_groups, None);
    }

    #[test]
    fn condition2_rejects_on_group_count() {
        // One Pay value occurring 5 of 6 times: maxGroups for p = 2 is 1,
        // so any masking with 2 groups is rejected at stage 2.
        let t = table_from_str_rows(
            schema(),
            &[
                &["41076", "M", "Flu", "Low"],
                &["41076", "M", "HIV", "Low"],
                &["41076", "M", "Flu", "Low"],
                &["43102", "F", "Asthma", "Low"],
                &["43102", "F", "HIV", "Low"],
                &["43102", "F", "HIV", "High"],
            ],
        )
        .unwrap();
        let conf = [2, 3];
        let stats = ConfidentialStats::compute(&t, &conf);
        let outcome = check_improved(&t, &[0, 1], &conf, 2, 2, &stats);
        assert!(!outcome.satisfied);
        assert_eq!(outcome.stage, CheckStage::Condition2);
        assert_eq!(outcome.n_groups, Some(2));
    }

    #[test]
    fn k_anonymity_stage_rejects() {
        let t = good_table();
        let conf = [2, 3];
        let stats = ConfidentialStats::compute(&t, &conf);
        let outcome = check_improved(&t, &[0, 1], &conf, 2, 4, &stats);
        assert!(!outcome.satisfied);
        assert_eq!(outcome.stage, CheckStage::KAnonymity);
    }

    #[test]
    fn detailed_scan_rejects() {
        // Conditions pass globally (Pay is 2/2 Low/High so maxGroups = 2)
        // but each group is homogeneous in Pay.
        let t = table_from_str_rows(
            schema(),
            &[
                &["41076", "M", "Flu", "Low"],
                &["41076", "M", "HIV", "Low"],
                &["43102", "F", "Asthma", "High"],
                &["43102", "F", "HIV", "High"],
            ],
        )
        .unwrap();
        let conf = [2, 3];
        let stats = ConfidentialStats::compute(&t, &conf);
        let outcome = check_improved(&t, &[0, 1], &conf, 2, 2, &stats);
        assert!(!outcome.satisfied);
        assert_eq!(outcome.stage, CheckStage::DetailedScan);
    }

    #[test]
    fn agrees_with_basic_algorithm() {
        // Algorithm 2 must accept exactly what Algorithm 1 accepts.
        let tables = vec![
            good_table(),
            table_from_str_rows(
                schema(),
                &[
                    &["41076", "M", "Flu", "Low"],
                    &["41076", "M", "Flu", "Low"],
                    &["43102", "F", "HIV", "High"],
                    &["43102", "F", "HIV", "High"],
                ],
            )
            .unwrap(),
        ];
        for t in &tables {
            let conf = [2usize, 3];
            let stats = ConfidentialStats::compute(t, &conf);
            for p in 1..=3u32 {
                for k in 1..=4u32 {
                    let basic = is_p_sensitive_k_anonymous(t, &[0, 1], &conf, p, k);
                    let improved = check_improved(t, &[0, 1], &conf, p, k, &stats);
                    assert_eq!(basic, improved.satisfied, "disagreement at p={p}, k={k}");
                }
            }
        }
    }
}
