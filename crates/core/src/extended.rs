//! Extended p-sensitive k-anonymity (the follow-up model by Campan, Truta
//! et al., sketched as future work in the paper).
//!
//! Plain p-sensitivity counts *distinct values*. That is gameable: a group
//! whose illnesses are `{HIV, AIDS}` is 2-sensitive, yet both values mean
//! "serious infectious disease" — the intruder still learns the harmful
//! category. The extended model attaches a generalization hierarchy to each
//! confidential attribute and demands `p` distinct values **at a chosen
//! ancestor level**: the group must span `p` different *categories*, not
//! merely `p` spellings.
//!
//! Level 0 reduces to plain p-sensitivity, so this module strictly
//! generalizes [`crate::psensitive`].

use crate::kanonymity::report_from_groups;
use psens_hierarchy::Hierarchy;
use psens_microdata::{GroupBy, Table};
use serde::Serialize;

/// A confidential attribute paired with its hierarchy and the level at which
/// distinct categories are counted.
#[derive(Debug, Clone)]
pub struct ConfidentialSpec<'a> {
    /// Index of the confidential attribute in the table's schema.
    pub attribute: usize,
    /// The attribute's generalization hierarchy.
    pub hierarchy: &'a Hierarchy,
    /// Hierarchy level at which categories are compared (0 = raw values).
    pub level: usize,
}

/// One extended-sensitivity violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExtendedViolation {
    /// Group id within the grouping used for the check.
    pub group: u32,
    /// Size of the offending group.
    pub group_size: u32,
    /// Index of the offending confidential attribute.
    pub attribute: usize,
    /// Distinct categories the attribute spans within the group, at the
    /// requested level.
    pub distinct_categories: u32,
}

/// Result of the extended check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExtendedReport {
    /// The `p` that was checked.
    pub p: u32,
    /// The `k` that was checked.
    pub k: u32,
    /// Whether k-anonymity holds.
    pub k_anonymous: bool,
    /// All violations found.
    pub violations: Vec<ExtendedViolation>,
}

impl ExtendedReport {
    /// True when extended p-sensitive k-anonymity holds.
    pub fn satisfied(&self) -> bool {
        self.k_anonymous && self.violations.is_empty()
    }
}

/// Checks extended p-sensitive k-anonymity: k-anonymity over `keys` plus,
/// per QI-group and per confidential attribute, at least `p` distinct
/// ancestor categories at that attribute's configured level.
///
/// # Errors
/// Fails when a confidential value is outside its hierarchy's domain or a
/// level is out of range.
pub fn check_extended(
    table: &Table,
    keys: &[usize],
    confidential: &[ConfidentialSpec<'_>],
    p: u32,
    k: u32,
) -> Result<ExtendedReport, psens_hierarchy::Error> {
    let groups = GroupBy::compute(table, keys);
    let k_report = report_from_groups(&groups, k);
    let mut violations = Vec::new();
    for spec in confidential {
        // Recode the confidential column to its category level, then count
        // distinct categories per group with the standard machinery.
        let categories = spec
            .hierarchy
            .apply(table.column(spec.attribute), spec.level)?;
        let distinct = groups.distinct_per_group(&categories);
        for (g, &d) in distinct.iter().enumerate() {
            if d < p {
                violations.push(ExtendedViolation {
                    group: g as u32,
                    group_size: groups.sizes()[g],
                    attribute: spec.attribute,
                    distinct_categories: d,
                });
            }
        }
    }
    violations.sort_by_key(|v| (v.group, v.attribute));
    Ok(ExtendedReport {
        p,
        k,
        k_anonymous: k_report.satisfied(),
        violations,
    })
}

/// The largest `p` the extended property can satisfy on this table — the
/// extended analogue of Condition 1: the number of distinct categories each
/// confidential attribute has *overall* at its configured level, minimized
/// over attributes. (`usize::MAX` when `confidential` is empty.)
pub fn extended_max_p(
    table: &Table,
    confidential: &[ConfidentialSpec<'_>],
) -> Result<usize, psens_hierarchy::Error> {
    let mut max_p = usize::MAX;
    for spec in confidential {
        let categories = spec
            .hierarchy
            .apply(table.column(spec.attribute), spec.level)?;
        max_p = max_p.min(categories.n_distinct());
    }
    Ok(max_p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_hierarchy::CatHierarchy;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    /// Illness hierarchy: diseases -> categories -> *.
    fn illness_hierarchy() -> Hierarchy {
        Hierarchy::Cat(
            CatHierarchy::identity([
                "HIV",
                "AIDS",
                "Colon Cancer",
                "Breast Cancer",
                "Diabetes",
                "Flu",
            ])
            .unwrap()
            .push_level([
                ("HIV", "Infectious"),
                ("AIDS", "Infectious"),
                ("Colon Cancer", "Cancer"),
                ("Breast Cancer", "Cancer"),
                ("Diabetes", "Chronic"),
                ("Flu", "Infectious"),
            ])
            .unwrap()
            .push_top("*")
            .unwrap(),
        )
    }

    fn table(rows: &[&[&str]]) -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_key("Zip"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(schema, rows).unwrap()
    }

    #[test]
    fn hiv_aids_group_is_2_sensitive_but_not_extended_2_sensitive() {
        // The motivating case: 2 distinct values, 1 category.
        let t = table(&[
            &["A", "HIV"],
            &["A", "AIDS"],
            &["B", "Diabetes"],
            &["B", "Colon Cancer"],
        ]);
        let keys = [0usize];
        // Plain p-sensitivity is satisfied with p = 2...
        assert!(crate::psensitive::is_p_sensitive_k_anonymous(
            &t,
            &keys,
            &[1],
            2,
            2
        ));
        // ...but at category level the first group collapses to Infectious.
        let h = illness_hierarchy();
        let spec = [ConfidentialSpec {
            attribute: 1,
            hierarchy: &h,
            level: 1,
        }];
        let report = check_extended(&t, &keys, &spec, 2, 2).unwrap();
        assert!(!report.satisfied());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].distinct_categories, 1);
        assert!(report.k_anonymous);
    }

    #[test]
    fn level_zero_reduces_to_plain_p_sensitivity() {
        let t = table(&[
            &["A", "HIV"],
            &["A", "AIDS"],
            &["B", "Diabetes"],
            &["B", "Diabetes"],
        ]);
        let keys = [0usize];
        let h = illness_hierarchy();
        let spec = [ConfidentialSpec {
            attribute: 1,
            hierarchy: &h,
            level: 0,
        }];
        for p in 1..=3u32 {
            let plain = crate::psensitive::is_p_sensitive_k_anonymous(&t, &keys, &[1], p, 2);
            let extended = check_extended(&t, &keys, &spec, p, 2).unwrap().satisfied();
            assert_eq!(plain, extended, "p = {p}");
        }
    }

    #[test]
    fn category_diverse_group_passes() {
        let t = table(&[
            &["A", "HIV"],
            &["A", "Colon Cancer"],
            &["B", "Diabetes"],
            &["B", "Breast Cancer"],
        ]);
        let h = illness_hierarchy();
        let spec = [ConfidentialSpec {
            attribute: 1,
            hierarchy: &h,
            level: 1,
        }];
        let report = check_extended(&t, &[0], &spec, 2, 2).unwrap();
        assert!(report.satisfied());
    }

    #[test]
    fn extended_max_p_counts_categories() {
        let t = table(&[
            &["A", "HIV"],
            &["A", "Flu"],
            &["B", "AIDS"],
            &["B", "Breast Cancer"],
        ]);
        let h = illness_hierarchy();
        // Raw: 4 distinct values; level 1: Infectious + Cancer = 2; top: 1.
        for (level, expected) in [(0usize, 4usize), (1, 2), (2, 1)] {
            let spec = [ConfidentialSpec {
                attribute: 1,
                hierarchy: &h,
                level,
            }];
            assert_eq!(
                extended_max_p(&t, &spec).unwrap(),
                expected,
                "level {level}"
            );
        }
        assert_eq!(extended_max_p(&t, &[]).unwrap(), usize::MAX);
    }

    #[test]
    fn unknown_value_is_an_error() {
        let t = table(&[&["A", "Plague"], &["A", "HIV"]]);
        let h = illness_hierarchy();
        let spec = [ConfidentialSpec {
            attribute: 1,
            hierarchy: &h,
            level: 1,
        }];
        assert!(check_extended(&t, &[0], &spec, 2, 2).is_err());
    }

    #[test]
    fn k_failure_is_reported() {
        let t = table(&[&["A", "HIV"], &["B", "Flu"], &["B", "Diabetes"]]);
        let h = illness_hierarchy();
        let spec = [ConfidentialSpec {
            attribute: 1,
            hierarchy: &h,
            level: 1,
        }];
        let report = check_extended(&t, &[0], &spec, 1, 2).unwrap();
        assert!(!report.k_anonymous);
        assert!(!report.satisfied());
    }
}
