//! Tuple suppression (paper Section 3).
//!
//! > *After generalization is performed, we can identify the number of tuples
//! > that have a frequency of key attribute values less than k. If this
//! > number is below a defined threshold we apply suppression, and these
//! > tuples will be removed from the resulting masked microdata.*

use psens_microdata::{GroupBy, Table};

/// Result of suppressing undersized QI-groups.
#[derive(Debug, Clone)]
pub struct SuppressionResult {
    /// The table with offending tuples removed.
    pub table: Table,
    /// Number of tuples removed.
    pub removed: usize,
}

/// Removes every tuple living in a QI-group of size `< k`.
///
/// The result always satisfies k-anonymity over `keys`: removing whole
/// undersized groups leaves the remaining groups untouched.
pub fn suppress_to_k(table: &Table, keys: &[usize], k: u32) -> SuppressionResult {
    let groups = GroupBy::compute(table, keys);
    remove_small_groups(table, &groups, k)
}

/// Like [`suppress_to_k`] but refuses to remove more than `ts` tuples:
/// returns `None` when the number of violating tuples exceeds the threshold
/// (the masking at this lattice node is not acceptable). The grouping is
/// computed once and shared by the threshold test and the removal.
pub fn suppress_within_threshold(
    table: &Table,
    keys: &[usize],
    k: u32,
    ts: usize,
) -> Option<SuppressionResult> {
    let groups = GroupBy::compute(table, keys);
    let violating = groups.rows_in_small_groups(k);
    if violating > ts {
        return None;
    }
    Some(remove_small_groups(table, &groups, k))
}

/// Removes the rows of every group of size `< k`, given an already-computed
/// grouping over the key attributes.
fn remove_small_groups(table: &Table, groups: &GroupBy, k: u32) -> SuppressionResult {
    let doomed = groups.small_group_rows(k);
    if doomed.is_empty() {
        return SuppressionResult {
            table: table.clone(),
            removed: 0,
        };
    }
    let doomed_set: std::collections::HashSet<usize> = doomed.iter().copied().collect();
    let kept = table.filter(|row| !doomed_set.contains(&row));
    SuppressionResult {
        removed: doomed.len(),
        table: kept,
    }
}

/// Result of cell-level (local) suppression.
#[derive(Debug, Clone)]
pub struct LocalSuppressionResult {
    /// The table with offending key cells blanked to missing.
    pub table: Table,
    /// Number of individual cells suppressed.
    pub cells_suppressed: usize,
    /// Number of rounds the greedy loop ran.
    pub rounds: usize,
}

/// Cell-level (local) suppression: instead of deleting tuples in undersized
/// QI-groups, blank their key-attribute cells until k-anonymity holds.
///
/// The paper lists "local suppression" [19, 13] among the masking methods;
/// this greedy variant repeatedly picks, among the violating tuples, the key
/// attribute with the most distinct values (the most distinguishing one),
/// blanks it for all violating tuples, and regroups. Missing cells compare
/// equal to each other, so fully-blanked tuples pool into one group; the
/// loop always terminates because each round either reaches k-anonymity or
/// strictly reduces the remaining distinguishing cells.
///
/// Returns `None` when even blanking every key cell of every violating tuple
/// cannot reach k-anonymity (fewer than `k` violating tuples pooled
/// together) — callers should fall back to [`suppress_to_k`].
pub fn locally_suppress_to_k(
    table: &Table,
    keys: &[usize],
    k: u32,
) -> Option<LocalSuppressionResult> {
    let mut current = table.clone();
    let mut cells = 0usize;
    let mut rounds = 0usize;
    loop {
        let groups = GroupBy::compute(&current, keys);
        let violating = groups.small_group_rows(k);
        if violating.is_empty() {
            return Some(LocalSuppressionResult {
                table: current,
                cells_suppressed: cells,
                rounds,
            });
        }
        rounds += 1;
        // Pick the key attribute that still distinguishes the violating
        // tuples the most: the one with the most distinct *present* values
        // among them.
        let mut best: Option<(usize, usize)> = None; // (attr, distinct)
        for &attr in keys {
            let column = current.column(attr);
            let mut seen = std::collections::HashSet::new();
            let mut present = 0usize;
            for &row in &violating {
                let value = column.value(row);
                if !value.is_missing() {
                    present += 1;
                    seen.insert(value);
                }
            }
            if present > 0 {
                let distinct = seen.len();
                if best.is_none_or(|(_, d)| distinct > d) {
                    best = Some((attr, distinct));
                }
            }
        }
        let Some((attr, _)) = best else {
            // Every key cell of every violating tuple is already missing:
            // they form one pooled group smaller than k. Unreachable via
            // further local suppression.
            return None;
        };
        let blanked = current.column(attr).with_missing(&violating);
        current = current
            .with_column_replaced(attr, blanked)
            .expect("same kind and length");
        cells += violating.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kanonymity::is_k_anonymous;
    use psens_microdata::{table_from_str_rows, Attribute, Schema, Value};

    /// The paper's Figure 3 microdata: 10 (Sex, ZipCode) tuples.
    fn figure3() -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_key("Sex"),
            Attribute::cat_key("ZipCode"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["M", "41076"],
                &["F", "41099"],
                &["M", "41099"],
                &["M", "41076"],
                &["F", "43102"],
                &["M", "43102"],
                &["M", "43102"],
                &["F", "43103"],
                &["M", "48202"],
                &["M", "48201"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn suppressing_bottom_node_removes_everything_below_3() {
        // Figure 3 annotates <S0, Z0> with 10: all tuples violate 3-anonymity.
        let t = figure3();
        let result = suppress_to_k(&t, &[0, 1], 3);
        assert_eq!(result.removed, 10);
        assert!(result.table.is_empty());
    }

    #[test]
    fn suppression_yields_k_anonymity() {
        // Group (M, 43102) has 2 tuples; everything else is smaller. For
        // k = 2, suppression keeps exactly (M, 41076) x2 and (M, 43102) x2.
        let t = figure3();
        let result = suppress_to_k(&t, &[0, 1], 2);
        assert_eq!(result.removed, 6);
        assert_eq!(result.table.n_rows(), 4);
        assert!(is_k_anonymous(&result.table, &[0, 1], 2));
    }

    #[test]
    fn no_op_when_already_anonymous() {
        let t = figure3();
        let result = suppress_to_k(&t, &[0, 1], 1);
        assert_eq!(result.removed, 0);
        assert_eq!(result.table.n_rows(), 10);
    }

    #[test]
    fn threshold_gates_suppression() {
        let t = figure3();
        // 6 tuples violate 2-anonymity: TS = 5 refuses, TS = 6 accepts.
        assert!(suppress_within_threshold(&t, &[0, 1], 2, 5).is_none());
        let ok = suppress_within_threshold(&t, &[0, 1], 2, 6).unwrap();
        assert_eq!(ok.removed, 6);
        assert!(is_k_anonymous(&ok.table, &[0, 1], 2));
    }

    #[test]
    fn local_suppression_reaches_k_without_deleting_rows() {
        let t = figure3();
        let result = locally_suppress_to_k(&t, &[0, 1], 2).expect("achievable");
        assert_eq!(result.table.n_rows(), 10, "no tuples deleted");
        assert!(is_k_anonymous(&result.table, &[0, 1], 2));
        assert!(result.cells_suppressed > 0);
        assert!(result.rounds >= 1);
        // Strictly fewer cells lost than row suppression would cost:
        // deleting 6 tuples destroys 12 cells.
        assert!(result.cells_suppressed < 12, "{}", result.cells_suppressed);
    }

    #[test]
    fn local_suppression_noop_when_anonymous() {
        let t = figure3();
        let result = locally_suppress_to_k(&t, &[0, 1], 1).unwrap();
        assert_eq!(result.cells_suppressed, 0);
        assert_eq!(result.rounds, 0);
        assert_eq!(result.table, t);
    }

    #[test]
    fn local_suppression_reports_unreachable_k() {
        // A single tuple can never reach 2-anonymity by blanking cells
        // (the pooled missing group has size 1).
        let t = figure3().take(&[0]);
        assert!(locally_suppress_to_k(&t, &[0, 1], 2).is_none());
    }

    #[test]
    fn local_suppression_pools_fully_blanked_rows() {
        // Three mutually distinct tuples: blanking both key cells pools
        // them into one group of 3 >= 2.
        let t = figure3().take(&[1, 7, 8]);
        let result = locally_suppress_to_k(&t, &[0, 1], 3).expect("achievable by pooling");
        assert!(is_k_anonymous(&result.table, &[0, 1], 3));
        assert_eq!(result.table.n_rows(), 3);
    }

    #[test]
    fn surviving_tuples_are_unchanged() {
        let t = figure3();
        let result = suppress_to_k(&t, &[0, 1], 2);
        for row in 0..result.table.n_rows() {
            let sex = result.table.value(row, 0);
            let zip = result.table.value(row, 1);
            assert!(
                (sex == Value::Text("M".into())
                    && (zip == Value::Text("41076".into()) || zip == Value::Text("43102".into()))),
                "unexpected survivor {sex} {zip}"
            );
        }
    }
}
