//! The masking pipeline: generalize to a lattice node, suppress within a
//! threshold, and check the target property — one candidate evaluation inside
//! any lattice-search algorithm.

use crate::checker::{check_improved, CheckStage, ImprovedCheckOutcome};
use crate::conditions::ConfidentialStats;
use crate::kanonymity::check_k_anonymity;
use crate::observe::{elapsed_since, start_timer, SearchObserver};
use crate::suppress::suppress_to_k;
use psens_hierarchy::{Node, QiSpace};
use psens_microdata::Table;

/// Errors from the masking pipeline (hierarchy application can fail).
pub type Result<T> = std::result::Result<T, psens_hierarchy::Error>;

/// The masking configuration shared by every candidate-node evaluation:
/// which table to mask, how, and what property to demand.
#[derive(Debug, Clone)]
pub struct MaskingContext<'a> {
    /// The initial microdata (identifiers may still be present; they are
    /// dropped from every masked output).
    pub initial: &'a Table,
    /// The QI space (hierarchies for each key attribute).
    pub qi: &'a QiSpace,
    /// Required group size.
    pub k: u32,
    /// Required sensitivity (use `p = 1` for plain k-anonymity: every
    /// nonempty group trivially has one distinct value).
    pub p: u32,
    /// Suppression threshold TS: the maximum number of tuples that may be
    /// removed after generalization.
    pub ts: usize,
}

/// The outcome of masking at one lattice node.
#[derive(Debug, Clone)]
pub struct MaskOutcome {
    /// The node that was applied.
    pub node: Node,
    /// The masked microdata: generalized, identifier-free and, when the
    /// violation count fit the threshold, suppressed to k-anonymity.
    pub masked: Table,
    /// Number of tuples suppressed (0 when suppression was not applicable).
    pub suppressed: usize,
    /// Tuples violating k-anonymity after generalization alone (Figure 3's
    /// per-node annotation).
    pub violating_tuples: usize,
    /// Whether the masked table satisfies the requested property.
    pub satisfied: bool,
    /// Stage of Algorithm 2 that settled the check.
    pub stage: CheckStage,
    /// QI-group count of the masked table, when Algorithm 2 computed the
    /// grouping (`None` after a Condition 1 rejection).
    pub n_groups: Option<usize>,
}

impl MaskingContext<'_> {
    /// Key-attribute indices of the masked (identifier-free) schema.
    fn masked_keys(&self, masked: &Table) -> Vec<usize> {
        masked.schema().key_indices()
    }

    /// Confidential-attribute indices of the masked schema.
    fn masked_confidential(&self, masked: &Table) -> Vec<usize> {
        masked.schema().confidential_indices()
    }

    /// Evaluates one lattice node end to end:
    /// generalize → (suppress if within TS) → Algorithm 2 check.
    ///
    /// `stats` are the initial-microdata confidential statistics; Theorems 1
    /// and 2 make their reuse sound for every node and threshold.
    pub fn evaluate(&self, node: &Node, stats: &ConfidentialStats) -> Result<MaskOutcome> {
        let generalized = self.qi.apply(self.initial, node)?.drop_identifiers();
        let keys = self.masked_keys(&generalized);
        let report = check_k_anonymity(&generalized, &keys, self.k);
        let (masked, suppressed) =
            if report.violating_tuples > 0 && report.violating_tuples <= self.ts {
                let result = suppress_to_k(&generalized, &keys, self.k);
                (result.table, result.removed)
            } else {
                (generalized, 0)
            };
        let conf = self.masked_confidential(&masked);
        let outcome: ImprovedCheckOutcome =
            check_improved(&masked, &keys, &conf, self.p, self.k, stats);
        Ok(MaskOutcome {
            node: node.clone(),
            masked,
            suppressed,
            violating_tuples: report.violating_tuples,
            satisfied: outcome.satisfied,
            stage: outcome.stage,
            n_groups: outcome.n_groups,
        })
    }

    /// [`Self::evaluate`], reporting the table-materialization cost to
    /// `observer`. With a [`crate::observe::NoopObserver`] this
    /// monomorphizes to exactly [`Self::evaluate`].
    pub fn evaluate_observed<O: SearchObserver>(
        &self,
        node: &Node,
        stats: &ConfidentialStats,
        observer: &O,
    ) -> Result<MaskOutcome> {
        let timer = start_timer::<O>();
        let outcome = self.evaluate(node, stats)?;
        if O::ENABLED {
            observer.table_materialized(elapsed_since(timer));
        }
        Ok(outcome)
    }

    /// Precomputes the confidential statistics of the initial microdata —
    /// compute once, reuse for every node (the paper's key optimization).
    pub fn initial_stats(&self) -> ConfidentialStats {
        ConfidentialStats::compute(self.initial, &self.initial.schema().confidential_indices())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_hierarchy::builders::{flat_hierarchy, prefix_hierarchy};
    use psens_hierarchy::Hierarchy;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    /// Figure 3's microdata extended with a confidential attribute.
    fn table() -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_identifier("Name"),
            Attribute::cat_key("Sex"),
            Attribute::cat_key("ZipCode"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["n0", "M", "41076", "Flu"],
                &["n1", "F", "41099", "HIV"],
                &["n2", "M", "41099", "Asthma"],
                &["n3", "M", "41076", "HIV"],
                &["n4", "F", "43102", "Flu"],
                &["n5", "M", "43102", "Asthma"],
                &["n6", "M", "43102", "HIV"],
                &["n7", "F", "43103", "Flu"],
                &["n8", "M", "48202", "Asthma"],
                &["n9", "M", "48201", "Flu"],
            ],
        )
        .unwrap()
    }

    fn qi() -> QiSpace {
        QiSpace::new(vec![
            ("Sex".into(), flat_hierarchy(vec!["M", "F"]).unwrap()),
            (
                "ZipCode".into(),
                Hierarchy::Cat(
                    prefix_hierarchy(
                        vec!["41076", "41099", "43102", "43103", "48201", "48202"],
                        &[2, 0],
                    )
                    .unwrap(),
                ),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn masked_output_has_no_identifiers() {
        let t = table();
        let qi = qi();
        let ctx = MaskingContext {
            initial: &t,
            qi: &qi,
            k: 2,
            p: 1,
            ts: 0,
        };
        let stats = ctx.initial_stats();
        let outcome = ctx.evaluate(&Node(vec![1, 2]), &stats).unwrap();
        assert!(outcome.masked.schema().index_of("Name").is_err());
        assert!(outcome.satisfied);
    }

    #[test]
    fn figure3_violation_counts_surface() {
        let t = table();
        let qi = qi();
        let ctx = MaskingContext {
            initial: &t,
            qi: &qi,
            k: 3,
            p: 1,
            ts: 0,
        };
        let stats = ctx.initial_stats();
        // Figure 3: <S0,Z0> -> 10, <S1,Z0> -> 7, <S0,Z1> -> 7, <S1,Z1> -> 2,
        // <S0,Z2> -> 0, <S1,Z2> -> 0 violating tuples.
        let expect = [
            (Node(vec![0, 0]), 10),
            (Node(vec![1, 0]), 7),
            (Node(vec![0, 1]), 7),
            (Node(vec![1, 1]), 2),
            (Node(vec![0, 2]), 0),
            (Node(vec![1, 2]), 0),
        ];
        for (node, violations) in expect {
            let outcome = ctx.evaluate(&node, &stats).unwrap();
            assert_eq!(
                outcome.violating_tuples, violations,
                "node {node} should have {violations} violating tuples"
            );
        }
    }

    #[test]
    fn suppression_applies_within_threshold() {
        let t = table();
        let qi = qi();
        let ctx = MaskingContext {
            initial: &t,
            qi: &qi,
            k: 3,
            p: 1,
            ts: 2,
        };
        let stats = ctx.initial_stats();
        // <S1,Z1> has 2 violating tuples <= TS = 2: suppression kicks in.
        let outcome = ctx.evaluate(&Node(vec![1, 1]), &stats).unwrap();
        assert_eq!(outcome.suppressed, 2);
        assert_eq!(outcome.masked.n_rows(), 8);
        assert!(outcome.satisfied);
        // <S1,Z0> has 7 violating tuples > TS: no suppression, not satisfied.
        let outcome = ctx.evaluate(&Node(vec![1, 0]), &stats).unwrap();
        assert_eq!(outcome.suppressed, 0);
        assert!(!outcome.satisfied);
        assert_eq!(outcome.stage, CheckStage::KAnonymity);
    }

    #[test]
    fn p_sensitivity_enforced_by_pipeline() {
        let t = table();
        let qi = qi();
        // At <S1,Z2> everything is one group with 3 distinct illnesses:
        // satisfies p up to 3.
        for (p, expect) in [(1u32, true), (3, true), (4, false)] {
            let ctx = MaskingContext {
                initial: &t,
                qi: &qi,
                k: 2,
                p,
                ts: 0,
            };
            let stats = ctx.initial_stats();
            let outcome = ctx.evaluate(&Node(vec![1, 2]), &stats).unwrap();
            assert_eq!(outcome.satisfied, expect, "p = {p}");
        }
    }
}
