//! Incremental maintenance of the paper's frequency statistics under live
//! row updates, and the delta classifier that decides how much of a cached
//! verdict pool each update invalidates.
//!
//! [`LiveTable`] wraps a materialized [`Table`] together with hash-multiset
//! trackers for the row multiset, the ground QI-group sizes, and each
//! confidential attribute's frequency set. Applying a [`DeltaBatch`] updates
//! all of them in `O(|delta|)` and reports a [`DeltaEffect`] — the facts the
//! invalidation classifier needs. [`LiveTable::stats`] then reproduces
//! [`ConfidentialStats::compute`] byte-for-byte (both funnel through
//! [`ConfidentialStats::assemble`] on the same descending counts), so
//! Conditions 1/2 can be re-judged without touching the table.
//!
//! [`invalidation_for`] maps a [`DeltaEffect`] to the strongest sound
//! [`Invalidation`] policy (see DESIGN.md §17 for the full argument):
//!
//! * **net-zero** batches (the row multiset ends where it started) keep
//!   every verdict — each `NodeCheck` field is a function of that multiset;
//! * **sterile appends** — append-only, every row an exact duplicate whose
//!   ground QI-group already holds `>= k` tuples — leave every partition-
//!   derived quantity unchanged at every lattice node (node groups are
//!   coarser than ground groups, so each receiving group was already
//!   `>= k`); only the confidential statistics move, and distinct-count
//!   models can re-judge cached entries against the new statistics;
//! * anything else drops the pool.

use crate::conditions::{AttributeFrequencyStats, ConfidentialStats};
use crate::model::{GroupCheckMode, ModelSpec};
use crate::verdict::Invalidation;
use psens_microdata::{DeltaBatch, Error, IncrementalFrequency, Result, RowMultiset, Table};
use std::collections::HashMap;

/// A table plus the incremental counters that survive delta batches.
#[derive(Debug, Clone)]
pub struct LiveTable {
    table: Table,
    qi: Vec<usize>,
    confidential: Vec<usize>,
    rows: RowMultiset,
    groups: IncrementalFrequency,
    freqs: Vec<IncrementalFrequency>,
    deltas_applied: u64,
}

/// What one applied [`DeltaBatch`] did, in the terms the invalidation
/// classifier cares about. All pre-batch quantities are measured against the
/// table as it stood *before* the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaEffect {
    /// Rows appended.
    pub appended: usize,
    /// Rows deleted.
    pub deleted: usize,
    /// The row multiset after the batch equals the one before it.
    pub net_zero: bool,
    /// The batch deleted nothing.
    pub append_only: bool,
    /// Every appended row was an exact duplicate of a pre-batch row.
    pub all_duplicates: bool,
    /// Smallest pre-batch ground QI-group size among the appended rows'
    /// host groups (`None` when nothing was appended).
    pub min_host_group: Option<usize>,
}

impl DeltaEffect {
    /// True when the batch qualifies as a *sterile append* for pools with
    /// `k <= min_host_group`: partition-derived check fields are unchanged
    /// at every node and only the confidential statistics moved.
    pub fn sterile_for(&self, k: usize) -> bool {
        self.append_only && self.all_duplicates && self.min_host_group.is_some_and(|g| g >= k)
    }
}

impl LiveTable {
    /// Wraps `table` with trackers over ground QI columns `qi` and
    /// confidential columns `confidential`.
    pub fn new(table: Table, qi: Vec<usize>, confidential: Vec<usize>) -> Result<LiveTable> {
        let n_cols = table.schema().len();
        for &c in qi.iter().chain(&confidential) {
            if c >= n_cols {
                return Err(Error::Io(format!(
                    "column index {c} out of range for a {n_cols}-column schema"
                )));
            }
        }
        let rows = RowMultiset::of(&table);
        let groups = IncrementalFrequency::of(&table, &qi);
        let freqs = confidential
            .iter()
            .map(|&c| IncrementalFrequency::of(&table, &[c]))
            .collect();
        Ok(LiveTable {
            table,
            qi,
            confidential,
            rows,
            groups,
            freqs,
            deltas_applied: 0,
        })
    }

    /// The current materialized table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Number of delta batches applied so far.
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied
    }

    /// Confidential statistics of the *current* table, rebuilt from the
    /// incremental trackers — `==` to [`ConfidentialStats::compute`] on
    /// [`Self::table`] by construction (same descending counts, same
    /// assembly).
    pub fn stats(&self) -> ConfidentialStats {
        let per_attribute = self
            .confidential
            .iter()
            .zip(&self.freqs)
            .map(|(&attr, freq)| {
                AttributeFrequencyStats::from_descending(
                    attr,
                    self.table.schema().attribute(attr).name().to_owned(),
                    freq.descending_counts(),
                )
            })
            .collect();
        ConfidentialStats::assemble(self.table.n_rows(), per_attribute)
    }

    /// Applies `batch`, updating the table and every tracker, and reports
    /// what changed. On error nothing is modified.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<DeltaEffect> {
        batch.validate(&self.table)?;
        // Classify against the pre-batch state before any tracker moves.
        let mut all_duplicates = true;
        let mut min_host_group: Option<usize> = None;
        for row in &batch.appends {
            if self.rows.count(row) == 0 {
                all_duplicates = false;
            }
            let key: Vec<_> = self.qi.iter().map(|&c| row[c].clone()).collect();
            let host = self.groups.count_of(&key);
            min_host_group = Some(min_host_group.map_or(host, |m| m.min(host)));
        }
        // Net-zero detection: signed count per touched row.
        let mut signed: HashMap<Vec<psens_microdata::Value>, i64> = HashMap::new();
        let deleted_rows: Vec<Vec<psens_microdata::Value>> = batch
            .deletes
            .iter()
            .map(|&ix| self.table.row(ix).expect("validated in-bounds"))
            .collect();
        for row in &deleted_rows {
            *signed.entry(row.clone()).or_insert(0) -= 1;
        }
        for row in &batch.appends {
            *signed.entry(row.clone()).or_insert(0) += 1;
        }
        let net_zero = signed.values().all(|&d| d == 0);
        // Materialize first: if apply() rejects the batch (e.g. a value-kind
        // mismatch validate() cannot see), no tracker has moved yet.
        let next = batch.apply(&self.table)?;
        for row in &deleted_rows {
            self.rows.remove(row);
            self.groups.remove_row(row);
            for freq in &mut self.freqs {
                freq.remove_row(row);
            }
        }
        for row in &batch.appends {
            self.rows.insert(row.clone());
            self.groups.insert_row(row);
            for freq in &mut self.freqs {
                freq.insert_row(row);
            }
        }
        self.table = next;
        self.deltas_applied += 1;
        Ok(DeltaEffect {
            appended: batch.appends.len(),
            deleted: batch.deletes.len(),
            net_zero,
            append_only: batch.is_append_only(),
            all_duplicates,
            min_host_group,
        })
    }
}

/// The strongest invalidation policy `effect` soundly admits for a pool
/// keyed by (`spec`, `k`): [`Invalidation::KeepAll`] for net-zero batches
/// (any model), [`Invalidation::Conditions`] for sterile appends under a
/// distinct-count model, [`Invalidation::DropAll`] otherwise. `stats` must
/// be the statistics of the table *after* the batch.
pub fn invalidation_for<'a>(
    effect: &DeltaEffect,
    stats: &'a ConfidentialStats,
    spec: &ModelSpec,
    k: usize,
) -> Invalidation<'a> {
    if effect.net_zero {
        return Invalidation::KeepAll;
    }
    let distinct_mode = matches!(spec.instantiate().mode(), GroupCheckMode::Distinct { .. });
    if effect.sterile_for(k) && distinct_mode && spec.is_monotone() {
        return Invalidation::Conditions {
            stats,
            p: spec.conditions_p(),
        };
    }
    Invalidation::DropAll
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, Schema, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::cat_key("Sex"),
            Attribute::int_key("Age"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap()
    }

    /// Two fat ground groups of 3 rows each.
    fn base() -> Table {
        table_from_str_rows(
            schema(),
            &[
                &["M", "30", "Flu"],
                &["M", "30", "Cold"],
                &["M", "30", "HIV"],
                &["F", "40", "Flu"],
                &["F", "40", "HIV"],
                &["F", "40", "Asthma"],
            ],
        )
        .unwrap()
    }

    fn live() -> LiveTable {
        LiveTable::new(base(), vec![0, 1], vec![2]).unwrap()
    }

    fn row(sex: &str, age: i64, illness: &str) -> Vec<Value> {
        vec![
            Value::Text(sex.into()),
            Value::Int(age),
            Value::Text(illness.into()),
        ]
    }

    #[test]
    fn stats_stay_byte_identical_across_a_mixed_sequence() {
        let mut live = live();
        let batches = [
            DeltaBatch::append_rows(vec![row("M", 30, "Flu"), row("F", 20, "Measles")]),
            DeltaBatch::delete_rows(vec![0, 4]),
            DeltaBatch {
                appends: vec![row("F", 40, "HIV"), row("M", 30, "Cold")],
                deletes: vec![1, 2],
            },
            DeltaBatch::delete_rows(vec![5]),
        ];
        for (i, batch) in batches.iter().enumerate() {
            live.apply(batch).unwrap();
            let scratch = ConfidentialStats::compute(live.table(), &[2]);
            assert_eq!(live.stats(), scratch, "batch {i}");
        }
        assert_eq!(live.deltas_applied(), 4);
        // The materialized table equals the scratch delta chain.
        let mut scratch = base();
        for batch in &batches {
            scratch = batch.apply(&scratch).unwrap();
        }
        assert_eq!(live.table(), &scratch);
    }

    #[test]
    fn effect_classifies_sterile_appends() {
        let mut live = live();
        // Exact duplicate into a 3-row group: sterile for k <= 3.
        let effect = live
            .apply(&DeltaBatch::append_rows(vec![row("M", 30, "Flu")]))
            .unwrap();
        assert!(effect.append_only && effect.all_duplicates);
        assert_eq!(effect.min_host_group, Some(3));
        assert!(effect.sterile_for(3) && !effect.sterile_for(4));
        assert!(!effect.net_zero);
        // A fresh row is never sterile, even into a big group.
        let effect = live
            .apply(&DeltaBatch::append_rows(vec![row("M", 30, "Measles")]))
            .unwrap();
        assert!(!effect.all_duplicates);
        assert!(!effect.sterile_for(1));
        // Deletes disqualify wholesale.
        let effect = live
            .apply(&DeltaBatch {
                appends: vec![row("F", 40, "Flu")],
                deletes: vec![0],
            })
            .unwrap();
        assert!(!effect.append_only && !effect.sterile_for(0));
    }

    #[test]
    fn effect_detects_net_zero_churn() {
        let mut live = live();
        // Delete a row and append an identical copy: net-zero.
        let effect = live
            .apply(&DeltaBatch {
                appends: vec![row("M", 30, "Flu")],
                deletes: vec![0],
            })
            .unwrap();
        assert!(effect.net_zero);
        assert_eq!(live.table().n_rows(), 6);
        assert_eq!(live.stats(), ConfidentialStats::compute(live.table(), &[2]));
        // Same rows, different multiplicities: not net-zero.
        let effect = live
            .apply(&DeltaBatch {
                appends: vec![row("M", 30, "Flu"), row("M", 30, "Flu")],
                deletes: vec![0],
            })
            .unwrap();
        assert!(!effect.net_zero);
    }

    #[test]
    fn classifier_picks_the_strongest_sound_policy() {
        let mut live = live();
        let stats = live.stats();
        let psens = ModelSpec::PSensitiveK { p: 2 };
        let entropy = ModelSpec::EntropyL { l: 2 };
        // Net-zero: keep-all for every model.
        let churn = DeltaEffect {
            appended: 1,
            deleted: 1,
            net_zero: true,
            append_only: false,
            all_duplicates: true,
            min_host_group: Some(3),
        };
        assert!(matches!(
            invalidation_for(&churn, &stats, &entropy, 2),
            Invalidation::KeepAll
        ));
        // Sterile append: conditions re-judge for distinct models only.
        let effect = live
            .apply(&DeltaBatch::append_rows(vec![row("F", 40, "HIV")]))
            .unwrap();
        let stats = live.stats();
        match invalidation_for(&effect, &stats, &psens, 2) {
            Invalidation::Conditions { p, .. } => assert_eq!(p, 2),
            other => panic!("expected Conditions, got {other:?}"),
        }
        assert!(matches!(
            invalidation_for(&effect, &stats, &entropy, 2),
            Invalidation::DropAll
        ));
        // Same batch against a pool with k above the host group: drop.
        assert!(matches!(
            invalidation_for(&effect, &stats, &psens, 5),
            Invalidation::DropAll
        ));
    }

    #[test]
    fn failed_apply_modifies_nothing() {
        let mut live = live();
        let before_stats = live.stats();
        let before_table = live.table().clone();
        assert!(live.apply(&DeltaBatch::delete_rows(vec![99])).is_err());
        assert!(live
            .apply(&DeltaBatch::append_rows(vec![vec![Value::Missing]]))
            .is_err());
        assert_eq!(live.table(), &before_table);
        assert_eq!(live.stats(), before_stats);
        assert_eq!(live.deltas_applied(), 0);
    }

    #[test]
    fn new_rejects_out_of_range_columns() {
        assert!(LiveTable::new(base(), vec![0, 7], vec![2]).is_err());
        assert!(LiveTable::new(base(), vec![0], vec![9]).is_err());
    }
}
