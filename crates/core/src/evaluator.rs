//! The code-mapped node-evaluation kernel: checks a lattice node end to end
//! on `u32` code vectors, without materializing a generalized table.
//!
//! [`crate::masking::MaskingContext::evaluate`] clones every column, recodes
//! cell-by-cell through string labels, and rebuilds a hash partition from
//! scratch — per node. A lattice search repeats that hundreds of times over
//! the *same* initial microdata. The kernel hoists everything node-invariant
//! into an [`EvalContext`] built once per search:
//!
//! - per-(attribute, level) generalization **code maps**
//!   ([`psens_hierarchy::QiCodeMaps`]),
//! - dense codes of key attributes outside the QI space (node-invariant),
//! - dense codes of the confidential attributes.
//!
//! Per node, a [`NodeEvaluator`] then runs the whole of Algorithm 2 —
//! Condition 1 → Condition 2 → k-anonymity → per-group
//! `COUNT(DISTINCT S_j)` — plus suppression simulation as integer passes:
//! the QI partition is a [`CodeCombiner`] refinement over mapped codes, and
//! suppression needs no row removal at all, because deleting the rows of
//! undersized groups leaves every surviving group untouched (the fact
//! [`crate::suppress::suppress_to_k`]'s doc comment records). The outcome is
//! field-for-field identical to the materializing pipeline; materialize a
//! `Table` (via `MaskingContext::evaluate`) only for the winning node.
//!
//! `EvalContext` is immutable and `Sync`: a parallel scan builds it once and
//! hands `&EvalContext` to every worker, each of which owns its own
//! (cheap, reusable) `NodeEvaluator` scratch.

use crate::budget::{BudgetState, Termination};
use crate::checker::CheckStage;
use crate::conditions::ConfidentialStats;
use crate::masking::{MaskingContext, Result};
use crate::model::{CodeDistribution, GroupCheckMode, ModelDetail, ModelSpec, PrivacyModel};
use crate::observe::{elapsed_since, start_timer, SearchObserver};
use crate::verdict::{Verdict, VerdictStore};
use psens_hierarchy::{Error, Node, QiCodeMaps};
use psens_microdata::hash::{fmix64, mix64, KEY_HASH_SEED};
use psens_microdata::{group_codes, resolve_threads, CodeCombiner, KeyKernel, Role, DENSE_CAP};
use std::ops::ControlFlow;
use std::sync::Arc;

/// Where a confidential attribute's per-row codes come from.
#[derive(Debug, Clone)]
enum ConfSource {
    /// Outside the QI space: node-invariant dense codes.
    Static(Vec<u32>, u32),
    /// Inside the QI space (index into the code maps): the column is
    /// generalized with the node, so its codes go through the level map.
    Mapped(usize),
}

/// One refinement column as the morsel executor sees it: row `r`'s key
/// component is a dense code below `n_codes`.
enum MappedCol<'a> {
    /// A grouped QI attribute at the node's level: component `map[base[r]]`
    /// — the generalization map fused into the key read, never
    /// materialized.
    Mapped {
        /// Ground-level dense codes of the attribute.
        base: &'a [u32],
        /// Ground code → level code map of the node's level.
        map: &'a [u32],
        /// Exclusive bound on level codes.
        n_codes: u32,
    },
    /// A static key column (outside the QI space): component `codes[r]`.
    Plain {
        /// Whole-table dense codes.
        codes: &'a [u32],
        /// Exclusive bound on the codes.
        n_codes: u32,
    },
}

impl MappedCol<'_> {
    #[inline]
    fn component(&self, row: usize) -> u32 {
        match self {
            MappedCol::Mapped { base, map, .. } => map[base[row] as usize],
            MappedCol::Plain { codes, .. } => codes[row],
        }
    }

    fn n_codes(&self) -> u32 {
        match self {
            MappedCol::Mapped { n_codes, .. } | MappedCol::Plain { n_codes, .. } => *n_codes,
        }
    }
}

/// [`KeyKernel`] over one node's refinement columns, feeding the morsel
/// executor from whole-table contiguous slices. Every component is already
/// a dense code, so the dense fused-key path covers any column-domain
/// product under [`DENSE_CAP`]; wider keys fall back to the seeded hash
/// with exact per-component verification.
struct MappedKeyKernel<'a> {
    n_rows: usize,
    cols: Vec<MappedCol<'a>>,
    product: Option<u32>,
}

impl<'a> MappedKeyKernel<'a> {
    fn new(ctx: &'a EvalContext, node: &Node) -> MappedKeyKernel<'a> {
        let mut cols = Vec::with_capacity(ctx.qi_is_key.len() + ctx.static_keys.len());
        for (i, &level) in node.levels().iter().enumerate() {
            if !ctx.qi_is_key[i] {
                continue;
            }
            let attr = ctx.maps.attr(i);
            let lm = attr.level(level as usize);
            cols.push(MappedCol::Mapped {
                base: attr.base(),
                map: lm.map(),
                n_codes: lm.n_codes(),
            });
        }
        for (codes, n_codes) in &ctx.static_keys {
            cols.push(MappedCol::Plain {
                codes,
                n_codes: *n_codes,
            });
        }
        let mut running: u64 = 1;
        for col in &cols {
            running = running.saturating_mul(u64::from(col.n_codes()).max(1));
        }
        let product = (running <= DENSE_CAP).then_some(running.max(1) as u32);
        MappedKeyKernel {
            n_rows: ctx.n_rows,
            cols,
            product,
        }
    }
}

impl KeyKernel for MappedKeyKernel<'_> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn dense_product(&self) -> Option<u32> {
        self.product
    }

    fn fill_dense(&self, start: usize, out: &mut [u32]) {
        out.fill(0);
        for col in &self.cols {
            let d = col.n_codes().max(1);
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = *slot * d + col.component(start + i);
            }
        }
    }

    fn fill_hashed(&self, start: usize, out: &mut [u64]) {
        out.fill(KEY_HASH_SEED);
        for col in &self.cols {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = mix64(*slot, u64::from(col.component(start + i)));
            }
        }
        for slot in out.iter_mut() {
            *slot = fmix64(*slot);
        }
    }

    fn rows_equal(&self, a: usize, b: usize) -> bool {
        self.cols
            .iter()
            .all(|col| col.component(a) == col.component(b))
    }
}

/// Everything node-invariant about one (table, QI space, k, p, TS) search —
/// built once, shared (it is `Sync`) by every node check.
#[derive(Debug, Clone)]
pub struct EvalContext {
    n_rows: usize,
    k: u32,
    p: u32,
    ts: usize,
    maps: QiCodeMaps,
    /// Whether the `i`-th QI attribute has the `Key` role (participates in
    /// the QI grouping; a QI-space attribute with another role is
    /// generalized but not grouped on, matching `Schema::key_indices`).
    qi_is_key: Vec<bool>,
    /// Dense codes of key attributes outside the QI space (always grouped
    /// at ground level).
    static_keys: Vec<(Vec<u32>, u32)>,
    /// Confidential attributes, in masked-schema order.
    conf: Vec<ConfSource>,
    /// The privacy model the detailed scan enforces. Defaults to
    /// p-sensitive k-anonymity with the context's `p`, which reproduces
    /// the historical checker verdict-for-verdict; [`Self::with_model`]
    /// swaps in another model.
    model: Arc<dyn PrivacyModel>,
    /// Whole-table code distribution per confidential attribute, computed
    /// only when the model needs it (t-closeness) and only for static
    /// sources — a QI-mapped confidential column's distribution depends on
    /// the node and is tallied per check.
    globals: Vec<Option<CodeDistribution>>,
    /// Row-range chunk size for chunk-parallel partitioning; 0 disables the
    /// chunked path (the default — behavior is then exactly the serial
    /// kernel).
    chunk_rows: usize,
    /// Worker threads for the chunked partition pass.
    threads: usize,
}

/// The kernel's verdict on one lattice node: the same fields as
/// [`crate::masking::MaskOutcome`] minus the materialized table, plus the
/// QI-group count Algorithm 2 reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeCheck {
    /// The node that was checked.
    pub node: Node,
    /// Tuples violating k-anonymity after generalization alone.
    pub violating_tuples: usize,
    /// Number of tuples suppression would remove (0 when not applicable).
    pub suppressed: usize,
    /// Whether the masked microdata satisfies the requested property.
    pub satisfied: bool,
    /// Stage of Algorithm 2 that settled the check.
    pub stage: CheckStage,
    /// QI-group count after suppression, when grouping was reached (`None`
    /// after a Condition 1 rejection).
    pub n_groups: Option<usize>,
    /// Model-specific payload from the detailed scan: the extremal
    /// per-group metric observed. `None` before the scan stage, for empty
    /// tables, and for distinct-count models (whose early-exit scan never
    /// learns the true minimum) — so p-sensitive verdicts are bit-for-bit
    /// what they were before models existed.
    pub detail: Option<ModelDetail>,
}

/// How [`NodeEvaluator::check_cached`] settled a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictSource {
    /// A fresh kernel check ran (and was recorded if a store was supplied).
    Fresh,
    /// An exact verdict was replayed from the shared [`VerdictStore`].
    Cached,
    /// The verdict was derived by monotonicity closure in the store; only
    /// the satisfaction boolean is known.
    Inferred,
}

/// Outcome of a cache-aware node check: the satisfaction verdict, the full
/// [`NodeCheck`] when one exists (always for [`VerdictSource::Fresh`] and
/// [`VerdictSource::Cached`], never for [`VerdictSource::Inferred`]), and
/// where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheCheck {
    /// Whether the node satisfies the requested property.
    pub satisfied: bool,
    /// The full check, absent only for inferred verdicts.
    pub check: Option<NodeCheck>,
    /// Provenance of the verdict; only `Fresh` consumed node budget.
    pub source: VerdictSource,
}

impl EvalContext {
    /// Precomputes the kernel inputs for `ctx`. Fails exactly where
    /// `ctx.evaluate` would fail for table/hierarchy reasons (unknown QI
    /// attribute, kind mismatch, value outside a hierarchy's domain) — so a
    /// successful build means every in-lattice node check succeeds.
    pub fn build(ctx: &MaskingContext<'_>) -> Result<EvalContext> {
        let schema = ctx.initial.schema();
        let qi_names = ctx.qi.names();
        let maps = ctx.qi.code_maps(ctx.initial)?;
        let mut qi_is_key = Vec::with_capacity(qi_names.len());
        for &name in &qi_names {
            let idx = schema.index_of(name).map_err(Error::from)?;
            qi_is_key.push(schema.attribute(idx).role() == Role::Key);
        }
        let static_keys = schema
            .key_indices()
            .into_iter()
            .filter(|&i| !qi_names.contains(&schema.attribute(i).name()))
            .map(|i| ctx.initial.column(i).dense_codes())
            .collect();
        let conf: Vec<ConfSource> = schema
            .confidential_indices()
            .into_iter()
            .map(|i| {
                let name = schema.attribute(i).name();
                match qi_names.iter().position(|&q| q == name) {
                    Some(qi_idx) => ConfSource::Mapped(qi_idx),
                    None => {
                        let (codes, n_codes) = ctx.initial.column(i).dense_codes();
                        ConfSource::Static(codes, n_codes)
                    }
                }
            })
            .collect();
        let n_conf = conf.len();
        Ok(EvalContext {
            n_rows: ctx.initial.n_rows(),
            k: ctx.k,
            p: ctx.p,
            ts: ctx.ts,
            maps,
            qi_is_key,
            static_keys,
            conf,
            model: ModelSpec::PSensitiveK { p: ctx.p }.instantiate(),
            globals: vec![None; n_conf],
            chunk_rows: 0,
            threads: 1,
        })
    }

    /// Swaps the detailed-scan model for `spec`'s checker. The context's
    /// `p` becomes the model's [`ModelSpec::conditions_p`], so Conditions
    /// 1–2 keep acting as necessary conditions for the new model, and —
    /// when the model compares distributions — the whole-table code
    /// distribution of every static confidential attribute is tallied
    /// once here.
    pub fn with_model(self, spec: ModelSpec) -> EvalContext {
        self.with_model_object(spec.instantiate())
    }

    /// [`Self::with_model`] for an arbitrary (possibly non-monotone,
    /// test-supplied) [`PrivacyModel`] implementation.
    pub fn with_model_object(mut self, model: Arc<dyn PrivacyModel>) -> EvalContext {
        self.p = model.conditions_p();
        let needs_global = matches!(
            model.mode(),
            GroupCheckMode::Histogram { needs_global: true }
        );
        self.globals = self
            .conf
            .iter()
            .map(|source| match source {
                ConfSource::Static(codes, n_codes) if needs_global => Some(
                    CodeDistribution::from_codes(codes.iter().copied(), *n_codes),
                ),
                _ => None,
            })
            .collect();
        self.model = model;
        self
    }

    /// The model the detailed scan enforces.
    pub fn model(&self) -> &Arc<dyn PrivacyModel> {
        &self.model
    }

    /// Enables morsel-parallel QI partitioning: per-node refinement runs on
    /// the morsel-driven, hash-partitioned executor (`chunk_rows` rows per
    /// morsel, `threads` scoped workers — `0` meaning one per available
    /// core). Group ids stay byte-identical to the serial kernel (see
    /// `psens_microdata::morsel`), so every verdict, stage, and count is
    /// unchanged. `chunk_rows = 0` or one resolved thread keeps the serial
    /// path.
    pub fn with_chunked_partition(mut self, chunk_rows: usize, threads: usize) -> EvalContext {
        self.chunk_rows = chunk_rows;
        self.threads = resolve_threads(threads);
        self
    }

    /// [`Self::build`], reporting the cache-build cost to `observer`. With a
    /// [`crate::observe::NoopObserver`] this monomorphizes to exactly
    /// [`Self::build`] — no timing code survives.
    pub fn build_observed<O: SearchObserver>(
        ctx: &MaskingContext<'_>,
        observer: &O,
    ) -> Result<EvalContext> {
        let timer = start_timer::<O>();
        let built = Self::build(ctx)?;
        if O::ENABLED {
            observer.cache_built(elapsed_since(timer));
        }
        Ok(built)
    }

    /// A fresh per-thread evaluator borrowing this context.
    pub fn evaluator(&self) -> NodeEvaluator<'_> {
        NodeEvaluator {
            ctx: self,
            combiner: CodeCombiner::new(),
            current: Vec::new(),
            sizes: Vec::new(),
            offsets: Vec::new(),
            cursor: Vec::new(),
            ordered: Vec::new(),
            stamp: Vec::new(),
            hist: Vec::new(),
            counts_buf: Vec::new(),
        }
    }

    /// Mirrors `QiSpace::validate_node`'s check and error.
    fn validate(&self, node: &Node) -> Result<()> {
        let m = self.maps.len();
        let ok = node.levels().len() == m
            && node
                .levels()
                .iter()
                .enumerate()
                .all(|(i, &level)| (level as usize) < self.maps.attr(i).n_levels());
        if ok {
            Ok(())
        } else {
            Err(Error::Invalid(format!(
                "node {node} is outside the {m}-attribute lattice"
            )))
        }
    }
}

/// Per-thread scratch for checking nodes against one [`EvalContext`].
/// Reuses every buffer (partition ids, group sizes, counting-sort order,
/// distinct stamps) across nodes, so steady-state checks allocate nothing.
#[derive(Debug)]
pub struct NodeEvaluator<'a> {
    ctx: &'a EvalContext,
    combiner: CodeCombiner,
    /// `current[r]`: row r's dense QI-group id.
    current: Vec<u32>,
    /// Group sizes, indexed by group id.
    sizes: Vec<u32>,
    /// Counting-sort offsets: group g's rows live at `ordered[offsets[g]..offsets[g + 1]]`.
    offsets: Vec<usize>,
    cursor: Vec<usize>,
    /// Row indices sorted by group id (groups are contiguous blocks).
    ordered: Vec<u32>,
    /// `stamp[code] == g` ⇔ group g already counted `code` (valid because
    /// groups are scanned as contiguous blocks).
    stamp: Vec<u32>,
    /// Per-code counts of the group currently scanned (histogram-mode
    /// models only); reset lazily through `stamp`.
    hist: Vec<u32>,
    /// The current group's `(code, count)` pairs handed to
    /// [`PrivacyModel::check_group`], sorted by code.
    counts_buf: Vec<(u32, u32)>,
}

impl NodeEvaluator<'_> {
    /// Checks `node` with Algorithm 2 over codes — same verdict, stage, and
    /// counts as `MaskingContext::evaluate`, no table materialized.
    ///
    /// `stats` are the confidential statistics for the necessary conditions
    /// (initial-microdata stats per Theorems 1–2, or disabled stats for an
    /// unpruned baseline).
    pub fn check(&mut self, node: &Node, stats: &ConfidentialStats) -> Result<NodeCheck> {
        let ctx = self.ctx;
        ctx.validate(node)?;
        let n_groups = self.partition(node);

        self.sizes.clear();
        self.sizes.resize(n_groups as usize, 0);
        for &g in &self.current {
            self.sizes[g as usize] += 1;
        }
        let violating_tuples: usize = self
            .sizes
            .iter()
            .filter(|&&s| s < ctx.k)
            .map(|&s| s as usize)
            .sum();
        // Suppression drops whole undersized groups; survivors are exactly
        // the groups of size >= k, each untouched, so no re-grouping is
        // needed: post-suppression quantities read off the same partition.
        let suppression = violating_tuples > 0 && violating_tuples <= ctx.ts;
        let suppressed = if suppression { violating_tuples } else { 0 };
        let n_groups_eff = if suppression {
            self.sizes.iter().filter(|&&s| s >= ctx.k).count()
        } else {
            n_groups as usize
        };

        let check = |satisfied, stage, n_groups, detail| NodeCheck {
            node: node.clone(),
            violating_tuples,
            suppressed,
            satisfied,
            stage,
            n_groups,
            detail,
        };
        if !stats.condition1(ctx.p) {
            return Ok(check(false, CheckStage::Condition1, None, None));
        }
        if !stats.condition2(ctx.p, n_groups_eff) {
            return Ok(check(
                false,
                CheckStage::Condition2,
                Some(n_groups_eff),
                None,
            ));
        }
        // k-anonymity: after suppression the table is k-anonymous by
        // construction; otherwise any violating tuple fails the stage.
        if !suppression && violating_tuples > 0 {
            return Ok(check(
                false,
                CheckStage::KAnonymity,
                Some(n_groups_eff),
                None,
            ));
        }
        let (scan_ok, detail) = match ctx.model.mode() {
            GroupCheckMode::Distinct { target } => (
                self.detailed_scan_passes(node, n_groups, suppression, target),
                None,
            ),
            GroupCheckMode::Histogram { needs_global } => {
                self.histogram_scan(node, n_groups, suppression, needs_global)
            }
        };
        if !scan_ok {
            return Ok(check(
                false,
                CheckStage::DetailedScan,
                Some(n_groups_eff),
                detail,
            ));
        }
        Ok(check(true, CheckStage::Passed, Some(n_groups_eff), detail))
    }

    /// [`Self::check`], reporting the settled stage, suppression count, and
    /// wall-clock time to `observer` (keyed by the node's lattice height).
    /// With a [`crate::observe::NoopObserver`] this monomorphizes to exactly
    /// [`Self::check`].
    pub fn check_observed<O: SearchObserver>(
        &mut self,
        node: &Node,
        stats: &ConfidentialStats,
        observer: &O,
    ) -> Result<NodeCheck> {
        let timer = start_timer::<O>();
        let verdict = self.check(node, stats)?;
        if O::ENABLED {
            let height = node.levels().iter().map(|&l| l as usize).sum();
            observer.node_checked(
                height,
                verdict.stage,
                verdict.suppressed,
                elapsed_since(timer),
            );
        }
        Ok(verdict)
    }

    /// [`Self::check_observed`] under a [`BudgetState`]: asks the budget to
    /// admit the node first, and returns `Break(cause)` — *without checking
    /// the node* — once the budget has tripped. This is the searches' single
    /// budget checkpoint: the admission is one relaxed atomic op, with the
    /// clock and cancel flag polled every
    /// [`crate::budget::SearchBudget::check_interval`] nodes, so an
    /// unlimited budget stays within the kernel's 2% overhead gate
    /// (BENCH_3.json).
    pub fn check_budgeted<O: SearchObserver>(
        &mut self,
        node: &Node,
        stats: &ConfidentialStats,
        budget: &BudgetState,
        observer: &O,
    ) -> Result<ControlFlow<Termination, NodeCheck>> {
        match budget.admit() {
            Err(cause) => Ok(ControlFlow::Break(cause)),
            Ok(()) => self
                .check_observed(node, stats, observer)
                .map(ControlFlow::Continue),
        }
    }

    /// [`Self::check_budgeted`] backed by an optional shared
    /// [`VerdictStore`]. The cache is consulted *before* budget admission,
    /// so replayed and inferred verdicts never consume node budget — a
    /// fully warm store lets a search complete under a zero node budget.
    ///
    /// * An exact hit replays the stored [`NodeCheck`] and fires
    ///   [`SearchObserver::verdict_reused`] (`inferred = false`).
    /// * An inferred hit (only when `allow_inferred`; the exhaustive scans
    ///   decline because their annotations need `violating_tuples`) yields
    ///   just the satisfaction boolean and fires `verdict_reused`
    ///   (`inferred = true`).
    /// * A miss admits against the budget, runs the kernel, and records the
    ///   fresh check back into the store (upgrading an inferred entry).
    ///
    /// With `cache = None` this is exactly [`Self::check_budgeted`].
    pub fn check_cached<O: SearchObserver>(
        &mut self,
        node: &Node,
        stats: &ConfidentialStats,
        budget: &BudgetState,
        cache: Option<&VerdictStore>,
        allow_inferred: bool,
        observer: &O,
    ) -> Result<ControlFlow<Termination, CacheCheck>> {
        if let Some(store) = cache {
            match store.lookup(node, allow_inferred) {
                Some(Verdict::Exact(check)) => {
                    if O::ENABLED {
                        observer.verdict_reused(node.height(), false);
                    }
                    return Ok(ControlFlow::Continue(CacheCheck {
                        satisfied: check.satisfied,
                        check: Some(check),
                        source: VerdictSource::Cached,
                    }));
                }
                Some(inferred) => {
                    if O::ENABLED {
                        observer.verdict_reused(node.height(), true);
                    }
                    return Ok(ControlFlow::Continue(CacheCheck {
                        satisfied: inferred.satisfied(),
                        check: None,
                        source: VerdictSource::Inferred,
                    }));
                }
                None => {}
            }
        }
        match self.check_budgeted(node, stats, budget, observer)? {
            ControlFlow::Break(cause) => Ok(ControlFlow::Break(cause)),
            ControlFlow::Continue(check) => {
                if let Some(store) = cache {
                    store.record(&check);
                }
                Ok(ControlFlow::Continue(CacheCheck {
                    satisfied: check.satisfied,
                    check: Some(check),
                    source: VerdictSource::Fresh,
                }))
            }
        }
    }

    /// Refines the QI partition for `node`; returns the group count.
    fn partition(&mut self, node: &Node) -> u32 {
        let ctx = self.ctx;
        if ctx.chunk_rows > 0 && ctx.n_rows > ctx.chunk_rows && ctx.threads > 1 {
            return self.partition_chunked(node);
        }
        let n = ctx.n_rows;
        self.current.clear();
        self.current.resize(n, 0);
        let mut n_groups = u32::from(n > 0);
        for (i, &level) in node.levels().iter().enumerate() {
            if !ctx.qi_is_key[i] {
                continue;
            }
            let attr = ctx.maps.attr(i);
            let lm = attr.level(level as usize);
            n_groups = self.combiner.refine_mapped(
                &mut self.current,
                n_groups,
                attr.base(),
                lm.map(),
                lm.n_codes(),
            );
        }
        for (codes, n_codes) in &ctx.static_keys {
            n_groups = self
                .combiner
                .refine(&mut self.current, n_groups, codes, *n_codes);
        }
        n_groups
    }

    /// Morsel-parallel [`Self::partition`]: the node's refinement columns
    /// (mapped QI codes at the node's levels, then static keys) feed the
    /// shared morsel executor as a [`MappedKeyKernel`], with `chunk_rows`
    /// rows per morsel — assigning global ids in whole-table
    /// first-appearance order, byte-identical to the serial refinement
    /// chain.
    fn partition_chunked(&mut self, node: &Node) -> u32 {
        let ctx = self.ctx;
        let kernel = MappedKeyKernel::new(ctx, node);
        let (current, n_groups) = group_codes(&kernel, ctx.threads, ctx.chunk_rows);
        self.current = current;
        n_groups
    }

    /// Counting sort once per node: rows ordered by group id, each group
    /// a contiguous block (the same trick as `GroupBy::distinct_per_group`,
    /// amortized over all confidential attributes).
    fn order_rows(&mut self, n_groups: u32) {
        self.offsets.clear();
        self.offsets.resize(n_groups as usize + 1, 0);
        for &g in &self.current {
            self.offsets[g as usize + 1] += 1;
        }
        for i in 1..self.offsets.len() {
            self.offsets[i] += self.offsets[i - 1];
        }
        self.cursor.clear();
        self.cursor
            .extend_from_slice(&self.offsets[..n_groups as usize]);
        self.ordered.clear();
        self.ordered.resize(self.ctx.n_rows, 0);
        for (row, &g) in self.current.iter().enumerate() {
            self.ordered[self.cursor[g as usize]] = row as u32;
            self.cursor[g as usize] += 1;
        }
    }

    /// Stage 4 for distinct-count models: per-group
    /// `COUNT(DISTINCT S_j) >= target` for every confidential attribute,
    /// over the groups surviving suppression.
    fn detailed_scan_passes(
        &mut self,
        node: &Node,
        n_groups: u32,
        suppression: bool,
        target: u32,
    ) -> bool {
        let ctx = self.ctx;
        if ctx.conf.is_empty() || n_groups == 0 {
            return true;
        }
        self.order_rows(n_groups);
        for source in &ctx.conf {
            let passes = match source {
                ConfSource::Static(codes, n_codes) => Self::attr_passes(
                    &self.ordered,
                    &self.offsets,
                    &self.sizes,
                    &mut self.stamp,
                    ctx.k,
                    target,
                    suppression,
                    *n_codes,
                    |row| codes[row],
                ),
                ConfSource::Mapped(qi_idx) => {
                    let attr = ctx.maps.attr(*qi_idx);
                    let lm = attr.level(node.levels()[*qi_idx] as usize);
                    let base = attr.base();
                    let map = lm.map();
                    Self::attr_passes(
                        &self.ordered,
                        &self.offsets,
                        &self.sizes,
                        &mut self.stamp,
                        ctx.k,
                        target,
                        suppression,
                        lm.n_codes(),
                        |row| map[base[row] as usize],
                    )
                }
            };
            if !passes {
                return false;
            }
        }
        true
    }

    /// Stage 4 for histogram models: builds each surviving group's code
    /// histogram and asks [`PrivacyModel::check_group`] for the verdict.
    /// Scans every group of an attribute (no early exit) so the folded
    /// [`ModelDetail`] is deterministic; a failing attribute still stops
    /// the remaining attributes. Returns the stage verdict plus the detail
    /// payload folded over everything scanned.
    fn histogram_scan(
        &mut self,
        node: &Node,
        n_groups: u32,
        suppression: bool,
        needs_global: bool,
    ) -> (bool, Option<ModelDetail>) {
        let ctx = self.ctx;
        if ctx.conf.is_empty() || n_groups == 0 {
            return (true, None);
        }
        self.order_rows(n_groups);
        let mut min_metric = u64::MAX;
        let mut max_metric = 0u64;
        let mut any = false;
        for (ci, source) in ctx.conf.iter().enumerate() {
            // A QI-mapped confidential column's code space depends on the
            // node's level, so its whole-table distribution is tallied
            // here; static columns were tallied once in `with_model`.
            let mapped_global: Option<CodeDistribution> = match source {
                ConfSource::Mapped(qi_idx) if needs_global => {
                    let attr = ctx.maps.attr(*qi_idx);
                    let lm = attr.level(node.levels()[*qi_idx] as usize);
                    let map = lm.map();
                    Some(CodeDistribution::from_codes(
                        attr.base().iter().map(|&b| map[b as usize]),
                        lm.n_codes(),
                    ))
                }
                _ => None,
            };
            let global = mapped_global.as_ref().or(ctx.globals[ci].as_ref());
            let passes = match source {
                ConfSource::Static(codes, n_codes) => Self::attr_histograms(
                    &self.ordered,
                    &self.offsets,
                    &self.sizes,
                    &mut self.stamp,
                    &mut self.hist,
                    &mut self.counts_buf,
                    ctx.k,
                    suppression,
                    *n_codes,
                    |row| codes[row],
                    ctx.model.as_ref(),
                    global,
                    &mut min_metric,
                    &mut max_metric,
                    &mut any,
                ),
                ConfSource::Mapped(qi_idx) => {
                    let attr = ctx.maps.attr(*qi_idx);
                    let lm = attr.level(node.levels()[*qi_idx] as usize);
                    let base = attr.base();
                    let map = lm.map();
                    Self::attr_histograms(
                        &self.ordered,
                        &self.offsets,
                        &self.sizes,
                        &mut self.stamp,
                        &mut self.hist,
                        &mut self.counts_buf,
                        ctx.k,
                        suppression,
                        lm.n_codes(),
                        |row| map[base[row] as usize],
                        ctx.model.as_ref(),
                        global,
                        &mut min_metric,
                        &mut max_metric,
                        &mut any,
                    )
                }
            };
            if !passes {
                return (
                    false,
                    any.then(|| ctx.model.node_detail(min_metric, max_metric)),
                );
            }
        }
        (
            true,
            any.then(|| ctx.model.node_detail(min_metric, max_metric)),
        )
    }

    /// Does every surviving group see at least `p` distinct codes?
    #[allow(clippy::too_many_arguments)]
    fn attr_passes(
        ordered: &[u32],
        offsets: &[usize],
        sizes: &[u32],
        stamp: &mut Vec<u32>,
        k: u32,
        p: u32,
        suppression: bool,
        n_codes: u32,
        code_of_row: impl Fn(usize) -> u32,
    ) -> bool {
        stamp.clear();
        stamp.resize(n_codes as usize, u32::MAX);
        for (g, &size) in sizes.iter().enumerate() {
            if suppression && size < k {
                continue; // group suppressed: its rows are gone
            }
            let mut distinct = 0u32;
            for &row in &ordered[offsets[g]..offsets[g + 1]] {
                let code = code_of_row(row as usize);
                if stamp[code as usize] != g as u32 {
                    stamp[code as usize] = g as u32;
                    distinct += 1;
                    if distinct >= p {
                        break; // this group already satisfies p
                    }
                }
            }
            if distinct < p {
                return false;
            }
        }
        true
    }

    /// Histogram-mode scan of one confidential attribute: per surviving
    /// group, tallies `(code, count)` pairs (codes in ascending order —
    /// the stamp doubles as a lazy reset, and the pairs are sorted before
    /// the model sees them) and folds the model's per-group metrics into
    /// `min_metric`/`max_metric`. Returns whether every group passed.
    #[allow(clippy::too_many_arguments)]
    fn attr_histograms(
        ordered: &[u32],
        offsets: &[usize],
        sizes: &[u32],
        stamp: &mut Vec<u32>,
        hist: &mut Vec<u32>,
        counts_buf: &mut Vec<(u32, u32)>,
        k: u32,
        suppression: bool,
        n_codes: u32,
        code_of_row: impl Fn(usize) -> u32,
        model: &dyn PrivacyModel,
        global: Option<&CodeDistribution>,
        min_metric: &mut u64,
        max_metric: &mut u64,
        any: &mut bool,
    ) -> bool {
        stamp.clear();
        stamp.resize(n_codes as usize, u32::MAX);
        hist.clear();
        hist.resize(n_codes as usize, 0);
        let mut all_pass = true;
        for (g, &size) in sizes.iter().enumerate() {
            if suppression && size < k {
                continue; // group suppressed: its rows are gone
            }
            counts_buf.clear();
            for &row in &ordered[offsets[g]..offsets[g + 1]] {
                let code = code_of_row(row as usize);
                if stamp[code as usize] != g as u32 {
                    stamp[code as usize] = g as u32;
                    hist[code as usize] = 0;
                    counts_buf.push((code, 0));
                }
                hist[code as usize] += 1;
            }
            counts_buf.sort_unstable_by_key(|&(code, _)| code);
            for entry in counts_buf.iter_mut() {
                entry.1 = hist[entry.0 as usize];
            }
            let verdict = model.check_group(counts_buf, size, global);
            *any = true;
            *min_metric = (*min_metric).min(verdict.metric);
            *max_metric = (*max_metric).max(verdict.metric);
            if !verdict.passes {
                all_pass = false;
            }
        }
        all_pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_hierarchy::builders::{flat_hierarchy, prefix_hierarchy};
    use psens_hierarchy::{Hierarchy, QiSpace};
    use psens_microdata::{table_from_str_rows, Attribute, Schema, Table};

    /// Figure 3's microdata with an identifier and a confidential attribute.
    fn table() -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_identifier("Name"),
            Attribute::cat_key("Sex"),
            Attribute::cat_key("ZipCode"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["n0", "M", "41076", "Flu"],
                &["n1", "F", "41099", "HIV"],
                &["n2", "M", "41099", "Asthma"],
                &["n3", "M", "41076", "HIV"],
                &["n4", "F", "43102", "Flu"],
                &["n5", "M", "43102", "Asthma"],
                &["n6", "M", "43102", "HIV"],
                &["n7", "F", "43103", "Flu"],
                &["n8", "M", "48202", "Asthma"],
                &["n9", "M", "48201", "Flu"],
            ],
        )
        .unwrap()
    }

    fn qi() -> QiSpace {
        QiSpace::new(vec![
            ("Sex".into(), flat_hierarchy(vec!["M", "F"]).unwrap()),
            (
                "ZipCode".into(),
                Hierarchy::Cat(
                    prefix_hierarchy(
                        vec!["41076", "41099", "43102", "43103", "48201", "48202"],
                        &[2, 0],
                    )
                    .unwrap(),
                ),
            ),
        ])
        .unwrap()
    }

    /// The kernel's verdict must match the materializing pipeline on every
    /// node of the Figure 2 lattice, across (k, p, TS) settings.
    #[test]
    fn agrees_with_materializing_evaluate() {
        let t = table();
        let qi = qi();
        for k in [1u32, 2, 3, 11] {
            for p in [1u32, 2, 4] {
                for ts in [0usize, 2, 7, 10] {
                    let ctx = MaskingContext {
                        initial: &t,
                        qi: &qi,
                        k,
                        p,
                        ts,
                    };
                    let stats = ctx.initial_stats();
                    let ectx = EvalContext::build(&ctx).unwrap();
                    let mut eval = ectx.evaluator();
                    for node in qi.lattice().all_nodes() {
                        let slow = ctx.evaluate(&node, &stats).unwrap();
                        let fast = eval.check(&node, &stats).unwrap();
                        let setting = format!("k={k} p={p} ts={ts} node={node}");
                        assert_eq!(fast.satisfied, slow.satisfied, "{setting}");
                        assert_eq!(fast.stage, slow.stage, "{setting}");
                        assert_eq!(fast.suppressed, slow.suppressed, "{setting}");
                        assert_eq!(fast.violating_tuples, slow.violating_tuples, "{setting}");
                        assert_eq!(fast.n_groups, slow.n_groups, "{setting}");
                    }
                }
            }
        }
    }

    #[test]
    fn chunked_partition_agrees_with_serial_kernel() {
        let t = table();
        let qi = qi();
        for (k, p, ts) in [(2u32, 1u32, 0usize), (3, 2, 2), (2, 2, 7)] {
            let ctx = MaskingContext {
                initial: &t,
                qi: &qi,
                k,
                p,
                ts,
            };
            let stats = ctx.initial_stats();
            let serial_ctx = EvalContext::build(&ctx).unwrap();
            let mut serial = serial_ctx.evaluator();
            for chunk_rows in [1usize, 3, 7] {
                for threads in [1usize, 2, 8] {
                    let chunked_ctx = EvalContext::build(&ctx)
                        .unwrap()
                        .with_chunked_partition(chunk_rows, threads);
                    let mut chunked = chunked_ctx.evaluator();
                    for node in qi.lattice().all_nodes() {
                        assert_eq!(
                            chunked.check(&node, &stats).unwrap(),
                            serial.check(&node, &stats).unwrap(),
                            "k={k} p={p} ts={ts} chunk_rows={chunk_rows} threads={threads} node={node}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn invalid_nodes_rejected_like_apply() {
        let t = table();
        let qi = qi();
        let ctx = MaskingContext {
            initial: &t,
            qi: &qi,
            k: 2,
            p: 1,
            ts: 0,
        };
        let ectx = EvalContext::build(&ctx).unwrap();
        let stats = ctx.initial_stats();
        let mut eval = ectx.evaluator();
        assert!(eval.check(&Node(vec![9, 0]), &stats).is_err());
        assert!(eval.check(&Node(vec![0]), &stats).is_err());
        assert!(eval.check(&Node(vec![0, 0, 0]), &stats).is_err());
    }

    #[test]
    fn context_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<EvalContext>();
    }

    #[test]
    fn cached_checks_replay_exactly_and_skip_the_budget() {
        use crate::budget::SearchBudget;
        use crate::observe::NoopObserver;
        use crate::verdict::VerdictStore;

        let t = table();
        let qi = qi();
        let ctx = MaskingContext {
            initial: &t,
            qi: &qi,
            k: 2,
            p: 1,
            ts: 2,
        };
        let stats = ctx.initial_stats();
        let ectx = EvalContext::build(&ctx).unwrap();
        let mut eval = ectx.evaluator();
        let store = VerdictStore::new(&qi.lattice(), 2);

        // Warm the store with fresh checks under an unlimited budget.
        // `allow_inferred = false` so closure-inferred entries (a pass at a
        // lower node marks its ancestors) are upgraded to exact records.
        let unlimited = SearchBudget::unlimited().start();
        for node in qi.lattice().all_nodes() {
            let got = eval
                .check_cached(
                    &node,
                    &stats,
                    &unlimited,
                    Some(&store),
                    false,
                    &NoopObserver,
                )
                .unwrap();
            let ControlFlow::Continue(cc) = got else {
                panic!("unlimited budget never breaks")
            };
            assert_eq!(cc.source, VerdictSource::Fresh, "{node}");
            assert_eq!(cc.check.unwrap(), eval.check(&node, &stats).unwrap());
        }

        // A zero node budget trips immediately without the cache ...
        let zero_cold = SearchBudget::unlimited().with_max_nodes(0).start();
        let cold = eval
            .check_budgeted(&qi.lattice().bottom(), &stats, &zero_cold, &NoopObserver)
            .unwrap();
        assert!(matches!(cold, ControlFlow::Break(_)));

        // ... but the warm store answers every node without admission.
        let zero_warm = SearchBudget::unlimited().with_max_nodes(0).start();
        for node in qi.lattice().all_nodes() {
            let got = eval
                .check_cached(&node, &stats, &zero_warm, Some(&store), true, &NoopObserver)
                .unwrap();
            let ControlFlow::Continue(cc) = got else {
                panic!("warm store must bypass the tripped budget at {node}")
            };
            assert_eq!(cc.source, VerdictSource::Cached, "{node}");
            assert_eq!(cc.check.unwrap(), eval.check(&node, &stats).unwrap());
        }
    }

    #[test]
    fn model_kernel_agrees_with_table_level_check() {
        use crate::model::{check_table_model, ModelSpec};

        let t = table();
        let qi = qi();
        let specs = [
            ModelSpec::PSensitiveK { p: 2 },
            ModelSpec::DistinctL { l: 2 },
            ModelSpec::EntropyL { l: 2 },
            ModelSpec::TCloseness { t_ppm: 350_000 },
        ];
        for spec in specs {
            for k in [1u32, 2, 3] {
                let ctx = MaskingContext {
                    initial: &t,
                    qi: &qi,
                    k,
                    p: spec.conditions_p(),
                    ts: 0,
                };
                let stats = ctx.initial_stats();
                let ectx = EvalContext::build(&ctx).unwrap().with_model(spec);
                let mut eval = ectx.evaluator();
                for node in qi.lattice().all_nodes() {
                    let fast = eval.check(&node, &stats).unwrap();
                    // Materialize the generalized table (ts = 0: no
                    // suppression) and run the slow table-level oracle.
                    let masked = qi.apply(&t, &node).unwrap().drop_identifiers();
                    let slow = check_table_model(
                        &masked,
                        &masked.schema().key_indices(),
                        &masked.schema().confidential_indices(),
                        spec.instantiate().as_ref(),
                        k,
                    );
                    assert_eq!(
                        fast.satisfied,
                        slow.satisfied(),
                        "{} k={k} node={node}",
                        spec.describe()
                    );
                }
            }
        }
    }

    /// A deliberately non-monotone toy model: a group passes iff its
    /// confidential distinct count is *exactly* 2, so merging groups can
    /// turn a pass into a failure — neither closure direction is sound.
    #[derive(Debug)]
    struct ExactlyTwo;

    impl crate::model::PrivacyModel for ExactlyTwo {
        fn name(&self) -> &'static str {
            "exactly-two"
        }
        fn is_monotone(&self) -> bool {
            false
        }
        fn conditions_p(&self) -> u32 {
            1
        }
        fn mode(&self) -> crate::model::GroupCheckMode {
            crate::model::GroupCheckMode::Histogram {
                needs_global: false,
            }
        }
        fn check_group(
            &self,
            counts: &[(u32, u32)],
            _group_size: u32,
            _global: Option<&crate::model::CodeDistribution>,
        ) -> crate::model::GroupVerdict {
            crate::model::GroupVerdict {
                passes: counts.len() == 2,
                metric: counts.len() as u64,
            }
        }
        fn node_detail(&self, min_metric: u64, _max_metric: u64) -> crate::model::ModelDetail {
            crate::model::ModelDetail::MinDistinct(min_metric as u32)
        }
    }

    #[test]
    fn non_monotone_toy_model_never_gets_inferred_verdicts() {
        use crate::budget::SearchBudget;
        use crate::observe::NoopObserver;
        use crate::verdict::VerdictStore;
        use std::sync::Arc;

        let t = table();
        let qi = qi();
        let ctx = MaskingContext {
            initial: &t,
            qi: &qi,
            k: 2,
            p: 1,
            ts: 2,
        };
        let stats = ctx.initial_stats();
        let model: Arc<dyn crate::model::PrivacyModel> = Arc::new(ExactlyTwo);
        let ectx = EvalContext::build(&ctx)
            .unwrap()
            .with_model_object(Arc::clone(&model));
        let mut eval = ectx.evaluator();
        let store = VerdictStore::for_model(&qi.lattice(), 2, model.is_monotone());

        // Check every node twice through the caching path, inferred
        // verdicts welcome: with closure refused, the second pass must be
        // answered by exact replays only.
        let budget = SearchBudget::unlimited().start();
        for _ in 0..2 {
            for node in qi.lattice().all_nodes() {
                let got = eval
                    .check_cached(&node, &stats, &budget, Some(&store), true, &NoopObserver)
                    .unwrap();
                let ControlFlow::Continue(cc) = got else {
                    panic!("unlimited budget never breaks")
                };
                assert_ne!(cc.source, VerdictSource::Inferred, "{node}");
            }
        }
        let counters = store.counters();
        assert_eq!(counters.recorded_inferred, 0, "closure must never run");
        assert_eq!(counters.inferred_hits, 0);
        assert_eq!(counters.recorded_exact as usize, qi.lattice().node_count());
        assert_eq!(counters.hits as usize, qi.lattice().node_count());
        assert_eq!(store.len(), qi.lattice().node_count());
    }

    #[test]
    fn empty_table_passes_vacuously() {
        let t = table().filter(|_| false);
        let qi = qi();
        let ctx = MaskingContext {
            initial: &t,
            qi: &qi,
            k: 3,
            p: 1,
            ts: 0,
        };
        let stats = ctx.initial_stats();
        let ectx = EvalContext::build(&ctx).unwrap();
        let mut eval = ectx.evaluator();
        let slow = ctx.evaluate(&Node(vec![0, 0]), &stats).unwrap();
        let fast = eval.check(&Node(vec![0, 0]), &stats).unwrap();
        assert_eq!(fast.satisfied, slow.satisfied);
        assert_eq!(fast.stage, slow.stage);
    }
}
