//! p-sensitive k-anonymity (paper Definition 2) and the basic checker
//! (paper Algorithm 1).
//!
//! > *The masked microdata (MM) satisfies p-sensitive k-anonymity property if
//! > it satisfies k-anonymity, and for each group of tuples with the
//! > identical combination of key attribute values that exists in MM, the
//! > number of distinct values for each confidential attribute occurs at
//! > least p times within the same group.*

use crate::kanonymity::report_from_groups;
use psens_microdata::{ChunkedTable, GroupBy, Table, Value};
use serde::Serialize;

/// One p-sensitivity violation: a QI-group in which some confidential
/// attribute takes fewer than `p` distinct values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SensitivityViolation {
    /// Group id in the grouping that produced this report.
    pub group: u32,
    /// Size of the offending group.
    pub group_size: u32,
    /// Index (into the schema) of the offending confidential attribute.
    pub attribute: usize,
    /// Name of the offending confidential attribute.
    pub attribute_name: String,
    /// Distinct values that attribute takes within the group.
    pub distinct: u32,
}

/// Result of checking p-sensitive k-anonymity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PSensitivityReport {
    /// The `p` that was checked.
    pub p: u32,
    /// The `k` that was checked.
    pub k: u32,
    /// Whether k-anonymity holds.
    pub k_anonymous: bool,
    /// Number of QI-groups.
    pub n_groups: usize,
    /// All `(group, attribute)` pairs violating p-sensitivity. Empty when
    /// the sensitivity half of the property holds.
    pub violations: Vec<SensitivityViolation>,
}

impl PSensitivityReport {
    /// True when the table satisfies p-sensitive k-anonymity.
    pub fn satisfied(&self) -> bool {
        self.k_anonymous && self.violations.is_empty()
    }
}

/// Checks Definition 2 for `table`: k-anonymity over `keys` plus at least `p`
/// distinct values of every confidential attribute inside every QI-group.
///
/// This is the paper's **Algorithm 1** (basic test), except that instead of
/// breaking at the first failing group it collects every violation, which the
/// experiments (Table 8) need for disclosure counting. Use
/// [`is_p_sensitive_k_anonymous`] for the early-exit boolean form.
pub fn check_p_sensitivity(
    table: &Table,
    keys: &[usize],
    confidential: &[usize],
    p: u32,
    k: u32,
) -> PSensitivityReport {
    let groups = GroupBy::compute(table, keys);
    let k_report = report_from_groups(&groups, k);
    let mut violations = Vec::new();
    for &attr in confidential {
        let distinct = groups.distinct_per_group(table.column(attr));
        for (g, &d) in distinct.iter().enumerate() {
            if d < p {
                violations.push(SensitivityViolation {
                    group: g as u32,
                    group_size: groups.sizes()[g],
                    attribute: attr,
                    attribute_name: table.schema().attribute(attr).name().to_owned(),
                    distinct: d,
                });
            }
        }
    }
    violations.sort_by_key(|v| (v.group, v.attribute));
    PSensitivityReport {
        p,
        k,
        k_anonymous: k_report.satisfied(),
        n_groups: groups.n_groups(),
        violations,
    }
}

/// [`check_p_sensitivity`] over a [`ChunkedTable`], chunk-parallel on
/// `threads` workers and without materializing the table: the grouping comes
/// from [`GroupBy::compute_chunked`] and each confidential attribute is
/// densified chunk-parallel via [`ChunkedTable::dense_codes`]. The report is
/// equal (`==`) to the serial one on `chunked.to_table()`.
pub fn check_p_sensitivity_chunked(
    chunked: &ChunkedTable,
    keys: &[usize],
    confidential: &[usize],
    p: u32,
    k: u32,
    threads: usize,
) -> PSensitivityReport {
    let groups = GroupBy::compute_chunked(chunked, keys, threads);
    let k_report = report_from_groups(&groups, k);
    let mut violations = Vec::new();
    for &attr in confidential {
        let (codes, n_codes) = chunked.dense_codes(attr, threads);
        let distinct = groups.distinct_codes_per_group(&codes, n_codes);
        for (g, &d) in distinct.iter().enumerate() {
            if d < p {
                violations.push(SensitivityViolation {
                    group: g as u32,
                    group_size: groups.sizes()[g],
                    attribute: attr,
                    attribute_name: chunked.schema().attribute(attr).name().to_owned(),
                    distinct: d,
                });
            }
        }
    }
    violations.sort_by_key(|v| (v.group, v.attribute));
    PSensitivityReport {
        p,
        k,
        k_anonymous: k_report.satisfied(),
        n_groups: groups.n_groups(),
        violations,
    }
}

/// The paper's Algorithm 1 with its early exit: returns as soon as
/// k-anonymity fails or any group/attribute pair has fewer than `p` distinct
/// values.
pub fn is_p_sensitive_k_anonymous(
    table: &Table,
    keys: &[usize],
    confidential: &[usize],
    p: u32,
    k: u32,
) -> bool {
    let groups = GroupBy::compute(table, keys);
    if groups.rows_in_small_groups(k) > 0 {
        return false;
    }
    for &attr in confidential {
        let distinct = groups.distinct_per_group(table.column(attr));
        if distinct.iter().any(|&d| d < p) {
            return false;
        }
    }
    true
}

/// The largest `p` such that the sensitivity half of Definition 2 holds:
/// the minimum, over QI-groups and confidential attributes, of the per-group
/// distinct-value count. Returns 0 for an empty table.
///
/// In the paper's Table 3 walkthrough this is the "value of p" found by
/// analyzing each group.
pub fn max_p_of_masked(table: &Table, keys: &[usize], confidential: &[usize]) -> u32 {
    let groups = GroupBy::compute(table, keys);
    if groups.n_groups() == 0 {
        return 0;
    }
    confidential
        .iter()
        .map(|&attr| {
            groups
                .distinct_per_group(table.column(attr))
                .into_iter()
                .min()
                .unwrap_or(0)
        })
        .min()
        .unwrap_or(0)
}

/// [`max_p_of_masked`] over a [`ChunkedTable`], chunk-parallel on `threads`
/// workers. Equal to the serial value on `chunked.to_table()`.
pub fn max_p_of_masked_chunked(
    chunked: &ChunkedTable,
    keys: &[usize],
    confidential: &[usize],
    threads: usize,
) -> u32 {
    let groups = GroupBy::compute_chunked(chunked, keys, threads);
    if groups.n_groups() == 0 {
        return 0;
    }
    confidential
        .iter()
        .map(|&attr| {
            let (codes, n_codes) = chunked.dense_codes(attr, threads);
            groups
                .distinct_codes_per_group(&codes, n_codes)
                .into_iter()
                .min()
                .unwrap_or(0)
        })
        .min()
        .unwrap_or(0)
}

/// Per-group sensitivity profile: for each QI-group, its key, size, and the
/// distinct-value count of each confidential attribute. Used by examples and
/// the experiment harness to render the paper's walkthroughs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GroupProfile {
    /// Key-attribute values identifying the group.
    pub key: Vec<Value>,
    /// Number of tuples in the group.
    pub size: u32,
    /// Distinct count per confidential attribute, in `confidential` order.
    pub distinct: Vec<u32>,
}

/// Computes [`GroupProfile`]s for every QI-group.
pub fn group_profiles(table: &Table, keys: &[usize], confidential: &[usize]) -> Vec<GroupProfile> {
    let groups = GroupBy::compute(table, keys);
    let per_attr: Vec<Vec<u32>> = confidential
        .iter()
        .map(|&attr| groups.distinct_per_group(table.column(attr)))
        .collect();
    (0..groups.n_groups())
        .map(|g| GroupProfile {
            key: groups.key_of_group(table, g),
            size: groups.sizes()[g],
            distinct: per_attr.iter().map(|d| d[g]).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    /// Paper Table 3: masked microdata satisfying 1-sensitive 3-anonymity.
    fn table3() -> Table {
        let schema = Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_key("ZipCode"),
            Attribute::cat_key("Sex"),
            Attribute::cat_confidential("Illness"),
            Attribute::int_confidential("Income"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["20", "43102", "F", "AIDS", "50000"],
                &["20", "43102", "F", "AIDS", "50000"],
                &["20", "43102", "F", "Diabetes", "50000"],
                &["30", "43102", "M", "Diabetes", "30000"],
                &["30", "43102", "M", "Diabetes", "40000"],
                &["30", "43102", "M", "Heart Disease", "30000"],
                &["30", "43102", "M", "Heart Disease", "40000"],
            ],
        )
        .unwrap()
    }

    /// Table 3 with the paper's suggested fix: first tuple's income becomes
    /// 40,000, making the microdata 2-sensitive.
    fn table3_fixed() -> Table {
        let schema = table3().schema().clone();
        table_from_str_rows(
            schema,
            &[
                &["20", "43102", "F", "AIDS", "40000"],
                &["20", "43102", "F", "AIDS", "50000"],
                &["20", "43102", "F", "Diabetes", "50000"],
                &["30", "43102", "M", "Diabetes", "30000"],
                &["30", "43102", "M", "Diabetes", "40000"],
                &["30", "43102", "M", "Heart Disease", "30000"],
                &["30", "43102", "M", "Heart Disease", "40000"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn table3_is_1_sensitive_3_anonymous() {
        let t = table3();
        let keys = t.schema().key_indices();
        let conf = t.schema().confidential_indices();
        // 3-anonymous: groups of size 3 and 4.
        assert!(is_p_sensitive_k_anonymous(&t, &keys, &conf, 1, 3));
        // But only 1-sensitive: the first group has a single income.
        assert!(!is_p_sensitive_k_anonymous(&t, &keys, &conf, 2, 3));
        assert_eq!(max_p_of_masked(&t, &keys, &conf), 1);
    }

    #[test]
    fn table3_violation_details() {
        let t = table3();
        let keys = t.schema().key_indices();
        let conf = t.schema().confidential_indices();
        let report = check_p_sensitivity(&t, &keys, &conf, 2, 3);
        assert!(!report.satisfied());
        assert!(report.k_anonymous);
        assert_eq!(report.n_groups, 2);
        // Exactly one violation: the (20, 43102, F) group's Income.
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.attribute_name, "Income");
        assert_eq!(v.distinct, 1);
        assert_eq!(v.group_size, 3);
    }

    #[test]
    fn table3_fixed_is_2_sensitive() {
        // "If the first tuple would have a different value for income (such
        // as 40,000) then both groups would have two different illnesses and
        // two different incomes, and the value of p would be 2."
        let t = table3_fixed();
        let keys = t.schema().key_indices();
        let conf = t.schema().confidential_indices();
        assert_eq!(max_p_of_masked(&t, &keys, &conf), 2);
        assert!(is_p_sensitive_k_anonymous(&t, &keys, &conf, 2, 3));
        assert!(check_p_sensitivity(&t, &keys, &conf, 2, 3).satisfied());
    }

    #[test]
    fn p_cannot_exceed_k() {
        // p <= k always: a group of size k holds at most k distinct values.
        let t = table3_fixed();
        let keys = t.schema().key_indices();
        let conf = t.schema().confidential_indices();
        let p = max_p_of_masked(&t, &keys, &conf);
        let k = crate::kanonymity::max_k(&t, &keys);
        assert!(p <= k);
    }

    #[test]
    fn k_failure_means_property_fails() {
        let t = table3();
        let keys = t.schema().key_indices();
        let conf = t.schema().confidential_indices();
        // 4-anonymity fails (one group has 3 tuples), so any p fails with it.
        assert!(!is_p_sensitive_k_anonymous(&t, &keys, &conf, 1, 4));
        let report = check_p_sensitivity(&t, &keys, &conf, 1, 4);
        assert!(!report.satisfied());
        assert!(!report.k_anonymous);
    }

    #[test]
    fn group_profiles_match_paper_walkthrough() {
        let t = table3();
        let keys = t.schema().key_indices();
        let conf = t.schema().confidential_indices();
        let profiles = group_profiles(&t, &keys, &conf);
        assert_eq!(profiles.len(), 2);
        // First group (20, 43102, F): 2 illnesses, 1 income.
        let g1 = &profiles[0];
        assert_eq!(g1.size, 3);
        assert_eq!(g1.distinct, vec![2, 1]);
        // Second group (30, 43102, M): 2 illnesses, 2 incomes.
        let g2 = &profiles[1];
        assert_eq!(g2.size, 4);
        assert_eq!(g2.distinct, vec![2, 2]);
    }

    #[test]
    fn chunked_check_equals_serial_report() {
        for t in [table3(), table3_fixed()] {
            let keys = t.schema().key_indices();
            let conf = t.schema().confidential_indices();
            for (p, k) in [(1u32, 3u32), (2, 3), (1, 4), (3, 1)] {
                let serial = check_p_sensitivity(&t, &keys, &conf, p, k);
                for chunk_rows in [1usize, 2, 4096] {
                    let chunked = ChunkedTable::from_table(&t, chunk_rows);
                    for threads in [1usize, 2, 8] {
                        assert_eq!(
                            check_p_sensitivity_chunked(&chunked, &keys, &conf, p, k, threads),
                            serial,
                            "p={p} k={k} chunk_rows={chunk_rows} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_table_edge_cases() {
        let t = table3().filter(|_| false);
        let keys = t.schema().key_indices();
        let conf = t.schema().confidential_indices();
        assert_eq!(max_p_of_masked(&t, &keys, &conf), 0);
        // Vacuously satisfied: no group violates anything.
        assert!(is_p_sensitive_k_anonymous(&t, &keys, &conf, 3, 3));
        assert!(group_profiles(&t, &keys, &conf).is_empty());
    }

    #[test]
    fn no_confidential_attributes_is_plain_k_anonymity() {
        let t = table3();
        let keys = t.schema().key_indices();
        assert!(is_p_sensitive_k_anonymous(&t, &keys, &[], 99, 3));
        assert!(!is_p_sensitive_k_anonymous(&t, &keys, &[], 2, 4));
    }
}
