//! Theorems 1 and 2 (paper Section 3): the initial microdata's `maxP` and
//! `maxGroups` upper-bound those of any masked microdata derived by
//! generalization followed by suppression — so the necessary conditions may
//! be checked once against initial-microdata statistics.
//!
//! The theorems are proved in the paper; this module provides executable
//! checks of the inequalities (used by property tests as an oracle, and by
//! callers who want runtime verification when composing custom pipelines).

use crate::conditions::{ConfidentialStats, MaxGroups};

/// Verifies Theorem 1 for a concrete pair of statistics:
/// `maxP(IM) >= maxP(MM)`.
pub fn theorem1_holds(initial: &ConfidentialStats, masked: &ConfidentialStats) -> bool {
    initial.max_p() >= masked.max_p()
}

/// Verifies Theorem 2 for a concrete pair of statistics and one `p`:
/// `maxGroups(IM) >= maxGroups(MM)`.
///
/// `Unbounded` dominates every bound; `Unsatisfiable` is dominated by every
/// bound (the masked microdata cannot do better than the initial one).
pub fn theorem2_holds(initial: &ConfidentialStats, masked: &ConfidentialStats, p: u32) -> bool {
    match (initial.max_groups(p), masked.max_groups(p)) {
        (MaxGroups::Unbounded, _) => true,
        (_, MaxGroups::Unsatisfiable) => true,
        (MaxGroups::Unsatisfiable, _) => false,
        (MaxGroups::Bounded(im), MaxGroups::Bounded(mm)) => im >= mm,
        (MaxGroups::Bounded(_), MaxGroups::Unbounded) => false,
    }
}

/// Verifies both theorems across every valid `p` for the masked statistics.
pub fn theorems_hold(initial: &ConfidentialStats, masked: &ConfidentialStats) -> bool {
    if !theorem1_holds(initial, masked) {
        return false;
    }
    let limit = match masked.max_p() {
        usize::MAX => return true, // no confidential attributes: vacuous
        max_p => max_p,
    };
    (2..=limit as u32).all(|p| theorem2_holds(initial, masked, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, Schema, Table};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::cat_key("Zip"),
            Attribute::cat_confidential("S1"),
            Attribute::cat_confidential("S2"),
        ])
        .unwrap()
    }

    fn initial() -> Table {
        table_from_str_rows(
            schema(),
            &[
                &["A", "x", "p"],
                &["A", "x", "q"],
                &["A", "y", "p"],
                &["B", "y", "q"],
                &["B", "z", "r"],
                &["B", "z", "p"],
                &["C", "x", "q"],
                &["C", "w", "p"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn suppression_respects_both_theorems() {
        let im = initial();
        let im_stats = ConfidentialStats::compute(&im, &[1, 2]);
        // Suppress rows in every possible prefix pattern.
        for mask in 0..256u32 {
            let mm = im.filter(|row| mask & (1 << row) == 0);
            let mm_stats = ConfidentialStats::compute(&mm, &[1, 2]);
            assert!(
                theorem1_holds(&im_stats, &mm_stats),
                "theorem 1 violated by mask {mask:08b}"
            );
            assert!(
                theorems_hold(&im_stats, &mm_stats),
                "theorem 2 violated by mask {mask:08b}"
            );
        }
    }

    #[test]
    fn generalization_is_invariant() {
        // Generalization never touches confidential attributes, so the
        // statistics are literally identical — both theorems hold with
        // equality.
        let im = initial();
        let im_stats = ConfidentialStats::compute(&im, &[1, 2]);
        assert!(theorem1_holds(&im_stats, &im_stats));
        assert!(theorems_hold(&im_stats, &im_stats));
    }

    #[test]
    fn unrelated_tables_can_violate() {
        // Sanity: the checks are not tautologies. A "masked" table with MORE
        // distinct confidential values than the initial one breaks Theorem 1.
        let im = table_from_str_rows(schema(), &[&["A", "x", "p"], &["A", "x", "q"]]).unwrap();
        let mm = initial();
        let im_stats = ConfidentialStats::compute(&im, &[1, 2]);
        let mm_stats = ConfidentialStats::compute(&mm, &[1, 2]);
        assert!(!theorem1_holds(&im_stats, &mm_stats));
    }

    #[test]
    fn theorem2_lattice_of_bounds() {
        let im = initial();
        let im_stats = ConfidentialStats::compute(&im, &[1, 2]);
        let empty_stats = ConfidentialStats::compute(&im.filter(|_| false), &[1, 2]);
        // Empty masked table: max_p = 0, every p is Unsatisfiable for it.
        assert!(theorem2_holds(&im_stats, &empty_stats, 2));
        // No confidential attributes on the initial side: Unbounded wins.
        let no_conf = ConfidentialStats::compute(&im, &[]);
        assert!(theorem2_holds(&no_conf, &im_stats, 2));
    }
}
