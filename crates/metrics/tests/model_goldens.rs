//! Per-model goldens on the successor papers' worked examples.
//!
//! The l-diversity paper's inpatient tables and the t-closeness paper's
//! salary table come with numbers the papers state or that follow from
//! their frequencies by closed form. Each golden is pinned twice: once
//! through the reporting metrics (`diversity_report`, `closeness_report`)
//! and once through the enforcing `psens_core` models, so the two stacks
//! can never drift apart silently.

use psens_core::{
    check_table_model, DistinctLDiversity, EntropyLDiversity, ModelDetail, TCloseness,
};
use psens_datasets::related;
use psens_metrics::{closeness_report, diversity_report};

/// l-diversity paper Table 2: the 4-anonymous release with a homogeneous
/// Cancer group. Distinct l collapses to 1 and the intruder's best guess
/// is certain — the homogeneity attack in numbers.
#[test]
fn ldiv_table2_exhibits_the_homogeneity_attack() {
    let t = related::ldiv_table2_inpatient_4anonymous();
    let keys = t.schema().key_indices();
    let report = diversity_report(&t, &keys, 3).unwrap();
    assert_eq!(report.distinct_l, 1);
    assert!((report.max_confidence - 1.0).abs() < 1e-12);
    // The enforcing model agrees: distinct 2-diversity fails even though
    // 4-anonymity holds.
    let conf = t.schema().confidential_indices();
    let model = check_table_model(&t, &keys, &conf, &DistinctLDiversity { l: 2 }, 4);
    assert!(model.k_anonymous);
    assert_eq!(model.violating_pairs, 1, "exactly the Cancer group");
    assert_eq!(model.detail, Some(ModelDetail::MinDistinct(1)));
}

/// l-diversity paper Table 4: every group carries three conditions with
/// frequencies (2, 1, 1), so the release is distinct 3-diverse but only
/// entropy 2√2-diverse (H = 1.5·ln 2 per group) — the paper's own gap
/// between the two variants.
#[test]
fn ldiv_table4_goldens_split_distinct_from_entropy() {
    let t = related::ldiv_table4_inpatient_3diverse();
    let keys = t.schema().key_indices();
    let conf = t.schema().confidential_indices();
    let report = diversity_report(&t, &keys, 3).unwrap();
    assert_eq!(report.distinct_l, 3);
    let two_sqrt_two = 2.0 * std::f64::consts::SQRT_2;
    assert!(
        (report.entropy_l - two_sqrt_two).abs() < 1e-9,
        "entropy_l = {}",
        report.entropy_l
    );
    assert!((report.max_confidence - 0.5).abs() < 1e-12);
    // Enforcement: distinct 3-diversity holds, entropy 3-diversity does
    // not (2√2 < 3), entropy 2-diversity does.
    assert!(check_table_model(&t, &keys, &conf, &DistinctLDiversity { l: 3 }, 4).satisfied());
    let entropy3 = check_table_model(&t, &keys, &conf, &EntropyLDiversity { l: 3 }, 4);
    assert_eq!(entropy3.violating_pairs, 3, "all three groups miss ln 3");
    let entropy2 = check_table_model(&t, &keys, &conf, &EntropyLDiversity { l: 2 }, 4);
    assert!(entropy2.satisfied());
    // H = 1.5·ln 2 = 1.039720… nats, in micro-nats on the wire.
    assert_eq!(
        entropy2.detail,
        Some(ModelDetail::MinEntropyMicroNats(1_039_721))
    );
}

/// t-closeness paper Table 3: 3-diverse, yet the first group holds the
/// three lowest salaries. Under the equal-distance ground metric each
/// group's salary EMD is 3·|1/3 − 1/9|/2 + 6·(1/9)/2 = 2/3, and each
/// disease EMD is 4/9 — diversity passes while closeness fails, the
/// paper's motivating skew.
#[test]
fn tclose_table3_goldens_split_diversity_from_closeness() {
    let t = related::tclose_table3_salary_3diverse();
    let keys = t.schema().key_indices();
    let conf = t.schema().confidential_indices();
    // Distinct 3-diversity holds on both confidential attributes.
    assert!(check_table_model(&t, &keys, &conf, &DistinctLDiversity { l: 3 }, 3).satisfied());
    // Salary (attribute 2): nine distinct values, three per group.
    let salary = closeness_report(&t, &keys, 2).unwrap();
    assert!((salary.max_emd - 2.0 / 3.0).abs() < 1e-12);
    assert!((salary.mean_emd - 2.0 / 3.0).abs() < 1e-12);
    // Disease (attribute 3): six distinct values with multiplicities
    // (1, 2, 2, 1, 2, 1).
    let disease = closeness_report(&t, &keys, 3).unwrap();
    assert!((disease.max_emd - 4.0 / 9.0).abs() < 1e-12);
    // Enforcement across both attributes: the salary distance 2/3 is the
    // table's worst, so t = 0.67 admits the release and t = 0.66 rejects
    // it.
    let admit = check_table_model(&t, &keys, &conf, &TCloseness { t_ppm: 670_000 }, 3);
    assert!(admit.satisfied());
    assert_eq!(admit.detail, Some(ModelDetail::MaxEmdPpm(666_667)));
    let reject = check_table_model(&t, &keys, &conf, &TCloseness { t_ppm: 660_000 }, 3);
    assert_eq!(reject.violating_pairs, 3, "every group's salary is too far");
}
