//! Utility metrics on the paper's worked examples, and their invariance
//! under the chunked data layer: a table reassembled from chunks (any chunk
//! size, shared or independently interned dictionaries) must score exactly
//! like the buffered original.

use psens_datasets::paper;
use psens_metrics::{avg_class_size, discernibility, suppression_ratio};
use psens_microdata::{ChunkedTable, GroupBy, Table};

/// Table 1 splits into three groups of two on its key attributes, so each
/// tuple is charged 2: DM = 3 · 2² = 12.
#[test]
fn discernibility_of_table1_is_twelve() {
    let t = paper::table1_patients();
    let keys = t.schema().key_indices();
    assert_eq!(discernibility(&t, &keys, 0, t.n_rows()), 12);
    // Suppressing one tuple charges it the whole table instead.
    assert_eq!(discernibility(&t, &keys, 1, t.n_rows()), 18);
}

/// Table 1 is exactly 2-anonymous: its groups are as small as k = 2 allows,
/// so C_avg = 6 / (3 · 2) = 1. Judged against k = 1 the same grouping is
/// twice as coarse as necessary.
#[test]
fn avg_class_size_of_table1_is_optimal_for_k2() {
    let t = paper::table1_patients();
    let keys = t.schema().key_indices();
    assert!((avg_class_size(&t, &keys, 2) - 1.0).abs() < 1e-12);
    assert!((avg_class_size(&t, &keys, 1) - 2.0).abs() < 1e-12);
}

/// Table 3 groups 3 + 4 on the key attributes: DM = 9 + 16 = 25. The
/// amended Table 3 changes only a confidential value, so its utility cost
/// is identical — p-sensitivity improved for free.
#[test]
fn discernibility_of_table3_is_unchanged_by_the_amendment() {
    let t = paper::table3_psensitive_example();
    let keys = t.schema().key_indices();
    assert_eq!(discernibility(&t, &keys, 0, t.n_rows()), 25);
    let fixed = paper::table3_fixed();
    assert_eq!(discernibility(&fixed, &keys, 0, fixed.n_rows()), 25);
}

/// The paper's Table 4 walkthrough suppresses 2 of Figure 3's 10 tuples at
/// the ⟨1,1⟩ masking (TS = 2).
#[test]
fn suppression_ratio_of_the_table4_walkthrough() {
    let n = paper::figure3_microdata().n_rows();
    assert!((suppression_ratio(2, n) - 0.2).abs() < 1e-12);
    assert_eq!(suppression_ratio(0, n), 0.0);
    assert_eq!(suppression_ratio(3, 0), 0.0, "empty initial table");
}

/// Rebuilds a table chunk by chunk with freshly interned dictionaries, as
/// streaming ingest would.
fn reinterned(t: &Table, chunk_rows: usize) -> ChunkedTable {
    let mut chunked = ChunkedTable::new(t.schema().clone(), chunk_rows);
    let mut start = 0usize;
    while start < t.n_rows() {
        let end = (start + chunk_rows).min(t.n_rows());
        let rows: Vec<Vec<_>> = (start..end)
            .map(|r| (0..t.schema().len()).map(|c| t.value(r, c)).collect())
            .collect();
        let mut builder = psens_microdata::TableBuilder::new(t.schema().clone());
        for row in rows {
            builder.push_row(row).expect("row matches schema");
        }
        chunked.push_chunk(builder.finish());
        start = end;
    }
    chunked
}

/// The loss metrics see identical numbers whether a table arrives buffered
/// or through the chunked layer, and the chunked group-by feeds the same
/// group sizes the discernibility sum is built from.
#[test]
fn metrics_are_invariant_under_chunked_reconstruction() {
    for t in [
        paper::table1_patients(),
        paper::table3_psensitive_example(),
        paper::figure3_microdata(),
    ] {
        let keys = t.schema().key_indices();
        let dm = discernibility(&t, &keys, 1, t.n_rows());
        let cavg = avg_class_size(&t, &keys, 2);
        for chunk_rows in [1usize, 3, 100] {
            for chunked in [
                ChunkedTable::from_table(&t, chunk_rows),
                reinterned(&t, chunk_rows),
            ] {
                let rebuilt = chunked.to_table();
                assert_eq!(discernibility(&rebuilt, &keys, 1, rebuilt.n_rows()), dm);
                assert!((avg_class_size(&rebuilt, &keys, 2) - cavg).abs() < 1e-12);
                for threads in [1usize, 4] {
                    let gb = GroupBy::compute_chunked(&chunked, &keys, threads);
                    let grouped: u64 = gb
                        .sizes()
                        .iter()
                        .map(|&s| u64::from(s) * u64::from(s))
                        .sum();
                    assert_eq!(grouped + t.n_rows() as u64, dm);
                }
            }
        }
    }
}
