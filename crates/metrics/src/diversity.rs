//! Diversity measures related to p-sensitivity.
//!
//! p-sensitive k-anonymity counts *distinct* confidential values per group —
//! exactly what the later literature calls **distinct l-diversity**
//! (Machanavajjhala et al.). Distinct counting is blind to skew: a 100-tuple
//! group with 99 × `Flu` and 1 × `HIV` is 2-sensitive yet an intruder is 99%
//! sure of `Flu`. The stronger **entropy** and **recursive (c,l)** variants
//! quantify that residual risk; implementing them lets the benches compare
//! the paper's model against its successors.

use psens_microdata::{GroupBy, Table};
use serde::Serialize;

/// Per-table diversity profile of one confidential attribute.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DiversityReport {
    /// Attribute index the report describes.
    pub attribute: usize,
    /// Minimum distinct values per group — the attribute's max satisfiable
    /// `p` (distinct l-diversity).
    pub distinct_l: u32,
    /// Minimum effective entropy l over groups: `exp(H(group))`. A group
    /// satisfies entropy l-diversity iff this is `>= l`.
    pub entropy_l: f64,
    /// Maximum, over groups, of the most-frequent-value share — the
    /// intruder's best-guess confidence anywhere in the table.
    pub max_confidence: f64,
}

/// Computes the diversity profile of `attribute` within each QI-group.
///
/// Returns `None` for an empty table (no groups to profile).
pub fn diversity_report(
    table: &Table,
    keys: &[usize],
    attribute: usize,
) -> Option<DiversityReport> {
    let groups = GroupBy::compute(table, keys);
    if groups.n_groups() == 0 {
        return None;
    }
    let (codes, n_distinct) = table.column(attribute).dense_codes();
    // Per-group histograms over dense codes.
    let mut histograms: Vec<Vec<u32>> = vec![Vec::new(); groups.n_groups()];
    for (row, &code) in codes.iter().enumerate() {
        let g = groups.group_of(row) as usize;
        if histograms[g].is_empty() {
            histograms[g] = vec![0; n_distinct as usize];
        }
        histograms[g][code as usize] += 1;
    }
    let mut distinct_l = u32::MAX;
    let mut entropy_l = f64::INFINITY;
    let mut max_confidence: f64 = 0.0;
    for (g, histogram) in histograms.iter().enumerate() {
        let size = f64::from(groups.sizes()[g]);
        let mut distinct = 0u32;
        let mut entropy = 0.0f64;
        let mut top = 0u32;
        for &count in histogram {
            if count == 0 {
                continue;
            }
            distinct += 1;
            top = top.max(count);
            let share = f64::from(count) / size;
            entropy -= share * share.ln();
        }
        distinct_l = distinct_l.min(distinct);
        entropy_l = entropy_l.min(entropy.exp());
        max_confidence = max_confidence.max(f64::from(top) / size);
    }
    Some(DiversityReport {
        attribute,
        distinct_l,
        entropy_l,
        max_confidence,
    })
}

/// Checks **recursive (c, l)-diversity** of `attribute` in every QI-group:
/// with per-group frequencies sorted descending `r_1 >= r_2 >= ... >= r_m`,
/// the group qualifies iff `r_1 < c * (r_l + r_{l+1} + ... + r_m)`.
pub fn is_recursive_cl_diverse(
    table: &Table,
    keys: &[usize],
    attribute: usize,
    c: f64,
    l: usize,
) -> bool {
    assert!(l >= 1, "l must be at least 1");
    let groups = GroupBy::compute(table, keys);
    let (codes, n_distinct) = table.column(attribute).dense_codes();
    let mut histograms: Vec<Vec<u32>> = vec![vec![0; n_distinct as usize]; groups.n_groups()];
    for (row, &code) in codes.iter().enumerate() {
        histograms[groups.group_of(row) as usize][code as usize] += 1;
    }
    for histogram in &histograms {
        let mut freqs: Vec<u32> = histogram.iter().copied().filter(|&c| c > 0).collect();
        if freqs.is_empty() {
            continue;
        }
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        if freqs.len() < l {
            return false;
        }
        let tail: u32 = freqs[l - 1..].iter().sum();
        if f64::from(freqs[0]) >= c * f64::from(tail) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    fn table(rows: &[&[&str]]) -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_key("Zip"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(schema, rows).unwrap()
    }

    #[test]
    fn balanced_group_has_full_entropy() {
        let t = table(&[&["A", "x"], &["A", "y"], &["A", "z"]]);
        let report = diversity_report(&t, &[0], 1).unwrap();
        assert_eq!(report.distinct_l, 3);
        assert!((report.entropy_l - 3.0).abs() < 1e-9);
        assert!((report.max_confidence - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn skew_lowers_entropy_but_not_distinct_count() {
        // 9x Flu + 1x HIV: distinct l = 2 (2-sensitive!) but the intruder is
        // 90% confident — entropy l barely above 1.
        let mut rows: Vec<&[&str]> = vec![&["A", "HIV"]];
        for _ in 0..9 {
            rows.push(&["A", "Flu"]);
        }
        let t = table(&rows);
        let report = diversity_report(&t, &[0], 1).unwrap();
        assert_eq!(report.distinct_l, 2);
        assert!(report.entropy_l < 1.5, "entropy_l = {}", report.entropy_l);
        assert!((report.max_confidence - 0.9).abs() < 1e-9);
    }

    #[test]
    fn report_minimizes_over_groups() {
        let t = table(&[&["A", "x"], &["A", "y"], &["B", "x"], &["B", "x"]]);
        let report = diversity_report(&t, &[0], 1).unwrap();
        assert_eq!(report.distinct_l, 1); // group B is homogeneous
        assert!((report.max_confidence - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_table_has_no_report() {
        let t = table(&[&["A", "x"]]).filter(|_| false);
        assert!(diversity_report(&t, &[0], 1).is_none());
    }

    #[test]
    fn recursive_cl_diversity_cases() {
        // Frequencies 5, 3, 2: r1 = 5.
        let mut rows: Vec<&[&str]> = Vec::new();
        for _ in 0..5 {
            rows.push(&["A", "x"]);
        }
        for _ in 0..3 {
            rows.push(&["A", "y"]);
        }
        for _ in 0..2 {
            rows.push(&["A", "z"]);
        }
        let t = table(&rows);
        // (c=2, l=2): 5 < 2*(3+2) = 10 — diverse.
        assert!(is_recursive_cl_diverse(&t, &[0], 1, 2.0, 2));
        // (c=1, l=2): 5 >= 1*(3+2) = 5 — not diverse.
        assert!(!is_recursive_cl_diverse(&t, &[0], 1, 1.0, 2));
        // (c=3, l=3): 5 < 3*2 = 6 — diverse.
        assert!(is_recursive_cl_diverse(&t, &[0], 1, 3.0, 3));
        // l = 4 exceeds the number of distinct values — not diverse.
        assert!(!is_recursive_cl_diverse(&t, &[0], 1, 100.0, 4));
    }

    #[test]
    fn distinct_l_matches_max_p() {
        let t = table(&[&["A", "x"], &["A", "y"], &["B", "x"], &["B", "z"]]);
        let report = diversity_report(&t, &[0], 1).unwrap();
        let max_p = psens_core::max_p_of_masked(&t, &[0], &[1]);
        assert_eq!(report.distinct_l, max_p);
    }
}
