//! Information-loss (utility) metrics for masked microdata.
//!
//! The paper motivates suppression by noting that pure generalization
//! "considerably reduces the usefulness of the data"; these metrics quantify
//! that reduction so maskings can be compared. All are standard in the
//! anonymization literature: discernibility (Bayardo & Agrawal), average
//! equivalence-class size (LeFevre), Sweeney's precision, and the normalized
//! certainty penalty (Xu et al.) for local recodings.

use psens_hierarchy::{Lattice, Node};
use psens_microdata::hash::FxHashSet;
use psens_microdata::{Column, GroupBy, Table, Value};
use serde::Serialize;

/// The **discernibility metric**: `DM = Σ_G |G|² + suppressed · n`.
///
/// Each tuple is charged the size of its QI-group (indistinguishable set);
/// suppressed tuples are charged the whole table size `n` (they are
/// indistinguishable from everything).
pub fn discernibility(masked: &Table, keys: &[usize], suppressed: usize, n_initial: usize) -> u64 {
    let groups = GroupBy::compute(masked, keys);
    let grouped: u64 = groups
        .sizes()
        .iter()
        .map(|&s| u64::from(s) * u64::from(s))
        .sum();
    grouped + (suppressed as u64) * (n_initial as u64)
}

/// The **normalized average equivalence-class size** `C_avg =
/// n / (n_groups · k)`: 1.0 means groups are as small as k-anonymity allows;
/// larger values mean unnecessary coarsening.
pub fn avg_class_size(masked: &Table, keys: &[usize], k: u32) -> f64 {
    let groups = GroupBy::compute(masked, keys);
    if groups.n_groups() == 0 || k == 0 {
        return 0.0;
    }
    masked.n_rows() as f64 / (groups.n_groups() as f64 * f64::from(k))
}

/// Sweeney's **precision** of a full-domain generalization: one minus the
/// mean of `level_i / max_level_i` over the key attributes. 1.0 = raw data,
/// 0.0 = everything fully generalized.
///
/// Attributes whose hierarchy has a single domain (no generalization
/// possible) contribute full precision.
pub fn precision(node: &Node, lattice: &Lattice) -> f64 {
    let levels = node.levels();
    let maxes = lattice.max_levels();
    assert_eq!(levels.len(), maxes.len(), "node must belong to lattice");
    if levels.is_empty() {
        return 1.0;
    }
    let lost: f64 = levels
        .iter()
        .zip(maxes)
        .map(|(&l, &m)| {
            if m == 0 {
                0.0
            } else {
                f64::from(l) / f64::from(m)
            }
        })
        .sum();
    1.0 - lost / levels.len() as f64
}

/// Ratio of suppressed tuples to the initial size.
pub fn suppression_ratio(suppressed: usize, n_initial: usize) -> f64 {
    if n_initial == 0 {
        0.0
    } else {
        suppressed as f64 / n_initial as f64
    }
}

/// Per-attribute and overall **normalized certainty penalty** of a
/// partitioning of the *initial* microdata (how Mondrian-style local
/// recodings are scored). 0.0 = no information lost, 1.0 = every partition
/// spans each attribute's whole domain.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NcpReport {
    /// `(attribute name, penalty)` per key attribute, averaged over tuples.
    pub per_attribute: Vec<(String, f64)>,
    /// Mean of the per-attribute penalties.
    pub overall: f64,
}

/// Computes the NCP of `partitions` (disjoint row-index sets) over the key
/// attributes of `initial`.
///
/// Integer attributes score a partition by `range / domain-range`;
/// categorical attributes by `(d - 1) / (D - 1)` where `d` is the number of
/// distinct member values and `D` the domain size (0 when `D <= 1`).
/// Partition scores are weighted by partition size.
pub fn ncp(initial: &Table, keys: &[usize], partitions: &[Vec<usize>]) -> NcpReport {
    let n: usize = partitions.iter().map(Vec::len).sum();
    let mut per_attribute = Vec::with_capacity(keys.len());
    for &attr in keys {
        let column = initial.column(attr);
        let name = initial.schema().attribute(attr).name().to_owned();
        let penalty = match column {
            Column::Int(_) => {
                let (domain_lo, domain_hi) = int_extent(column, 0..initial.n_rows());
                let width = (domain_hi - domain_lo) as f64;
                if width == 0.0 || n == 0 {
                    0.0
                } else {
                    partitions
                        .iter()
                        .map(|rows| {
                            let (lo, hi) = int_extent(column, rows.iter().copied());
                            (hi - lo) as f64 / width * rows.len() as f64
                        })
                        .sum::<f64>()
                        / n as f64
                }
            }
            Column::Cat(_) => {
                let domain = distinct_count(column, 0..initial.n_rows());
                if domain <= 1 || n == 0 {
                    0.0
                } else {
                    partitions
                        .iter()
                        .map(|rows| {
                            let d = distinct_count(column, rows.iter().copied());
                            (d.saturating_sub(1)) as f64 / (domain - 1) as f64 * rows.len() as f64
                        })
                        .sum::<f64>()
                        / n as f64
                }
            }
        };
        per_attribute.push((name, penalty));
    }
    let overall = if per_attribute.is_empty() {
        0.0
    } else {
        per_attribute.iter().map(|(_, p)| p).sum::<f64>() / per_attribute.len() as f64
    };
    NcpReport {
        per_attribute,
        overall,
    }
}

fn int_extent(column: &Column, rows: impl Iterator<Item = usize>) -> (i64, i64) {
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for row in rows {
        if let Value::Int(v) = column.value(row) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if lo > hi {
        (0, 0)
    } else {
        (lo, hi)
    }
}

fn distinct_count(column: &Column, rows: impl Iterator<Item = usize>) -> usize {
    let mut seen: FxHashSet<Value> = FxHashSet::default();
    for row in rows {
        seen.insert(column.value(row));
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    fn table() -> Table {
        let schema =
            Schema::new(vec![Attribute::int_key("Age"), Attribute::cat_key("Sex")]).unwrap();
        table_from_str_rows(
            schema,
            &[&["20", "M"], &["30", "M"], &["40", "F"], &["60", "F"]],
        )
        .unwrap()
    }

    #[test]
    fn discernibility_charges_group_squares() {
        // Two groups of 2 (by Sex): DM = 4 + 4 = 8.
        let t = table();
        assert_eq!(discernibility(&t, &[1], 0, 4), 8);
        // One suppressed tuple adds n = 4.
        assert_eq!(discernibility(&t, &[1], 1, 4), 12);
        // Grouping by everything: 4 singletons = 4.
        assert_eq!(discernibility(&t, &[0, 1], 0, 4), 4);
    }

    #[test]
    fn avg_class_size_normalizes_by_k() {
        let t = table();
        // By Sex: 4 rows / (2 groups * 2) = 1.0 — optimal for k = 2.
        assert!((avg_class_size(&t, &[1], 2) - 1.0).abs() < 1e-12);
        // For k = 1 the same grouping is twice as coarse as needed.
        assert!((avg_class_size(&t, &[1], 1) - 2.0).abs() < 1e-12);
        let empty = t.filter(|_| false);
        assert_eq!(avg_class_size(&empty, &[1], 2), 0.0);
    }

    #[test]
    fn precision_bounds() {
        let lattice = Lattice::new(vec![3, 2, 3, 1]);
        assert!((precision(&Node(vec![0, 0, 0, 0]), &lattice) - 1.0).abs() < 1e-12);
        assert!(precision(&Node(vec![3, 2, 3, 1]), &lattice).abs() < 1e-12);
        let mid = precision(&Node(vec![1, 1, 1, 1]), &lattice);
        assert!(mid > 0.0 && mid < 1.0);
        // Monotone: more generalization, less precision.
        assert!(
            precision(&Node(vec![1, 0, 0, 0]), &lattice)
                > precision(&Node(vec![2, 0, 0, 0]), &lattice)
        );
    }

    #[test]
    fn precision_handles_degenerate_dims() {
        // A dimension with max level 0 cannot lose precision.
        let lattice = Lattice::new(vec![0, 2]);
        assert!((precision(&Node(vec![0, 0]), &lattice) - 1.0).abs() < 1e-12);
        assert!((precision(&Node(vec![0, 2]), &lattice) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn suppression_ratio_basics() {
        assert_eq!(suppression_ratio(0, 100), 0.0);
        assert_eq!(suppression_ratio(25, 100), 0.25);
        assert_eq!(suppression_ratio(5, 0), 0.0);
    }

    #[test]
    fn ncp_of_singleton_partitions_is_zero() {
        let t = table();
        let partitions: Vec<Vec<usize>> = (0..4).map(|i| vec![i]).collect();
        let report = ncp(&t, &[0, 1], &partitions);
        assert!(report.overall.abs() < 1e-12);
    }

    #[test]
    fn ncp_of_whole_table_is_one() {
        let t = table();
        let report = ncp(&t, &[0, 1], &[vec![0, 1, 2, 3]]);
        assert!((report.overall - 1.0).abs() < 1e-12);
        assert_eq!(report.per_attribute.len(), 2);
    }

    #[test]
    fn ncp_weighs_by_partition_size() {
        let t = table();
        // Partition {0,1} spans ages 20-30 (width 10 of 40) and one sex;
        // partition {2,3} spans 40-60 (width 20 of 40) and one sex.
        let report = ncp(&t, &[0, 1], &[vec![0, 1], vec![2, 3]]);
        let age = report.per_attribute[0].1;
        assert!((age - (10.0 / 40.0 * 0.5 + 20.0 / 40.0 * 0.5)).abs() < 1e-12);
        let sex = report.per_attribute[1].1;
        assert!(sex.abs() < 1e-12, "single-sex partitions lose nothing");
    }
}
