//! # psens-metrics
//!
//! Utility and disclosure-risk metrics for masked microdata:
//!
//! - [`loss`]: discernibility, normalized average class size, Sweeney's
//!   precision, suppression ratio, and the normalized certainty penalty for
//!   local recodings — the axes along which maskings trade privacy for
//!   usefulness (the paper's "where to draw the line" discussion).
//! - [`risk`]: identity-disclosure (re-identification) risk from group
//!   sizes, and attribute-disclosure risk from confidential homogeneity —
//!   the two disclosure types the paper distinguishes.
//! - [`diversity`]: distinct / entropy / recursive (c,l) diversity — the
//!   successor measures p-sensitivity anticipates, for comparison.
//! - [`closeness`]: equal-distance earth mover's distance of each group's
//!   confidential distribution from the table's (t-closeness reporting).
//!
//! ## Example
//!
//! ```
//! use psens_metrics::{discernibility, identity_risk};
//! use psens_datasets::paper::table1_patients;
//!
//! let mm = table1_patients();
//! let keys = mm.schema().key_indices();
//! // Three groups of two: DM = 3 * 2^2, worst linkage probability 1/2.
//! assert_eq!(discernibility(&mm, &keys, 0, mm.n_rows()), 12);
//! assert!((identity_risk(&mm, &keys).max_risk - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closeness;
pub mod diversity;
pub mod loss;
pub mod risk;

pub use closeness::{closeness_report, ClosenessReport};
pub use diversity::{diversity_report, is_recursive_cl_diverse, DiversityReport};
pub use loss::{avg_class_size, discernibility, ncp, precision, suppression_ratio, NcpReport};
pub use risk::{
    attribute_risk, identity_risk, journalist_risk, AttributeRisk, IdentityRisk, JournalistRisk,
};
