//! Distribution-closeness measures (t-closeness, Li et al., ICDE 2007).
//!
//! Diversity counts what values a group exposes; closeness asks how much
//! the group's confidential *distribution* deviates from the whole table's.
//! A group can be perfectly diverse yet carry a strong signal — the
//! t-closeness paper's salary example puts the three lowest salaries in one
//! group, so an intruder learns "low income" despite 3-diversity. The earth
//! mover's distance here uses the equal-distance ground metric (every pair
//! of values one unit apart), where EMD degenerates to half the L1 distance
//! — the same measure `psens_core::TCloseness` enforces, kept in floating
//! point for reporting.

use psens_microdata::{GroupBy, Table};
use serde::Serialize;

/// Per-table closeness profile of one confidential attribute.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClosenessReport {
    /// Attribute index the report describes.
    pub attribute: usize,
    /// Maximum, over groups, of the equal-distance EMD to the whole-table
    /// distribution — the table satisfies t-closeness iff this is `<= t`.
    pub max_emd: f64,
    /// Group-size-weighted mean EMD — the average per-tuple distribution
    /// signal a release leaks.
    pub mean_emd: f64,
}

/// Computes the closeness profile of `attribute` within each QI-group.
///
/// Returns `None` for an empty table (no groups to profile).
pub fn closeness_report(
    table: &Table,
    keys: &[usize],
    attribute: usize,
) -> Option<ClosenessReport> {
    let groups = GroupBy::compute(table, keys);
    if groups.n_groups() == 0 {
        return None;
    }
    let (codes, n_distinct) = table.column(attribute).dense_codes();
    let n_rows = codes.len() as f64;
    // Whole-table and per-group histograms over dense codes.
    let mut global = vec![0u32; n_distinct as usize];
    let mut histograms: Vec<Vec<u32>> = vec![Vec::new(); groups.n_groups()];
    for (row, &code) in codes.iter().enumerate() {
        global[code as usize] += 1;
        let g = groups.group_of(row) as usize;
        if histograms[g].is_empty() {
            histograms[g] = vec![0; n_distinct as usize];
        }
        histograms[g][code as usize] += 1;
    }
    let mut max_emd = 0.0f64;
    let mut weighted = 0.0f64;
    for (g, histogram) in histograms.iter().enumerate() {
        let size = f64::from(groups.sizes()[g]);
        let l1: f64 = histogram
            .iter()
            .zip(global.iter())
            .map(|(&count, &total)| (f64::from(count) / size - f64::from(total) / n_rows).abs())
            .sum();
        let emd = 0.5 * l1;
        max_emd = max_emd.max(emd);
        weighted += size * emd;
    }
    Some(ClosenessReport {
        attribute,
        max_emd,
        mean_emd: weighted / n_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_core::{CodeDistribution, PrivacyModel, TCloseness, FIXED_POINT_SCALE};
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    fn table(rows: &[&[&str]]) -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_key("Zip"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(schema, rows).unwrap()
    }

    #[test]
    fn single_group_has_zero_distance() {
        // One group IS the table: its distribution matches by definition.
        let t = table(&[&["A", "x"], &["A", "y"], &["A", "y"]]);
        let report = closeness_report(&t, &[0], 1).unwrap();
        assert_eq!(report.max_emd, 0.0);
        assert_eq!(report.mean_emd, 0.0);
    }

    #[test]
    fn concentrating_a_value_costs_its_excess_mass() {
        // Global (1/2, 1/2); each group homogeneous: EMD = 1/2 everywhere.
        let t = table(&[&["A", "x"], &["A", "x"], &["B", "y"], &["B", "y"]]);
        let report = closeness_report(&t, &[0], 1).unwrap();
        assert!((report.max_emd - 0.5).abs() < 1e-12);
        assert!((report.mean_emd - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_table_has_no_report() {
        let t = table(&[&["A", "x"]]).filter(|_| false);
        assert!(closeness_report(&t, &[0], 1).is_none());
    }

    #[test]
    fn report_agrees_with_the_enforcing_model() {
        // The float report and the core model's fixed-point group metric
        // must describe the same distance.
        let t = table(&[
            &["A", "x"],
            &["A", "x"],
            &["A", "y"],
            &["B", "y"],
            &["B", "z"],
        ]);
        let report = closeness_report(&t, &[0], 1).unwrap();
        let (codes, n_codes) = t.column(1).dense_codes();
        let global = CodeDistribution::from_codes(codes.iter().copied(), n_codes);
        let model = TCloseness { t_ppm: 1_000_000 };
        // Group A: codes (x,x,y); group B: codes (y,z).
        let a = model.check_group(&[(0, 2), (1, 1)], 3, Some(&global));
        let b = model.check_group(&[(1, 1), (2, 1)], 2, Some(&global));
        let worst = a.metric.max(b.metric);
        assert!(((report.max_emd * FIXED_POINT_SCALE).round() as u64).abs_diff(worst) <= 1);
    }
}
