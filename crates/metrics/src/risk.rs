//! Disclosure-risk metrics.
//!
//! The paper's two disclosure types get one family of metrics each:
//! re-identification (identity) risk from QI-group sizes, and attribute-
//! disclosure risk from per-group confidential homogeneity.

use psens_core::disclosure::attribute_disclosures;
use psens_microdata::{GroupBy, Table};
use serde::Serialize;

/// Identity-disclosure (prosecutor re-identification) risk profile.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IdentityRisk {
    /// `1 / min_group_size`: the worst-case linkage probability ("the
    /// probability to identify correctly an individual is at most 1/k").
    pub max_risk: f64,
    /// Mean over tuples of `1 / |G(tuple)|`.
    pub avg_risk: f64,
    /// Number of singleton QI-groups (certain re-identification).
    pub uniques: usize,
    /// Number of QI-groups.
    pub n_groups: usize,
}

/// Computes [`IdentityRisk`] for `table` grouped by `keys`.
pub fn identity_risk(table: &Table, keys: &[usize]) -> IdentityRisk {
    let groups = GroupBy::compute(table, keys);
    let n = table.n_rows();
    if n == 0 {
        return IdentityRisk {
            max_risk: 0.0,
            avg_risk: 0.0,
            uniques: 0,
            n_groups: 0,
        };
    }
    let min = groups.min_group_size().unwrap_or(0).max(1);
    // Each tuple in a group of size s carries risk 1/s, so each group
    // contributes exactly 1 to the sum and the mean is n_groups / n.
    let avg_risk = groups.n_groups() as f64 / n as f64;
    IdentityRisk {
        max_risk: 1.0 / f64::from(min),
        avg_risk,
        uniques: groups.sizes().iter().filter(|&&s| s == 1).count(),
        n_groups: groups.n_groups(),
    }
}

/// Attribute-disclosure risk profile.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AttributeRisk {
    /// Number of `(group, attribute)` disclosures — the paper's Table 8
    /// count.
    pub disclosures: usize,
    /// Number of distinct groups with at least one disclosed attribute.
    pub affected_groups: usize,
    /// Number of tuples living in a group with at least one disclosed
    /// attribute.
    pub affected_tuples: usize,
    /// Fraction of tuples affected.
    pub affected_fraction: f64,
    /// Per-attribute disclosure counts, `(name, count)`.
    pub per_attribute: Vec<(String, usize)>,
}

/// Computes [`AttributeRisk`] for `table`.
pub fn attribute_risk(table: &Table, keys: &[usize], confidential: &[usize]) -> AttributeRisk {
    let disclosures = attribute_disclosures(table, keys, confidential);
    let mut per_attribute: Vec<(String, usize)> = confidential
        .iter()
        .map(|&attr| (table.schema().attribute(attr).name().to_owned(), 0))
        .collect();
    let mut groups_hit: std::collections::BTreeMap<u32, u32> = Default::default();
    for d in &disclosures {
        if let Some(entry) = per_attribute
            .iter_mut()
            .find(|(n, _)| *n == d.attribute_name)
        {
            entry.1 += 1;
        }
        groups_hit.entry(d.group).or_insert(d.group_size);
    }
    let affected_tuples: usize = groups_hit.values().map(|&s| s as usize).sum();
    AttributeRisk {
        disclosures: disclosures.len(),
        affected_groups: groups_hit.len(),
        affected_tuples,
        affected_fraction: if table.n_rows() == 0 {
            0.0
        } else {
            affected_tuples as f64 / table.n_rows() as f64
        },
        per_attribute,
    }
}

/// Journalist-model re-identification risk: the released table is a *sample*
/// of a larger population the intruder holds, so a released tuple's risk is
/// `1 / (its key combination's frequency in the population)` — usually far
/// below the prosecutor risk computed from the sample alone.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JournalistRisk {
    /// Worst per-tuple risk over the released rows.
    pub max_risk: f64,
    /// Mean per-tuple risk over the released rows.
    pub avg_risk: f64,
    /// Released tuples whose key combination is unique in the population
    /// (certain re-identification even under the journalist model).
    pub population_uniques: usize,
}

/// Computes [`JournalistRisk`] for a `released` sample against the
/// `population` it was drawn from. Keys are attribute names present in both
/// schemas; returns `None` when the released table is empty.
///
/// # Errors
/// Fails when a key attribute is missing from either schema.
pub fn journalist_risk(
    released: &Table,
    population: &Table,
    keys: &[&str],
) -> Result<Option<JournalistRisk>, psens_microdata::Error> {
    use psens_microdata::FrequencySet;
    if released.is_empty() {
        // Validate names even for the empty case.
        released.schema().indices_of(keys)?;
        population.schema().indices_of(keys)?;
        return Ok(None);
    }
    let released_cols = released.schema().indices_of(keys)?;
    let population_cols = population.schema().indices_of(keys)?;
    let frequencies = FrequencySet::of(population, &population_cols);
    let mut max_risk = 0.0f64;
    let mut sum = 0.0f64;
    let mut uniques = 0usize;
    for row in 0..released.n_rows() {
        let key: Vec<psens_microdata::Value> = released_cols
            .iter()
            .map(|&c| released.value(row, c))
            .collect();
        let count = frequencies.count_of(&key);
        // A released combination absent from the intruder's population file
        // cannot be linked at all: risk 0.
        let risk = if count == 0 { 0.0 } else { 1.0 / count as f64 };
        if count == 1 {
            uniques += 1;
        }
        max_risk = max_risk.max(risk);
        sum += risk;
    }
    Ok(Some(JournalistRisk {
        max_risk,
        avg_risk: sum / released.n_rows() as f64,
        population_uniques: uniques,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_key("Zip"),
            Attribute::cat_confidential("Illness"),
            Attribute::cat_confidential("Pay"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["A", "Flu", "Low"],
                &["A", "Flu", "High"],
                &["B", "HIV", "Low"],
                &["B", "Flu", "Low"],
                &["C", "HIV", "High"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn identity_risk_profile() {
        let t = table();
        let risk = identity_risk(&t, &[0]);
        // Groups: A(2), B(2), C(1) — min 1 → max risk 1.0, one unique.
        assert_eq!(risk.max_risk, 1.0);
        assert_eq!(risk.uniques, 1);
        assert_eq!(risk.n_groups, 3);
        assert!((risk.avg_risk - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn identity_risk_improves_with_coarsening() {
        let t = table();
        let fine = identity_risk(&t, &[0]);
        let coarse = identity_risk(&t, &[]); // one group of 5
        assert!(coarse.max_risk < fine.max_risk);
        assert_eq!(coarse.uniques, 0);
        assert!((coarse.max_risk - 0.2).abs() < 1e-12);
    }

    #[test]
    fn attribute_risk_profile() {
        let t = table();
        let risk = attribute_risk(&t, &[0], &[1, 2]);
        // Group A: Illness homogeneous (Flu). Group B: Pay homogeneous (Low).
        // Group C: both homogeneous (singleton).
        assert_eq!(risk.disclosures, 4);
        assert_eq!(risk.affected_groups, 3);
        assert_eq!(risk.affected_tuples, 5);
        assert!((risk.affected_fraction - 1.0).abs() < 1e-12);
        assert_eq!(
            risk.per_attribute,
            vec![("Illness".to_owned(), 2), ("Pay".to_owned(), 2)]
        );
    }

    #[test]
    fn journalist_risk_uses_population_frequencies() {
        let population = table();
        // Release rows 0 and 4: zip A occurs twice in the population, zip C
        // once.
        let released = population.take(&[0, 4]);
        let risk = journalist_risk(&released, &population, &["Zip"])
            .unwrap()
            .unwrap();
        assert_eq!(risk.population_uniques, 1); // the zip-C tuple
        assert!((risk.max_risk - 1.0).abs() < 1e-12);
        assert!((risk.avg_risk - (0.5 + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn journalist_risk_is_at_most_prosecutor_risk() {
        let population = table();
        let released = population.take(&[0, 2, 4]);
        let journalist = journalist_risk(&released, &population, &["Zip"])
            .unwrap()
            .unwrap();
        let prosecutor = identity_risk(&released, &[0]);
        // Population groups are supersets of sample groups.
        assert!(journalist.max_risk <= prosecutor.max_risk + 1e-12);
        assert!(journalist.avg_risk <= prosecutor.avg_risk + 1e-12);
    }

    #[test]
    fn journalist_risk_edge_cases() {
        let population = table();
        let empty = population.filter(|_| false);
        assert_eq!(
            journalist_risk(&empty, &population, &["Zip"]).unwrap(),
            None
        );
        assert!(journalist_risk(&population, &population, &["Nope"]).is_err());
        // A released value absent from the population carries zero risk.
        let schema = population.schema().clone();
        let stranger = table_from_str_rows(schema, &[&["Z", "Flu", "Low"]]).unwrap();
        let risk = journalist_risk(&stranger, &population, &["Zip"])
            .unwrap()
            .unwrap();
        assert_eq!(risk.max_risk, 0.0);
        assert_eq!(risk.population_uniques, 0);
    }

    #[test]
    fn empty_table_risks() {
        let t = table().filter(|_| false);
        let risk = identity_risk(&t, &[0]);
        assert_eq!(risk.max_risk, 0.0);
        assert_eq!(risk.n_groups, 0);
        let risk = attribute_risk(&t, &[0], &[1, 2]);
        assert_eq!(risk.disclosures, 0);
        assert_eq!(risk.affected_fraction, 0.0);
    }
}
