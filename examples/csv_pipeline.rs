//! End-to-end CSV pipeline: write an initial microdata file, read it back,
//! anonymize it two ways (full-domain Algorithm 3 vs. Mondrian local
//! recoding), compare utility, and write the chosen release.
//!
//! Run with: `cargo run --release --example csv_pipeline`

use psens::datasets::hierarchies::adult_qi_space;
use psens::datasets::AdultGenerator;
use psens::metrics::{identity_risk, ncp};
use psens::microdata::csv;
use psens::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("psens_csv_pipeline");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");

    // 1. A data holder exports initial microdata as CSV.
    let initial = AdultGenerator::new(2024).generate(1000);
    let initial_path = dir.join("initial.csv");
    let mut file = std::fs::File::create(&initial_path).expect("create CSV");
    csv::write_table(&mut file, &initial, true).expect("write CSV");
    println!(
        "wrote {} ({} rows)",
        initial_path.display(),
        initial.n_rows()
    );

    // 2. We read it back against the known schema.
    let text = std::fs::read_to_string(&initial_path).expect("read CSV");
    let table = csv::read_table_str(&text, AdultGenerator::schema(), true).expect("parse CSV");
    assert_eq!(table, initial, "CSV round-trip is lossless");

    // 3a. Full-domain generalization: Algorithm 3 with the two conditions.
    let qi = adult_qi_space();
    let (p, k, ts) = (2u32, 3u32, 50usize);
    let full_domain =
        pk_minimal_generalization(&table, &qi, p, k, ts, Pruning::NecessaryConditions)
            .expect("hierarchies cover the data");
    let fd_masked = full_domain.masked.expect("satisfiable");
    let fd_node = full_domain.node.expect("satisfiable");

    // 3b. Mondrian local recoding with the same constraints.
    let mondrian = mondrian_anonymize(&table, MondrianConfig { k, p }).unwrap();

    // 4. Compare.
    let keys = fd_masked.schema().key_indices();
    println!("\nfull-domain node {}:", qi.describe_node(&fd_node));
    println!(
        "  groups (QI combinations): {}",
        GroupBy::compute(&fd_masked, &keys).n_groups()
    );
    println!("  suppressed tuples:        {}", full_domain.suppressed);
    println!(
        "  max re-id risk:           {:.4}",
        identity_risk(&fd_masked, &keys).max_risk
    );

    let m_keys = mondrian.masked.schema().key_indices();
    let dropped = table.drop_identifiers();
    let partitions_ncp = ncp(
        &dropped,
        &dropped.schema().key_indices(),
        &mondrian.partitions,
    );
    println!(
        "\nmondrian ({} partitions, {} splits):",
        mondrian.partitions.len(),
        mondrian.splits
    );
    println!(
        "  groups (QI combinations): {}",
        GroupBy::compute(&mondrian.masked, &m_keys).n_groups()
    );
    println!("  suppressed tuples:        0");
    println!("  NCP (information loss):   {:.4}", partitions_ncp.overall);
    println!(
        "  max re-id risk:           {:.4}",
        identity_risk(&mondrian.masked, &m_keys).max_risk
    );

    // Both must satisfy the property.
    let conf = fd_masked.schema().confidential_indices();
    assert!(is_p_sensitive_k_anonymous(&fd_masked, &keys, &conf, p, k));
    let m_conf = mondrian.masked.schema().confidential_indices();
    assert!(is_p_sensitive_k_anonymous(
        &mondrian.masked,
        &m_keys,
        &m_conf,
        p,
        k
    ));

    // 5. Release the Mondrian masking (finer detail, no suppression).
    let release_path = dir.join("release.csv");
    let mut file = std::fs::File::create(&release_path).expect("create CSV");
    csv::write_table(&mut file, &mondrian.masked, true).expect("write CSV");
    println!("\nwrote {}", release_path.display());
}
