//! The wider disclosure-control toolbox the paper's Section 2 surveys,
//! applied to the same synthetic Adult sample and compared on risk and
//! utility — the "where to draw the line" trade-off made concrete.
//!
//! Run with: `cargo run --release --example masking_toolbox`

use psens::datasets::AdultGenerator;
use psens::methods::{
    add_noise, microaggregate_univariate, pram, rank_swap, simple_random_sample, PramMatrix,
};
use psens::metrics::{attribute_risk, identity_risk};
use psens::prelude::*;

fn risk_line(label: &str, table: &Table) {
    let keys = table.schema().key_indices();
    let conf = table.schema().confidential_indices();
    let id = identity_risk(table, &keys);
    let attr = attribute_risk(table, &keys, &conf);
    println!(
        "  {label:<26} rows {:>5}  uniques {:>4}  max re-id risk {:>6.3}  attr disclosures {:>4}",
        table.n_rows(),
        id.uniques,
        id.max_risk,
        attr.disclosures
    );
}

fn mean_of(table: &Table, name: &str) -> f64 {
    let idx = table.schema().index_of(name).unwrap();
    let sum: i64 = (0..table.n_rows())
        .map(|r| table.value(r, idx).as_int().unwrap_or(0))
        .sum();
    sum as f64 / table.n_rows().max(1) as f64
}

fn main() {
    let initial = AdultGenerator::new(2026).generate(2000).drop_identifiers();
    println!("baseline (raw initial microdata):");
    risk_line("raw", &initial);
    println!("  mean Age = {:.2}\n", mean_of(&initial, "Age"));

    println!("perturbative / subsampling methods (Section 2's survey):");
    let sampled = simple_random_sample(&initial, 500, 1);
    risk_line("25% random sample", &sampled);

    let age = initial.schema().index_of("Age").unwrap();
    let microagg = microaggregate_univariate(&initial, age, 5).unwrap();
    risk_line("microaggregate Age (k=5)", &microagg);
    println!(
        "    mean Age after microaggregation = {:.2}",
        mean_of(&microagg, "Age")
    );

    let swapped = rank_swap(&initial, age, 5, 2).unwrap();
    risk_line("rank-swap Age (5% window)", &swapped);
    println!(
        "    mean Age after swapping         = {:.2}",
        mean_of(&swapped, "Age")
    );

    let noisy = add_noise(&initial, age, 0.2, 3).unwrap();
    risk_line("Age + 20% noise", &noisy);
    println!(
        "    mean Age after noise            = {:.2}",
        mean_of(&noisy, "Age")
    );

    let pay = initial.schema().index_of("Pay").unwrap();
    let matrix = PramMatrix::uniform_retention(vec!["<=50K", ">50K"], 0.85).unwrap();
    let prammed = pram(&initial, pay, &matrix, 4).unwrap();
    risk_line("PRAM Pay (retain 85%)", &prammed);

    println!("\nnon-perturbative masking (the paper's choice):");
    let qi = psens::datasets::hierarchies::adult_qi_space();
    let outcome =
        pk_minimal_generalization(&initial, &qi, 2, 3, 20, Pruning::NecessaryConditions).unwrap();
    let masked = outcome.masked.expect("achievable");
    risk_line("2-sensitive 3-anonymous", &masked);
    println!(
        "    node {} — truthful values, bounded risk by construction",
        qi.describe_node(&outcome.node.unwrap())
    );

    println!(
        "\nNote how the perturbative methods keep record-level detail but only\n\
         weaken linkage statistically, while p-sensitive k-anonymity gives a\n\
         worst-case guarantee (risk <= 1/k, >= p values per group) at the cost\n\
         of coarser categories."
    );
}
