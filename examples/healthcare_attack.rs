//! The paper's motivating healthcare scenario (Section 2, Tables 1–2): a
//! 2-anonymous patient release still leaks diagnoses to an intruder holding
//! external information, because one QI-group is homogeneous in Illness.
//! p-sensitive k-anonymity closes the leak.
//!
//! Run with: `cargo run --example healthcare_attack`

use psens::core::attack::linkage_attack;
use psens::hierarchy::{CatHierarchy, Hierarchy, IntHierarchy, IntLevel};
use psens::prelude::*;

/// Ages generalized "to multiples of 10", the recoding the paper says the
/// intruder knows: 29 -> "20", 38 -> "30", 51 -> "50"; one more level
/// suppresses the attribute entirely.
fn decade_hierarchy() -> Hierarchy {
    let cuts: Vec<i64> = (1..=9).map(|d| d * 10).collect();
    let mut labels: Vec<String> = vec!["0".into()];
    labels.extend(cuts.iter().map(|c| c.to_string()));
    Hierarchy::Int(
        IntHierarchy::new(vec![
            IntLevel::Ranges { cuts, labels },
            IntLevel::Single("*".into()),
        ])
        .expect("valid hierarchy"),
    )
}

fn main() {
    let masked = psens::datasets::paper::table1_patients();
    let external = psens::datasets::paper::table2_external();

    println!("Released microdata (paper Table 1, 2-anonymous):\n");
    println!("{}", psens::microdata::render(&masked, 10));
    println!("Intruder's external information (paper Table 2):\n");
    println!("{}", psens::microdata::render(&external, 10));

    let keys = masked.schema().key_indices();
    let conf = masked.schema().confidential_indices();
    assert!(is_k_anonymous(&masked, &keys, 2));
    println!(
        "The release is 2-anonymous; identity disclosure probability <= 1/2.\n\
         Attribute disclosures present: {}\n",
        attribute_disclosure_count(&masked, &keys, &conf)
    );

    // The intruder generalizes Table 2 with the public recoding and links.
    let attack_qi = QiSpace::new(vec![
        ("Age".into(), decade_hierarchy()),
        (
            "ZipCode".into(),
            builders::flat_hierarchy(vec!["43102"]).unwrap(),
        ),
        (
            "Sex".into(),
            builders::flat_hierarchy(vec!["M", "F"]).unwrap(),
        ),
    ])
    .expect("valid QI space");
    let node = Node(vec![1, 0, 0]); // Age to decades, ZipCode & Sex raw

    let findings = linkage_attack(&masked, &attack_qi, &node, &external, "Name")
        .expect("attack inputs are compatible");
    println!("Linkage attack results:");
    for f in &findings {
        let identity = if f.identity_disclosed {
            "RE-IDENTIFIED".to_owned()
        } else {
            format!("{} candidates", f.candidate_rows.len())
        };
        if f.learned.is_empty() {
            println!(
                "  {:8} -> {identity}; learns nothing",
                f.individual.to_string()
            );
        } else {
            let learned: Vec<String> = f
                .learned
                .iter()
                .map(|(attr, value)| format!("{attr} = {value}"))
                .collect();
            println!(
                "  {:8} -> {identity}; LEARNS {}",
                f.individual.to_string(),
                learned.join(", ")
            );
        }
    }

    // ------------------------------------------------------------------
    // The fix: demand 2-sensitivity and re-generalize. The released table's
    // Age already holds decade labels, so the repair hierarchies start from
    // those labels.
    // ------------------------------------------------------------------
    println!("\nRepairing with 2-sensitive 2-anonymity (Algorithm 3):\n");
    let repair_qi = QiSpace::new(vec![
        (
            "Age".into(),
            Hierarchy::Cat(
                CatHierarchy::identity(["20", "30", "50"])
                    .and_then(|h| h.push_top("*"))
                    .unwrap(),
            ),
        ),
        (
            "ZipCode".into(),
            builders::flat_hierarchy(vec!["43102"]).unwrap(),
        ),
        (
            "Sex".into(),
            builders::flat_hierarchy(vec!["M", "F"]).unwrap(),
        ),
    ])
    .expect("valid QI space");
    let repaired =
        pk_minimal_generalization(&masked, &repair_qi, 2, 2, 0, Pruning::NecessaryConditions)
            .expect("hierarchies cover the data");
    match (&repaired.node, &repaired.masked) {
        (Some(node), Some(table)) => {
            println!(
                "p-k-minimal node: {} (height {})\n",
                repair_qi.describe_node(node),
                node.height()
            );
            println!("{}", psens::microdata::render(table, 10));
            let keys = table.schema().key_indices();
            let conf = table.schema().confidential_indices();
            assert!(is_p_sensitive_k_anonymous(table, &keys, &conf, 2, 2));
            // Replay the attack: the repair's Age level l corresponds to the
            // intruder's raw-age hierarchy level l + 1.
            let attack_node = Node(vec![
                node.levels()[0] + 1,
                node.levels()[1],
                node.levels()[2],
            ]);
            let replayed = linkage_attack(table, &attack_qi, &attack_node, &external, "Name")
                .expect("attack inputs are compatible");
            let leaks: usize = replayed.iter().map(|f| f.learned.len()).sum();
            println!("Replaying the attack on the repaired release: {leaks} attribute leaks.");
            assert_eq!(leaks, 0);
        }
        _ => println!("no satisfying node exists under these hierarchies"),
    }
}
