//! Beyond distinct counting: extended p-sensitivity over confidential
//! hierarchies, and the diversity measures that succeeded the paper.
//!
//! A group whose illnesses are {HIV, AIDS} is 2-sensitive — two distinct
//! values — yet both mean "serious infectious disease". The extended model
//! (the authors' follow-up work) counts distinct *categories* instead.
//! Entropy/recursive diversity quantify the residual skew risk.
//!
//! Run with: `cargo run --example sensitive_hierarchies`

use psens::core::extended::{check_extended, extended_max_p, ConfidentialSpec};
use psens::hierarchy::CatHierarchy;
use psens::metrics::{diversity_report, is_recursive_cl_diverse};
use psens::prelude::*;

fn illness_hierarchy() -> Hierarchy {
    Hierarchy::Cat(
        CatHierarchy::identity([
            "HIV",
            "AIDS",
            "Hepatitis",
            "Colon Cancer",
            "Breast Cancer",
            "Diabetes",
            "Hypertension",
        ])
        .unwrap()
        .push_level([
            ("HIV", "Infectious"),
            ("AIDS", "Infectious"),
            ("Hepatitis", "Infectious"),
            ("Colon Cancer", "Cancer"),
            ("Breast Cancer", "Cancer"),
            ("Diabetes", "Chronic"),
            ("Hypertension", "Chronic"),
        ])
        .unwrap()
        .push_top("*")
        .unwrap(),
    )
}

fn main() {
    let schema = Schema::new(vec![
        Attribute::cat_key("Ward"),
        Attribute::cat_confidential("Illness"),
    ])
    .unwrap();
    let table = table_from_str_rows(
        schema,
        &[
            // Ward A: two distinct values, ONE category.
            &["A", "HIV"],
            &["A", "AIDS"],
            &["A", "Hepatitis"],
            // Ward B: genuinely diverse.
            &["B", "Colon Cancer"],
            &["B", "Diabetes"],
            &["B", "HIV"],
            // Ward C: diverse values but heavily skewed.
            &["C", "Hypertension"],
            &["C", "Hypertension"],
            &["C", "Hypertension"],
            &["C", "Hypertension"],
            &["C", "Hypertension"],
            &["C", "Hypertension"],
            &["C", "Hypertension"],
            &["C", "Hypertension"],
            &["C", "Hypertension"],
            &["C", "Breast Cancer"],
        ],
    )
    .unwrap();
    println!("{}", psens::microdata::render(&table, 20));

    let keys = table.schema().key_indices();
    let conf = table.schema().confidential_indices();

    // Plain p-sensitivity: every ward has >= 2 distinct illnesses.
    println!(
        "plain p-sensitivity:    satisfies p = {}",
        max_p_of_masked(&table, &keys, &conf)
    );

    // Extended: count categories one hierarchy level up.
    let hierarchy = illness_hierarchy();
    let spec = [ConfidentialSpec {
        attribute: conf[0],
        hierarchy: &hierarchy,
        level: 1,
    }];
    println!(
        "extended (categories):  maxP = {}",
        extended_max_p(&table, &spec).unwrap()
    );
    let report = check_extended(&table, &keys, &spec, 2, 3).unwrap();
    println!("extended 2-sensitive 3-anonymous? {}", report.satisfied());
    for v in &report.violations {
        println!(
            "  -> group {} (size {}) spans only {} category(ies): everyone in it \
             has an infectious disease",
            v.group, v.group_size, v.distinct_categories
        );
    }

    // Diversity measures expose Ward C's skew.
    let diversity = diversity_report(&table, &keys, conf[0]).unwrap();
    println!(
        "\ndiversity: distinct-l = {}, entropy-l = {:.2}, max confidence = {:.0}%",
        diversity.distinct_l,
        diversity.entropy_l,
        diversity.max_confidence * 100.0
    );
    println!(
        "recursive (c=3, l=2)-diverse? {}",
        is_recursive_cl_diverse(&table, &keys, conf[0], 3.0, 2)
    );
    println!(
        "recursive (c=12, l=2)-diverse? {}",
        is_recursive_cl_diverse(&table, &keys, conf[0], 12.0, 2)
    );
    println!(
        "\nTakeaway: p-sensitive k-anonymity (distinct counting) accepts both the\n\
         semantic clustering in Ward A and the 90% skew in Ward C; the extended\n\
         model catches the former, entropy/recursive diversity the latter."
    );
}
