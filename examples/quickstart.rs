//! Quickstart: check the paper's Table 3, then search for a p-k-minimal
//! generalization of Figure 3's microdata.
//!
//! Run with: `cargo run --example quickstart`

use psens::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Checking a masked microdata set (paper Table 3).
    // ------------------------------------------------------------------
    let mm = psens::datasets::paper::table3_psensitive_example();
    println!("Paper Table 3 — masked microdata:\n");
    println!("{}", psens::microdata::render(&mm, 10));

    let keys = mm.schema().key_indices();
    let conf = mm.schema().confidential_indices();

    println!("3-anonymous?            {}", is_k_anonymous(&mm, &keys, 3));
    println!(
        "2-sensitive 3-anonymous? {}",
        is_p_sensitive_k_anonymous(&mm, &keys, &conf, 2, 3)
    );
    println!(
        "max satisfied p:         {}",
        max_p_of_masked(&mm, &keys, &conf)
    );
    let report = check_p_sensitivity(&mm, &keys, &conf, 2, 3);
    for v in &report.violations {
        println!(
            "violation: group of {} tuples has {} distinct value(s) of {}",
            v.group_size, v.distinct, v.attribute_name
        );
    }

    // ------------------------------------------------------------------
    // 2. Producing a masked microdata set (paper Figure 3 + Algorithm 3).
    // ------------------------------------------------------------------
    let im = psens::datasets::paper::figure3_microdata();
    let qi = psens::datasets::hierarchies::figure2_qi_space();
    println!("\nInitial microdata (paper Figure 3):\n");
    println!("{}", psens::microdata::render(&im, 12));

    let (p, k, ts) = (2, 2, 0);
    let outcome = pk_minimal_generalization(&im, &qi, p, k, ts, Pruning::NecessaryConditions)
        .expect("hierarchies cover the data");
    let node = outcome.node.expect("a p-k-minimal generalization exists");
    println!(
        "p-k-minimal generalization for p={p}, k={k}, TS={ts}: {} (height {})",
        qi.describe_node(&node),
        node.height()
    );
    let masked = outcome.masked.expect("masked table accompanies the node");
    println!("\nMasked microdata:\n");
    println!("{}", psens::microdata::render(&masked, 12));

    let keys = masked.schema().key_indices();
    let conf = masked.schema().confidential_indices();
    assert!(is_p_sensitive_k_anonymous(&masked, &keys, &conf, p, k));
    println!(
        "precision = {:.3}, avg class size (C_avg) = {:.3}",
        precision(&node, &qi.lattice()),
        avg_class_size(&masked, &keys, k)
    );
}
