//! The paper's Section 4 experiment on (synthetic) Adult census data:
//! find k-minimal generalizations for k = 2, 3 on 400- and 4,000-tuple
//! samples, count the attribute disclosures k-anonymity leaves behind
//! (Table 8), then show the p-sensitive search eliminating them.
//!
//! Run with: `cargo run --release --example adult_census`

use psens::datasets::hierarchies::adult_qi_space;
use psens::datasets::paper_samples;
use psens::metrics::attribute_risk;
use psens::prelude::*;

fn main() {
    let qi = adult_qi_space();
    let (sample400, sample4000) = paper_samples();
    println!(
        "Synthetic Adult lattice: {} nodes, height {}\n",
        qi.lattice().node_count(),
        qi.lattice().height()
    );

    println!("Reproducing Table 8 (k-anonymity leaves attribute disclosures):\n");
    println!(
        "{:<22}{:<22}{:>12}",
        "Size and k-anonymity", "Lattice Node", "Disclosures"
    );
    for (label, table) in [("400", &sample400), ("4000", &sample4000)] {
        for k in [2u32, 3] {
            // TS = 0 matches the paper's reported nodes best: with no
            // suppression budget, rare key combinations force generalization
            // as the sample grows (see EXPERIMENTS.md).
            let ts = 0;
            let outcome =
                k_minimal_generalization(table, &qi, k, ts).expect("hierarchies cover the data");
            let (Some(node), Some(masked)) = (&outcome.node, &outcome.masked) else {
                println!("{label} and {k}-anonymity: unsatisfiable");
                continue;
            };
            let keys = masked.schema().key_indices();
            let conf = masked.schema().confidential_indices();
            let disclosures = attribute_disclosure_count(masked, &keys, &conf);
            println!(
                "{:<22}{:<22}{:>12}",
                format!("{label} and {k}-anonymity"),
                qi.describe_node(node),
                disclosures
            );
        }
    }

    println!("\nRepairing the worst case with p-sensitive k-anonymity:\n");
    let ts = 0;
    for p in [2u32, 3] {
        let outcome =
            pk_minimal_generalization(&sample400, &qi, p, 2, ts, Pruning::NecessaryConditions)
                .expect("hierarchies cover the data");
        match (&outcome.node, &outcome.masked) {
            (Some(node), Some(masked)) => {
                let keys = masked.schema().key_indices();
                let conf = masked.schema().confidential_indices();
                let risk = attribute_risk(masked, &keys, &conf);
                println!(
                    "p = {p}: node {} (height {}), suppressed {}, disclosures {}, \
                     affected tuples {}",
                    qi.describe_node(node),
                    node.height(),
                    outcome.suppressed,
                    risk.disclosures,
                    risk.affected_tuples
                );
                assert!(is_p_sensitive_k_anonymous(masked, &keys, &conf, p, 2));
            }
            _ => println!("p = {p}: no satisfying node under these hierarchies"),
        }
    }

    println!("\nUtility comparison (400-tuple sample, k = 2):");
    let k_only = k_minimal_generalization(&sample400, &qi, 2, ts).unwrap();
    let p_sens =
        pk_minimal_generalization(&sample400, &qi, 2, 2, ts, Pruning::NecessaryConditions).unwrap();
    for (label, outcome) in [("k-anonymity only", &k_only), ("2-sensitive", &p_sens)] {
        if let (Some(node), Some(masked)) = (&outcome.node, &outcome.masked) {
            let keys = masked.schema().key_indices();
            println!(
                "  {label:<18} node {} precision {:.3}  DM {}  suppressed {}",
                qi.describe_node(node),
                precision(node, &qi.lattice()),
                discernibility(masked, &keys, outcome.suppressed, sample400.n_rows()),
                outcome.suppressed,
            );
        }
    }
}
