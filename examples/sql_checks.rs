//! The paper's checks, written as SQL and executed by the built-in engine.
//!
//! Section 2: "A simple SQL statement helps us check whether a relation
//! adheres to k-anonymity: SELECT COUNT(*) FROM Patient GROUP BY Sex,
//! ZipCode, Age." Section 3: "SELECT COUNT (distinct Sj) FROM IM".
//!
//! Run with: `cargo run --example sql_checks`

use psens::datasets::paper::{table1_patients, table3_psensitive_example};
use psens::datasets::AdultGenerator;
use psens::sql::{execute, Catalog};

fn show(catalog: &Catalog<'_>, sql: &str) {
    println!("sql> {sql}");
    match execute(catalog, sql) {
        Ok(result) => println!("{}", psens::microdata::render(&result, 12)),
        Err(err) => println!("error: {err}\n"),
    }
}

fn main() {
    let patient = table1_patients();
    let im = table3_psensitive_example();
    let adult = AdultGenerator::new(1).generate(1000);
    let mut catalog = Catalog::new();
    catalog.register("Patient", &patient);
    catalog.register("IM", &im);
    catalog.register("Adult", &adult);

    // The paper's k-anonymity check, verbatim.
    show(
        &catalog,
        "SELECT COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age",
    );
    // The actionable variant: list the groups violating k = 3.
    show(
        &catalog,
        "SELECT Sex, ZipCode, Age, COUNT(*) FROM Patient \
         GROUP BY Sex, ZipCode, Age HAVING COUNT(*) < 3",
    );
    // Condition 1's s_j, verbatim.
    show(&catalog, "SELECT COUNT(DISTINCT Illness) FROM IM");
    // The homogeneity problem as a query: groups with one distinct illness.
    show(
        &catalog,
        "SELECT Sex, ZipCode, Age, COUNT(DISTINCT Illness) FROM Patient \
         GROUP BY Sex, ZipCode, Age HAVING COUNT(DISTINCT Illness) < 2",
    );
    // Exploring the synthetic Adult sample.
    show(
        &catalog,
        "SELECT MaritalStatus, COUNT(*), COUNT(DISTINCT Pay) FROM Adult \
         WHERE Age >= 40 GROUP BY MaritalStatus ORDER BY 2 DESC LIMIT 5",
    );
    show(
        &catalog,
        "SELECT MIN(CapitalGain), MAX(CapitalGain), SUM(CapitalLoss) FROM Adult \
         WHERE Pay = '>50K'",
    );
}
