#!/bin/sh
# Local CI: formatting, lints, release build, and the test suite — the same
# gate a hosted pipeline would run. Operates on the default member set, which
# excludes crates/bench so everything here works offline.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "CI OK"
