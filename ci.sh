#!/bin/sh
# Local CI: formatting, lints, release build, and the test suite — the same
# gate a hosted pipeline would run. Operates on the default member set, which
# excludes crates/bench so everything here works offline. Builds are
# `--locked`: the committed Cargo.lock plus the in-tree `vendor/` directory
# make the pipeline reproducible with no network access.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --all-targets --locked -- -D warnings

echo "==> cargo build --release"
cargo build --release --locked

echo "==> cargo test"
cargo test -q --locked

echo "==> smoke: budget-interrupted anonymize (exit 3, termination report)"
PSENS=target/release/psens
SMOKE_DIR="$(mktemp -d)"
server_pid=""
# NB: guard the kill — an unconditional `kill "${server_pid:-0}"` would
# signal pid 0, i.e. this script's own process group.
trap 'if [ -n "$server_pid" ]; then kill "$server_pid" 2>/dev/null || true; fi; rm -rf "$SMOKE_DIR"' EXIT
"$PSENS" generate --rows 50000 --seed 7 --out "$SMOKE_DIR/data.csv" > /dev/null
"$PSENS" spec --out "$SMOKE_DIR/spec.json" > /dev/null
# An already-expired deadline (--timeout 0) interrupts deterministically at
# the first budget poll: exit 3, no release written, report names the cause.
code=0
"$PSENS" anonymize --spec "$SMOKE_DIR/spec.json" --input "$SMOKE_DIR/data.csv" \
  --out "$SMOKE_DIR/masked.csv" --k 3 --p 2 --ts 500 --timeout 0 --threads 1 \
  --report "$SMOKE_DIR/report.json" > /dev/null || code=$?
[ "$code" -eq 3 ] || { echo "expected exit 3 on expired deadline, got $code"; exit 1; }
[ ! -e "$SMOKE_DIR/masked.csv" ] || { echo "interrupted run must not write a release"; exit 1; }
grep -q '"reason": "deadline_exceeded"' "$SMOKE_DIR/report.json"
grep -q '"command": "anonymize"' "$SMOKE_DIR/report.json"
# A node budget interrupts at the same point every run: the termination and
# search counters of two identical runs must match line for line. Pinned to
# --threads 1 because a budget shared across parallel workers trips at a
# racy node, while the serial path is exactly reproducible.
for run in 1 2; do
  code=0
  "$PSENS" anonymize --spec "$SMOKE_DIR/spec.json" --input "$SMOKE_DIR/data.csv" \
    --out "$SMOKE_DIR/masked_$run.csv" --k 3 --p 2 --ts 500 --max-nodes 5 --threads 1 \
    --report "$SMOKE_DIR/report_$run.json" > /dev/null || code=$?
  [ "$code" -eq 3 ] || { echo "expected exit 3 on node budget, got $code"; exit 1; }
  grep -E '"(reason|max_nodes|nodes_evaluated|satisfied|node|proven_min_height)"' \
    "$SMOKE_DIR/report_$run.json" > "$SMOKE_DIR/stable_$run"
done
cmp -s "$SMOKE_DIR/stable_1" "$SMOKE_DIR/stable_2" \
  || { echo "interrupted runs are not deterministic"; diff "$SMOKE_DIR/stable_1" "$SMOKE_DIR/stable_2"; exit 1; }

echo "==> smoke: parallel + cached search is byte-for-byte deterministic"
# Unbudgeted, the parallel probe must pick the same (lexicographic-first)
# winner as the serial scan, and replayed verdicts must not change it: two
# 8-thread runs and one cache-disabled run produce identical releases.
for run in par_1 par_2; do
  "$PSENS" anonymize --spec "$SMOKE_DIR/spec.json" --input "$SMOKE_DIR/data.csv" \
    --out "$SMOKE_DIR/$run.csv" --k 3 --p 2 --ts 500 --threads 8 > /dev/null
done
"$PSENS" anonymize --spec "$SMOKE_DIR/spec.json" --input "$SMOKE_DIR/data.csv" \
  --out "$SMOKE_DIR/no_cache.csv" --k 3 --p 2 --ts 500 --threads 8 --no-cache > /dev/null
cmp "$SMOKE_DIR/par_1.csv" "$SMOKE_DIR/par_2.csv" \
  || { echo "8-thread releases differ between runs"; exit 1; }
cmp "$SMOKE_DIR/par_1.csv" "$SMOKE_DIR/no_cache.csv" \
  || { echo "--no-cache changed the release"; exit 1; }

echo "==> smoke: model matrix (check + anonymize under every privacy model)"
# Every pluggable model must drive the CLI end to end. The raw CSV is not
# even 3-anonymous, so `check` exits 2 (violation) under every model — the
# same code as the psens-k baseline — and `anonymize` must find a release
# (exit 0) under each. entropy-l runs at l = 1 because the synthetic Adult
# confidential columns are too skewed to reach ln 2 at any generalization;
# t-closeness is always satisfiable at the top node (one group, EMD 0).
baseline_code=0
"$PSENS" check --spec "$SMOKE_DIR/spec.json" --input "$SMOKE_DIR/data.csv" \
  --k 3 --p 2 > /dev/null || baseline_code=$?
[ "$baseline_code" -eq 2 ] \
  || { echo "raw data should fail the psens-k check with exit 2, got $baseline_code"; exit 1; }
for entry in "psens-k --p 2" "distinct-l --l 2" "entropy-l --l 1" "t-closeness --t 0.5"; do
  set -- $entry
  model=$1; shift
  code=0
  "$PSENS" check --spec "$SMOKE_DIR/spec.json" --input "$SMOKE_DIR/data.csv" \
    --model "$model" "$@" --k 3 > /dev/null || code=$?
  [ "$code" -eq "$baseline_code" ] \
    || { echo "check --model $model exited $code, baseline $baseline_code"; exit 1; }
  code=0
  "$PSENS" anonymize --spec "$SMOKE_DIR/spec.json" --input "$SMOKE_DIR/data.csv" \
    --model "$model" "$@" --k 3 --ts 500 --threads 8 \
    --out "$SMOKE_DIR/model_$model.csv" > /dev/null || code=$?
  [ "$code" -eq 0 ] || { echo "anonymize --model $model exited $code"; exit 1; }
  [ -s "$SMOKE_DIR/model_$model.csv" ] \
    || { echo "anonymize --model $model wrote no release"; exit 1; }
done
# The shared distinct-count predicate must yield the same release bytes
# whether it is called p-sensitivity or distinct l-diversity.
cmp "$SMOKE_DIR/model_psens-k.csv" "$SMOKE_DIR/model_distinct-l.csv" \
  || { echo "psens-k(p=2) and distinct-l(l=2) releases diverged"; exit 1; }

echo "==> smoke: chunked ingest matches buffered check at 1 and 8 threads"
# The in-process thread × chunk matrix lives in tests/chunked_equivalence.rs
# and tests/csv_streaming.rs (run by `cargo test` above). This stage drives
# the same invariant end to end through the CLI: `check` must print the same
# bytes and exit with the same code whether the CSV is buffered or streamed
# in chunks, serial or 8-way parallel.
buffered_code=0
"$PSENS" check --spec "$SMOKE_DIR/spec.json" --input "$SMOKE_DIR/data.csv" \
  --k 3 --p 2 > "$SMOKE_DIR/check_buffered" || buffered_code=$?
for threads in 1 8; do
  for chunk_rows in 1000 4096; do
    code=0
    "$PSENS" check --spec "$SMOKE_DIR/spec.json" --input "$SMOKE_DIR/data.csv" \
      --k 3 --p 2 --chunk-rows "$chunk_rows" --threads "$threads" \
      > "$SMOKE_DIR/check_chunked" || code=$?
    [ "$code" -eq "$buffered_code" ] \
      || { echo "chunked check exit $code != buffered $buffered_code (chunk_rows=$chunk_rows threads=$threads)"; exit 1; }
    cmp "$SMOKE_DIR/check_buffered" "$SMOKE_DIR/check_chunked" \
      || { echo "chunked check output diverged (chunk_rows=$chunk_rows threads=$threads)"; exit 1; }
  done
done

echo "==> smoke: 10M-row streaming ingest stays under a 2 GB memory ceiling"
# Chunked ingest holds one 100k-row slab at a time, so checking the ~486 MB
# 10M-row scale CSV peaks around 0.7 GB (columnar table + group-by scratch)
# and clears a 2 GB address-space ceiling. The buffered reader needs ~5.5 GB
# to hold the text plus per-field strings; the control run proves the
# ceiling is binding, not generous.
"$PSENS" generate --profile scale --rows 10000000 --seed 1 --chunk-rows 100000 \
  --out "$SMOKE_DIR/scale.csv" > /dev/null
"$PSENS" spec --profile scale --out "$SMOKE_DIR/scale_spec.json" > /dev/null
code=0
( ulimit -v 2000000
  exec "$PSENS" check --spec "$SMOKE_DIR/scale_spec.json" --input "$SMOKE_DIR/scale.csv" \
    --chunk-rows 100000 --k 1 --p 1 --threads 1 > "$SMOKE_DIR/scale_check" 2>&1 ) || code=$?
[ "$code" -eq 0 ] || { echo "chunked check broke the memory ceiling (exit $code)"; cat "$SMOKE_DIR/scale_check"; exit 1; }
grep -q 'rows: 10000000' "$SMOKE_DIR/scale_check"
code=0
( ulimit -v 2000000
  exec "$PSENS" check --spec "$SMOKE_DIR/scale_spec.json" --input "$SMOKE_DIR/scale.csv" \
    --k 1 --p 1 --threads 1 > /dev/null 2>&1 ) || code=$?
[ "$code" -ne 0 ] || { echo "ceiling not binding: buffered check fit in 2 GB"; exit 1; }

echo "==> smoke: psens-server boot, mixed load, warm==cold verdicts, SIGINT shutdown"
# Boot the daemon on an ephemeral port; --addr-file hands the bound address
# to clients with no race on stdout parsing. psens-load then drives three
# concurrent clients through a cold (store-disabled) and a warm pass of
# mixed check/anonymize/analyze/query traffic — it exits nonzero itself if
# any two anonymize verdicts diverge or the BENCH JSON fails write-back
# validation.
target/release/psens-server --listen 127.0.0.1:0 --max-concurrent 2 \
  --addr-file "$SMOKE_DIR/server.addr" > "$SMOKE_DIR/server.log" 2>&1 &
server_pid=$!
tries=0
while [ ! -s "$SMOKE_DIR/server.addr" ] && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1)); sleep 0.1
done
[ -s "$SMOKE_DIR/server.addr" ] \
  || { echo "server never wrote its addr file"; cat "$SMOKE_DIR/server.log"; exit 1; }
target/release/psens-load --addr-file "$SMOKE_DIR/server.addr" \
  --clients 3 --requests 12 --rows 150 --out "$SMOKE_DIR/BENCH_8.json" > /dev/null
grep -q '"warm_vs_cold"' "$SMOKE_DIR/BENCH_8.json"
grep -q '"robustness"' "$SMOKE_DIR/BENCH_8.json"
# Warm-vs-cold equivalence through the CLI client: the same anonymize with
# the verdict store disabled, cold, and warm must print byte-identical
# verdict objects — only the execution-side `warm` flag may differ.
"$PSENS" client --addr-file "$SMOKE_DIR/server.addr" --op register --name ci-adult \
  --input "$SMOKE_DIR/data.csv" --spec "$SMOKE_DIR/spec.json" > /dev/null
"$PSENS" client --addr-file "$SMOKE_DIR/server.addr" --op anonymize --dataset ci-adult \
  --p 2 --k 3 --ts 500 --no-cache > "$SMOKE_DIR/anon_nocache.json"
"$PSENS" client --addr-file "$SMOKE_DIR/server.addr" --op anonymize --dataset ci-adult \
  --p 2 --k 3 --ts 500 > "$SMOKE_DIR/anon_cold.json"
"$PSENS" client --addr-file "$SMOKE_DIR/server.addr" --op anonymize --dataset ci-adult \
  --p 2 --k 3 --ts 500 > "$SMOKE_DIR/anon_warm.json"
grep -q '"warm": true' "$SMOKE_DIR/anon_warm.json" \
  || { echo "third anonymize should have hit the warm store"; exit 1; }
for f in anon_nocache anon_cold anon_warm; do
  sed -n '/"verdict"/,/^  }/p' "$SMOKE_DIR/$f.json" > "$SMOKE_DIR/$f.verdict"
done
cmp "$SMOKE_DIR/anon_nocache.verdict" "$SMOKE_DIR/anon_cold.verdict" \
  || { echo "no-cache vs cold-store verdicts diverged"; exit 1; }
cmp "$SMOKE_DIR/anon_cold.verdict" "$SMOKE_DIR/anon_warm.verdict" \
  || { echo "cold vs warm-store verdicts diverged"; exit 1; }
# Clean shutdown: SIGINT must fan out to in-flight work, drain, and exit 0
# with the shutdown banner — a hung or killed-by-signal server fails here.
kill -INT "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=""
[ "$server_rc" -eq 0 ] \
  || { echo "server exited $server_rc on SIGINT"; cat "$SMOKE_DIR/server.log"; exit 1; }
grep -q 'shutdown complete' "$SMOKE_DIR/server.log" \
  || { echo "server log missing shutdown banner"; cat "$SMOKE_DIR/server.log"; exit 1; }

echo "==> chaos: seeded faults under load, kill -9 mid-load, crash recovery"
# Boot with a state dir, fault injection enabled, and a seeded boot-time
# fault plan that eats the first anonymize responses and slows every fifth
# check. Retrying clients must push identical verdicts through the faults;
# then the server is kill -9'd mid-load and restarted over the same state
# dir, and the recovered (journal-only, snapshot lost) verdicts must be
# byte-identical to the pre-crash ones.
CHAOS_DIR="$SMOKE_DIR/chaos-state"
PSENS_FAULTS='{"seed":11,"rules":[{"site":"write_response","op":"anonymize","action":"drop","first":2},{"site":"exec","op":"check","action":"delay_ms","ms":25,"every":5}]}' \
target/release/psens-server --listen 127.0.0.1:0 --max-concurrent 2 \
  --state-dir "$CHAOS_DIR" --enable-inject \
  --addr-file "$SMOKE_DIR/chaos.addr" > "$SMOKE_DIR/chaos1.log" 2>&1 &
server_pid=$!
tries=0
while [ ! -s "$SMOKE_DIR/chaos.addr" ] && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1)); sleep 0.1
done
[ -s "$SMOKE_DIR/chaos.addr" ] \
  || { echo "chaos server never wrote its addr file"; cat "$SMOKE_DIR/chaos1.log"; exit 1; }
# Pre-crash baseline through the retrying CLI client (the plan drops the
# first two anonymize responses; --retries must absorb them).
"$PSENS" client --addr-file "$SMOKE_DIR/chaos.addr" --op register --name chaos-adult \
  --input "$SMOKE_DIR/data.csv" --spec "$SMOKE_DIR/spec.json" --retries 5 > /dev/null
"$PSENS" client --addr-file "$SMOKE_DIR/chaos.addr" --op anonymize --dataset chaos-adult \
  --p 2 --k 3 --ts 500 --retries 5 > "$SMOKE_DIR/chaos_pre.json"
# Mixed load under the remaining faults: must exit 0 with honest counters.
target/release/psens-load --addr-file "$SMOKE_DIR/chaos.addr" \
  --clients 3 --requests 10 --rows 120 --retries 6 \
  --out "$SMOKE_DIR/BENCH_8_chaos.json" > /dev/null
grep -q '"robustness"' "$SMOKE_DIR/BENCH_8_chaos.json"
# kill -9 mid-load: another load starts, the server dies under it.
target/release/psens-load --addr-file "$SMOKE_DIR/chaos.addr" \
  --clients 2 --requests 8 --rows 120 --retries 2 > /dev/null 2>&1 &
load_pid=$!
sleep 0.3
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""
wait "$load_pid" 2>/dev/null || true  # the load loses its server; that IS the test
# Restart over the same state dir: the write-ahead journal must replay the
# registrations (the un-synced snapshot never existed — pools rebuild cold).
target/release/psens-server --listen 127.0.0.1:0 --state-dir "$CHAOS_DIR" \
  --addr-file "$SMOKE_DIR/chaos.addr2" > "$SMOKE_DIR/chaos2.log" 2>&1 &
server_pid=$!
tries=0
while [ ! -s "$SMOKE_DIR/chaos.addr2" ] && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1)); sleep 0.1
done
[ -s "$SMOKE_DIR/chaos.addr2" ] \
  || { echo "recovered server never wrote its addr file"; cat "$SMOKE_DIR/chaos2.log"; exit 1; }
grep -q 'recovered' "$SMOKE_DIR/chaos2.log" \
  || { echo "restart log missing recovery banner"; cat "$SMOKE_DIR/chaos2.log"; exit 1; }
# Cold (rebuilt) and warm post-crash verdicts must equal the pre-crash one.
"$PSENS" client --addr-file "$SMOKE_DIR/chaos.addr2" --op anonymize --dataset chaos-adult \
  --p 2 --k 3 --ts 500 > "$SMOKE_DIR/chaos_cold.json"
"$PSENS" client --addr-file "$SMOKE_DIR/chaos.addr2" --op anonymize --dataset chaos-adult \
  --p 2 --k 3 --ts 500 > "$SMOKE_DIR/chaos_warm.json"
grep -q '"warm": true' "$SMOKE_DIR/chaos_warm.json" \
  || { echo "second post-crash anonymize should have hit the warm store"; exit 1; }
for f in chaos_pre chaos_cold chaos_warm; do
  sed -n '/"verdict"/,/^  }/p' "$SMOKE_DIR/$f.json" > "$SMOKE_DIR/$f.verdict"
done
cmp "$SMOKE_DIR/chaos_pre.verdict" "$SMOKE_DIR/chaos_cold.verdict" \
  || { echo "pre-crash vs recovered-cold verdicts diverged"; exit 1; }
cmp "$SMOKE_DIR/chaos_cold.verdict" "$SMOKE_DIR/chaos_warm.verdict" \
  || { echo "recovered cold vs warm verdicts diverged"; exit 1; }
# Leak check: a burst of short-lived connections must leave the server's
# thread and fd counts where they were (per-connection watcher, no
# per-request spawns, connections fully reaped).
if [ -r "/proc/$server_pid/status" ]; then
  sleep 0.5
  threads_before=$(awk '/^Threads:/{print $2}' "/proc/$server_pid/status")
  fds_before=$(ls "/proc/$server_pid/fd" | wc -l)
  i=0
  while [ "$i" -lt 10 ]; do
    i=$((i + 1))
    "$PSENS" client --addr-file "$SMOKE_DIR/chaos.addr2" --op stats > /dev/null
  done
  sleep 0.5
  threads_after=$(awk '/^Threads:/{print $2}' "/proc/$server_pid/status")
  fds_after=$(ls "/proc/$server_pid/fd" | wc -l)
  [ "$threads_after" -le "$threads_before" ] \
    || { echo "server leaked threads: $threads_before -> $threads_after"; exit 1; }
  [ "$fds_after" -le "$fds_before" ] \
    || { echo "server leaked fds: $fds_before -> $fds_after"; exit 1; }
fi
# Clean shutdown of the recovered server writes the snapshot this time.
kill -INT "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=""
[ "$server_rc" -eq 0 ] \
  || { echo "recovered server exited $server_rc on SIGINT"; cat "$SMOKE_DIR/chaos2.log"; exit 1; }
grep -q 'shutdown complete' "$SMOKE_DIR/chaos2.log" \
  || { echo "recovered server log missing shutdown banner"; cat "$SMOKE_DIR/chaos2.log"; exit 1; }
grep -q 'snapshot written' "$SMOKE_DIR/chaos2.log" \
  || { echo "clean shutdown should have written a snapshot"; cat "$SMOKE_DIR/chaos2.log"; exit 1; }

echo "==> incremental: 200-delta stream, incremental == scratch, kill -9 mid-stream + resume"
# The DESIGN.md §17 contract end to end through the release binaries: a
# seeded 200-batch update stream fed through `client --op update` must leave
# the live table verdict-identical (at 1 and 8 threads) to a fresh server
# registered directly with the converged table — and a kill -9 mid-stream
# must lose nothing acknowledged: the write-ahead delta journal replays the
# prefix, `stats.deltas_applied` is the resume cursor, and the resumed
# stream converges to the same verdicts.
INC_DIR="$SMOKE_DIR/incremental"
mkdir -p "$INC_DIR"
"$PSENS" generate --rows 400 --seed 17 --out "$INC_DIR/base.csv" \
  --deltas 200 --deltas-out "$INC_DIR/deltas.jsonl" --final-out "$INC_DIR/final.csv" > /dev/null
target/release/psens-server --listen 127.0.0.1:0 --state-dir "$INC_DIR/state" \
  --addr-file "$INC_DIR/live.addr" > "$INC_DIR/live1.log" 2>&1 &
server_pid=$!
tries=0
while [ ! -s "$INC_DIR/live.addr" ] && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1)); sleep 0.1
done
[ -s "$INC_DIR/live.addr" ] \
  || { echo "incremental server never wrote its addr file"; cat "$INC_DIR/live1.log"; exit 1; }
"$PSENS" client --addr-file "$INC_DIR/live.addr" --op register --name inc-adult \
  --input "$INC_DIR/base.csv" --spec "$SMOKE_DIR/spec.json" > /dev/null
# A watch keeps a warm pool under selective invalidation across the stream.
"$PSENS" client --addr-file "$INC_DIR/live.addr" --op watch --dataset inc-adult \
  --p 2 --k 3 --ts 50 > /dev/null
# Stream the first 120 batches, then kill -9 with no clean shutdown.
n=0
while read -r batch && [ "$n" -lt 120 ]; do
  n=$((n + 1))
  "$PSENS" client --addr-file "$INC_DIR/live.addr" --op update --dataset inc-adult \
    --delta "$batch" > /dev/null
done < "$INC_DIR/deltas.jsonl"
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""
target/release/psens-server --listen 127.0.0.1:0 --state-dir "$INC_DIR/state" \
  --addr-file "$INC_DIR/live2.addr" > "$INC_DIR/live2.log" 2>&1 &
server_pid=$!
tries=0
while [ ! -s "$INC_DIR/live2.addr" ] && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1)); sleep 0.1
done
[ -s "$INC_DIR/live2.addr" ] \
  || { echo "restarted incremental server never wrote its addr file"; cat "$INC_DIR/live2.log"; exit 1; }
# Every acknowledged update was journaled write-ahead (synced per record),
# so the replayed prefix is exactly the 120 batches the client saw land.
"$PSENS" client --addr-file "$INC_DIR/live2.addr" --op stats > "$INC_DIR/stats_resume.json"
applied=$(grep -o '"deltas_applied": [0-9]*' "$INC_DIR/stats_resume.json" | head -1 | grep -o '[0-9]*')
[ "$applied" = "120" ] \
  || { echo "resume cursor should be 120 journaled deltas, got '$applied'"; cat "$INC_DIR/live2.log"; exit 1; }
# Resume exactly where the journal left off and finish the stream.
n=0
while read -r batch; do
  n=$((n + 1))
  [ "$n" -le "$applied" ] && continue
  "$PSENS" client --addr-file "$INC_DIR/live2.addr" --op update --dataset inc-adult \
    --delta "$batch" > /dev/null
done < "$INC_DIR/deltas.jsonl"
# The live table must now have converged to final.csv's row count...
final_rows=$(($(wc -l < "$INC_DIR/final.csv") - 1))
"$PSENS" client --addr-file "$INC_DIR/live2.addr" --op stats > "$INC_DIR/stats_done.json"
grep -q "\"rows\": $final_rows" "$INC_DIR/stats_done.json" \
  || { echo "live table row count diverged from generate --final-out ($final_rows)"; cat "$INC_DIR/stats_done.json"; exit 1; }
# ...and a scratch server registered with final.csv directly must produce
# byte-identical verdicts at 1 and 8 threads.
target/release/psens-server --listen 127.0.0.1:0 \
  --addr-file "$INC_DIR/scratch.addr" > "$INC_DIR/scratch.log" 2>&1 &
scratch_pid=$!
tries=0
while [ ! -s "$INC_DIR/scratch.addr" ] && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1)); sleep 0.1
done
[ -s "$INC_DIR/scratch.addr" ] \
  || { echo "scratch server never wrote its addr file"; cat "$INC_DIR/scratch.log"; kill -9 "$scratch_pid" 2>/dev/null || true; exit 1; }
"$PSENS" client --addr-file "$INC_DIR/scratch.addr" --op register --name inc-adult \
  --input "$INC_DIR/final.csv" --spec "$SMOKE_DIR/spec.json" > /dev/null
for threads in 1 8; do
  "$PSENS" client --addr-file "$INC_DIR/live2.addr" --op anonymize --dataset inc-adult \
    --p 2 --k 3 --ts 50 --threads "$threads" > "$INC_DIR/inc_t$threads.json"
  "$PSENS" client --addr-file "$INC_DIR/scratch.addr" --op anonymize --dataset inc-adult \
    --p 2 --k 3 --ts 50 --threads "$threads" > "$INC_DIR/scr_t$threads.json"
  for f in "inc_t$threads" "scr_t$threads"; do
    sed -n '/"verdict"/,/^  }/p' "$INC_DIR/$f.json" > "$INC_DIR/$f.verdict"
  done
  cmp "$INC_DIR/inc_t$threads.verdict" "$INC_DIR/scr_t$threads.verdict" \
    || { echo "incremental vs scratch verdicts diverged at threads=$threads"; kill -9 "$scratch_pid" 2>/dev/null || true; exit 1; }
done
cmp "$INC_DIR/inc_t1.verdict" "$INC_DIR/inc_t8.verdict" \
  || { echo "incremental verdicts diverged between 1 and 8 threads"; kill -9 "$scratch_pid" 2>/dev/null || true; exit 1; }
kill -INT "$scratch_pid"
wait "$scratch_pid" 2>/dev/null || true
kill -INT "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=""
[ "$server_rc" -eq 0 ] \
  || { echo "incremental server exited $server_rc on SIGINT"; cat "$INC_DIR/live2.log"; exit 1; }

echo "==> guard: every committed .proptest-regressions file replays green"
# A renamed or deleted proptest suite silently orphans its regression file —
# the recorded counterexamples then never replay again and a revived bug
# rides in unnoticed. Re-run the owning test target for every committed
# regressions file; an orphan fails loudly because the target no longer
# exists. (The full-suite `cargo test` above already replayed them once;
# this stage pins the file-to-target correspondence.)
find . -name '*.proptest-regressions' -not -path './target/*' | while read -r reg; do
  name=$(basename "$reg" .proptest-regressions)
  case "$reg" in
    ./tests/*)
      [ -f "./tests/$name.rs" ] \
        || { echo "orphaned regressions file (no tests/$name.rs): $reg"; exit 1; }
      cargo test -q --locked --test "$name" > /dev/null \
        || { echo "regressions replay failed for $reg"; exit 1; }
      ;;
    ./crates/*/tests/*)
      crate=${reg#./crates/}; crate=${crate%%/*}
      [ -f "./crates/$crate/tests/$name.rs" ] \
        || { echo "orphaned regressions file (no crates/$crate/tests/$name.rs): $reg"; exit 1; }
      cargo test -q --locked -p "psens-$crate" --test "$name" > /dev/null \
        || { echo "regressions replay failed for $reg"; exit 1; }
      ;;
    *)
      echo "regressions file in unexpected location: $reg"; exit 1
      ;;
  esac
done

echo "==> gate: chunked group-by thread scaling (threads=8 vs 1 at 10M rows)"
# The morsel executor must actually buy wall-clock on real parallelism:
# on hosts with >= 4 cores, 8 threads must beat 1 thread or the gate fails.
# On smaller hosts the binary prints a loud SKIPPED banner and exits 0 —
# a 1-core box cannot demonstrate scaling, and pretending it passed would
# hide real regressions. The bench crate is outside the default member set
# but this bin has no external dependencies, so the build stays offline.
# `--out` routes the measurements through the validated emission path
# (write, re-read, byte-compare, re-parse): an emission failure turns the
# gate red even when the perf check passed, so a truncated BENCH file can
# never masquerade as a green run.
cargo build --release --locked -p psens-bench --bin chunked_scaling
target/release/chunked_scaling --gate --out "$SMOKE_DIR/gate.json"
[ -s "$SMOKE_DIR/gate.json" ] || { echo "gate did not emit its BENCH JSON"; exit 1; }

echo "CI OK"
