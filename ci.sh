#!/bin/sh
# Local CI: formatting, lints, release build, and the test suite — the same
# gate a hosted pipeline would run. Operates on the default member set, which
# excludes crates/bench so everything here works offline. Builds are
# `--locked`: the committed Cargo.lock plus the in-tree `vendor/` directory
# make the pipeline reproducible with no network access.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --all-targets --locked -- -D warnings

echo "==> cargo build --release"
cargo build --release --locked

echo "==> cargo test"
cargo test -q --locked

echo "CI OK"
