//! Cross-validation of the SQL engine against the native operators: the two
//! implementations of the paper's checks must always agree.

use proptest::prelude::*;
use psens::prelude::*;
use psens::sql::{execute, Catalog};

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::cat_key("X"),
        Attribute::cat_key("Y"),
        Attribute::cat_confidential("S"),
    ])
    .unwrap()
}

fn build_table(rows: &[(u8, u8, u8)]) -> Table {
    let mut builder = TableBuilder::new(schema());
    for &(x, y, s) in rows {
        builder
            .push_row(vec![
                Value::Text(format!("x{x}")),
                Value::Text(format!("y{y}")),
                Value::Text(format!("s{s}")),
            ])
            .unwrap();
    }
    builder.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sql_group_counts_match_native_groupby(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..4), 1..60),
    ) {
        let t = build_table(&rows);
        let mut catalog = Catalog::new();
        catalog.register("T", &t);
        let result = execute(&catalog, "SELECT COUNT(*) FROM T GROUP BY X, Y").unwrap();
        let groups = GroupBy::compute(&t, &[0, 1]);
        prop_assert_eq!(result.n_rows(), groups.n_groups());
        let mut sql_counts: Vec<i64> = (0..result.n_rows())
            .map(|r| result.value(r, 0).as_int().unwrap())
            .collect();
        let mut native_counts: Vec<i64> =
            groups.sizes().iter().map(|&s| i64::from(s)).collect();
        sql_counts.sort_unstable();
        native_counts.sort_unstable();
        prop_assert_eq!(sql_counts, native_counts);
    }

    #[test]
    fn sql_having_counts_k_violations_like_the_checker(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..4), 1..60),
        k in 1i64..6,
    ) {
        let t = build_table(&rows);
        let mut catalog = Catalog::new();
        catalog.register("T", &t);
        let sql = format!(
            "SELECT COUNT(*) FROM T GROUP BY X, Y HAVING COUNT(*) < {k}"
        );
        let violating_groups = execute(&catalog, &sql).unwrap();
        let report = check_k_anonymity(&t, &[0, 1], k as u32);
        // The SQL view lists violating groups; the checker counts tuples.
        let tuple_total: i64 = (0..violating_groups.n_rows())
            .map(|r| violating_groups.value(r, 0).as_int().unwrap())
            .sum();
        prop_assert_eq!(tuple_total as usize, report.violating_tuples);
        prop_assert_eq!(violating_groups.n_rows() == 0, report.satisfied());
    }

    #[test]
    fn sql_count_distinct_matches_condition1(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..4), 1..60),
    ) {
        let t = build_table(&rows);
        let mut catalog = Catalog::new();
        catalog.register("IM", &t);
        let result = execute(&catalog, "SELECT COUNT(DISTINCT S) FROM IM").unwrap();
        let stats = ConfidentialStats::compute(&t, &[2]);
        prop_assert_eq!(
            result.value(0, 0).as_int().unwrap() as usize,
            stats.max_p()
        );
    }

    #[test]
    fn sql_per_group_distinct_matches_sensitivity_scan(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..4), 1..60),
        p in 1i64..4,
    ) {
        let t = build_table(&rows);
        let mut catalog = Catalog::new();
        catalog.register("T", &t);
        let sql = format!(
            "SELECT COUNT(DISTINCT S) FROM T GROUP BY X, Y \
             HAVING COUNT(DISTINCT S) < {p}"
        );
        let violating = execute(&catalog, &sql).unwrap();
        let report = check_p_sensitivity(&t, &[0, 1], &[2], p as u32, 1);
        prop_assert_eq!(violating.n_rows(), report.violations.len());
    }

    #[test]
    fn sql_where_matches_native_filter(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..4), 1..60),
        pick in 0u8..4,
    ) {
        let t = build_table(&rows);
        let mut catalog = Catalog::new();
        catalog.register("T", &t);
        let sql = format!("SELECT X, Y, S FROM T WHERE X = 'x{pick}'");
        let result = execute(&catalog, &sql).unwrap();
        let expected = t.filter(|row| t.value(row, 0) == Value::Text(format!("x{pick}")));
        prop_assert_eq!(result.n_rows(), expected.n_rows());
        for row in 0..result.n_rows() {
            for col in 0..3 {
                prop_assert_eq!(result.value(row, col), expected.value(row, col));
            }
        }
    }
}

#[test]
fn sql_audit_agrees_on_the_paper_fixture() {
    let patient = psens::datasets::paper::table1_patients();
    let mut catalog = Catalog::new();
    catalog.register("Patient", &patient);
    // Homogeneous-illness groups via SQL == attribute disclosures via core.
    let sql_result = execute(
        &catalog,
        "SELECT COUNT(DISTINCT Illness) FROM Patient GROUP BY Sex, ZipCode, Age \
         HAVING COUNT(DISTINCT Illness) < 2",
    )
    .unwrap();
    let keys = patient.schema().key_indices();
    let conf = patient.schema().confidential_indices();
    assert_eq!(
        sql_result.n_rows(),
        attribute_disclosure_count(&patient, &keys, &conf)
    );
}
