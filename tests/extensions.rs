//! Integration and property tests for the extension features: extended
//! p-sensitivity, local suppression, Incognito, the parallel scan, and the
//! diversity measures.

use proptest::prelude::*;
use psens::core::extended::{check_extended, ConfidentialSpec};
use psens::core::locally_suppress_to_k;
use psens::hierarchy::CatHierarchy;
use psens::metrics::diversity_report;
use psens::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::cat_key("X"),
        Attribute::cat_key("Y"),
        Attribute::cat_confidential("S"),
    ])
    .unwrap()
}

fn arb_row() -> impl Strategy<Value = (u8, u8, u8)> {
    (0u8..4, 0u8..3, 0u8..4)
}

fn build_table(rows: &[(u8, u8, u8)]) -> Table {
    let mut builder = TableBuilder::new(schema());
    for &(x, y, s) in rows {
        builder
            .push_row(vec![
                Value::Text(format!("x{x}")),
                Value::Text(format!("y{y}")),
                Value::Text(format!("s{s}")),
            ])
            .unwrap();
    }
    builder.finish()
}

/// Confidential hierarchy: s0,s1 -> even; s2,s3 -> odd; top *.
fn s_hierarchy() -> Hierarchy {
    Hierarchy::Cat(
        CatHierarchy::identity(["s0", "s1", "s2", "s3"])
            .unwrap()
            .push_level([("s0", "even"), ("s1", "even"), ("s2", "odd"), ("s3", "odd")])
            .unwrap()
            .push_top("*")
            .unwrap(),
    )
}

fn qi_space() -> QiSpace {
    let x = CatHierarchy::identity(["x0", "x1", "x2", "x3"])
        .unwrap()
        .push_level([("x0", "xa"), ("x1", "xa"), ("x2", "xb"), ("x3", "xb")])
        .unwrap()
        .push_top("*")
        .unwrap();
    let y = CatHierarchy::identity(["y0", "y1", "y2"])
        .unwrap()
        .push_top("*")
        .unwrap();
    QiSpace::new(vec![
        ("X".into(), Hierarchy::Cat(x)),
        ("Y".into(), Hierarchy::Cat(y)),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn extended_is_at_most_plain_sensitivity(
        rows in prop::collection::vec(arb_row(), 1..50),
        p in 1u32..4,
        k in 1u32..4,
    ) {
        // Categories coarsen values, so extended p-sensitivity (level 1)
        // implies plain p-sensitivity (level 0) — never the reverse.
        let t = build_table(&rows);
        let h = s_hierarchy();
        let keys = [0usize, 1];
        let level1 = [ConfidentialSpec { attribute: 2, hierarchy: &h, level: 1 }];
        let extended = check_extended(&t, &keys, &level1, p, k).unwrap().satisfied();
        let plain = is_p_sensitive_k_anonymous(&t, &keys, &[2], p, k);
        prop_assert!(!extended || plain, "extended must imply plain");
        // And level 0 must coincide with plain exactly.
        let level0 = [ConfidentialSpec { attribute: 2, hierarchy: &h, level: 0 }];
        let at0 = check_extended(&t, &keys, &level0, p, k).unwrap().satisfied();
        prop_assert_eq!(at0, plain);
    }

    #[test]
    fn local_suppression_reaches_k_or_reports_impossible(
        rows in prop::collection::vec(arb_row(), 1..50),
        k in 1u32..5,
    ) {
        let t = build_table(&rows);
        match locally_suppress_to_k(&t, &[0, 1], k) {
            Some(result) => {
                prop_assert!(is_k_anonymous(&result.table, &[0, 1], k));
                prop_assert_eq!(result.table.n_rows(), t.n_rows());
                // Confidential column untouched.
                prop_assert_eq!(result.table.column(2), t.column(2));
            }
            None => {
                // The greedy gives up only when a residual pool of violating
                // tuples is smaller than k after all their key cells are
                // blank; that requires some violation to begin with.
                let violating = GroupBy::compute(&t, &[0, 1]).rows_in_small_groups(k);
                prop_assert!(violating > 0, "None requires an initial violation");
            }
        }
    }

    #[test]
    fn incognito_levelwise_and_parallel_agree(
        rows in prop::collection::vec(arb_row(), 1..40),
        p in 1u32..3,
        k in 1u32..4,
        ts in 0usize..5,
    ) {
        let t = build_table(&rows);
        let qi = qi_space();
        let mut exhaustive = exhaustive_scan(&t, &qi, p, k, ts).unwrap().minimal;
        let mut levelwise = levelwise_minimal(&t, &qi, p, k, ts).unwrap().minimal;
        let mut incognito =
            psens::algorithms::incognito_minimal(&t, &qi, p, k, ts).unwrap().minimal;
        let parallel =
            psens::algorithms::parallel_exhaustive_scan(&t, &qi, p, k, ts, 3).unwrap();
        let mut par_minimal = parallel.minimal;
        exhaustive.sort();
        levelwise.sort();
        incognito.sort();
        par_minimal.sort();
        prop_assert_eq!(&exhaustive, &levelwise);
        prop_assert_eq!(&exhaustive, &incognito);
        prop_assert_eq!(&exhaustive, &par_minimal);
    }

    #[test]
    fn diversity_measures_are_ordered(rows in prop::collection::vec(arb_row(), 1..50)) {
        let t = build_table(&rows);
        let report = diversity_report(&t, &[0, 1], 2).unwrap();
        // Entropy l never exceeds distinct l (uniform maximizes entropy).
        prop_assert!(
            report.entropy_l <= f64::from(report.distinct_l) + 1e-9,
            "entropy {} vs distinct {}",
            report.entropy_l,
            report.distinct_l
        );
        prop_assert!(report.entropy_l >= 1.0 - 1e-9);
        // Confidence is at least the uniform floor of the worst group.
        prop_assert!(report.max_confidence >= 1.0 / f64::from(report.distinct_l) - 1e-9);
        prop_assert!(report.max_confidence <= 1.0 + 1e-9);
        // distinct_l is exactly max_p.
        prop_assert_eq!(report.distinct_l, max_p_of_masked(&t, &[0, 1], &[2]));
    }
}

#[test]
fn local_beats_row_suppression_on_cells_lost() {
    // On Figure 3's data at k = 2: row suppression deletes 6 tuples
    // (12 cells + 6 confidential values); local suppression blanks fewer
    // cells and keeps every tuple.
    let im = psens::datasets::paper::figure3_microdata();
    let keys = im.schema().key_indices();
    let rows = psens::core::suppress_to_k(&im, &keys, 2);
    let cells = locally_suppress_to_k(&im, &keys, 2).unwrap();
    assert_eq!(rows.removed, 6);
    assert!(cells.cells_suppressed < rows.removed * keys.len());
    assert_eq!(cells.table.n_rows(), im.n_rows());
}

#[test]
fn extended_check_composes_with_search() {
    // Search with plain p-sensitivity, then audit the result with the
    // extended model: the audit may fail, demonstrating the gap.
    let schema = Schema::new(vec![
        Attribute::cat_key("X"),
        Attribute::cat_confidential("S"),
    ])
    .unwrap();
    let t = table_from_str_rows(
        schema,
        &[
            &["x0", "s0"],
            &["x0", "s1"], // group {s0, s1}: 2 values, 1 category
            &["x1", "s0"],
            &["x1", "s2"], // group {s0, s2}: 2 values, 2 categories
        ],
    )
    .unwrap();
    assert!(is_p_sensitive_k_anonymous(&t, &[0], &[1], 2, 2));
    let h = s_hierarchy();
    let spec = [ConfidentialSpec {
        attribute: 1,
        hierarchy: &h,
        level: 1,
    }];
    let report = check_extended(&t, &[0], &spec, 2, 2).unwrap();
    assert!(!report.satisfied());
    assert_eq!(report.violations.len(), 1);
}
