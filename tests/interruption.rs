//! End-to-end interruption behaviour across the search algorithms.
//!
//! Three guarantees are pinned down here:
//!
//! 1. **Determinism** — a node budget of `N` stops a serial search at exactly
//!    the same place every run, so interrupted results are reproducible.
//! 2. **Cancellation ≡ budget** — tripping the [`CancelToken`] after `N`
//!    node checks (with a check interval of 1) yields the same partial
//!    results as `--max-nodes N`; only the recorded cause differs.
//! 3. **Worker fault isolation** — a panicking worker in the parallel scan
//!    loses only its own chunk: survivors complete, the failure is tallied
//!    in `worker_failures`, and the process does not abort.

use psens::algorithms::{
    exhaustive_scan, exhaustive_scan_budgeted, exhaustive_scan_tuned, greedy_pk_cluster_budgeted,
    incognito_minimal_budgeted, levelwise_minimal_budgeted, levelwise_minimal_tuned,
    mondrian_anonymize_budgeted, parallel_exhaustive_scan, parallel_exhaustive_scan_budgeted,
    pk_minimal_generalization_budgeted, pk_minimal_generalization_tuned, ClusterError,
    GreedyClusterConfig, MondrianConfig, Pruning, Tuning,
};
use psens::core::{
    CancelToken, CheckStage, NoopObserver, SearchBudget, SearchObserver, Termination, VerdictStore,
};
use psens::datasets::hierarchies::{adult_qi_space, figure2_qi_space};
use psens::datasets::paper::figure3_microdata;
use psens::datasets::AdultGenerator;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

#[test]
fn node_budgets_stop_every_algorithm_with_the_right_verdict() {
    let im = AdultGenerator::new(90).generate(300);
    let qi = adult_qi_space();
    let budget = SearchBudget::unlimited().with_max_nodes(3);

    let full = exhaustive_scan(&im, &qi, 2, 2, 15).unwrap();
    assert!(full.stats.nodes_evaluated > 3, "budget must actually bind");

    // Exhaustive: the node budget is exact — three admissions, three nodes.
    let ex = exhaustive_scan_budgeted(&im, &qi, 2, 2, 15, &budget, &NoopObserver).unwrap();
    assert_eq!(ex.termination, Termination::NodeBudgetExhausted);
    assert_eq!(ex.stats.nodes_evaluated, 3);

    // The shared budget is global across workers, so the parallel scan
    // admits the same total.
    let par =
        parallel_exhaustive_scan_budgeted(&im, &qi, 2, 2, 15, 4, &budget, &NoopObserver).unwrap();
    assert_eq!(par.termination, Termination::NodeBudgetExhausted);
    assert_eq!(par.stats.nodes_evaluated, 3);

    let sam = pk_minimal_generalization_budgeted(
        &im,
        &qi,
        2,
        2,
        15,
        Pruning::NecessaryConditions,
        &budget,
        &NoopObserver,
    )
    .unwrap();
    assert_eq!(sam.termination, Termination::NodeBudgetExhausted);
    assert!(sam.stats.nodes_evaluated <= 3);

    let lw = levelwise_minimal_budgeted(&im, &qi, 2, 2, 15, &budget, &NoopObserver).unwrap();
    assert_eq!(lw.termination, Termination::NodeBudgetExhausted);
    assert!(lw.stats.nodes_evaluated <= 3);

    let inc = incognito_minimal_budgeted(&im, &qi, 2, 2, 15, &budget, &NoopObserver).unwrap();
    assert_eq!(inc.termination, Termination::NodeBudgetExhausted);

    // Mondrian finalizes pending partitions and stays a valid cover.
    let mon =
        mondrian_anonymize_budgeted(&im, MondrianConfig { k: 5, p: 1 }, &budget, &NoopObserver)
            .unwrap();
    assert_eq!(mon.termination, Termination::NodeBudgetExhausted);
    let covered: usize = mon.partitions.iter().map(Vec::len).sum();
    assert_eq!(covered, im.n_rows());

    // Greedy clustering: three coarse units cannot finish one k = 4 cluster,
    // so the run reports interruption rather than an empty success.
    let err = greedy_pk_cluster_budgeted(
        &im,
        GreedyClusterConfig { k: 4, p: 2 },
        &budget,
        &NoopObserver,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        ClusterError::Interrupted(Termination::NodeBudgetExhausted)
    ));
}

#[test]
fn interrupted_runs_are_deterministic() {
    let im = AdultGenerator::new(91).generate(250);
    let qi = adult_qi_space();
    for n in [0u64, 1, 5, 17] {
        let budget = SearchBudget::unlimited().with_max_nodes(n);
        let a = exhaustive_scan_budgeted(&im, &qi, 2, 2, 10, &budget, &NoopObserver).unwrap();
        let b = exhaustive_scan_budgeted(&im, &qi, 2, 2, 10, &budget, &NoopObserver).unwrap();
        assert_eq!(a.satisfying, b.satisfying, "n={n}");
        assert_eq!(a.annotations, b.annotations, "n={n}");
        assert_eq!(a.stats, b.stats, "n={n}");
        assert_eq!(a.termination, b.termination, "n={n}");

        let sa = pk_minimal_generalization_budgeted(
            &im,
            &qi,
            2,
            2,
            10,
            Pruning::NecessaryConditions,
            &budget,
            &NoopObserver,
        )
        .unwrap();
        let sb = pk_minimal_generalization_budgeted(
            &im,
            &qi,
            2,
            2,
            10,
            Pruning::NecessaryConditions,
            &budget,
            &NoopObserver,
        )
        .unwrap();
        assert_eq!(sa.node, sb.node, "n={n}");
        assert_eq!(sa.proven_min_height, sb.proven_min_height, "n={n}");
        assert_eq!(sa.stats, sb.stats, "n={n}");
    }
}

/// Trips `token` once `node_checked` has fired `remaining` times.
struct CancelAfter {
    token: CancelToken,
    remaining: AtomicU64,
}

impl SearchObserver for CancelAfter {
    fn node_checked(&self, _h: usize, _s: CheckStage, _sup: usize, _e: Duration) {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.token.cancel();
        }
    }
}

#[test]
fn cancellation_equals_an_equivalent_node_budget() {
    let im = AdultGenerator::new(92).generate(200);
    let qi = adult_qi_space();
    for n in [1u64, 4, 9] {
        let budgeted = exhaustive_scan_budgeted(
            &im,
            &qi,
            2,
            2,
            10,
            &SearchBudget::unlimited().with_max_nodes(n),
            &NoopObserver,
        )
        .unwrap();
        assert_eq!(budgeted.termination, Termination::NodeBudgetExhausted);

        // Cancel after exactly n checks; a check interval of 1 makes the
        // trip visible at the very next admission.
        let token = CancelToken::new();
        let observer = CancelAfter {
            token: token.clone(),
            remaining: AtomicU64::new(n),
        };
        let cancelled = exhaustive_scan_budgeted(
            &im,
            &qi,
            2,
            2,
            10,
            &SearchBudget::unlimited()
                .with_cancel(token)
                .with_check_interval(1),
            &observer,
        )
        .unwrap();
        assert_eq!(cancelled.termination, Termination::Cancelled, "n={n}");
        assert_eq!(
            budgeted.stats.nodes_evaluated,
            cancelled.stats.nodes_evaluated
        );
        assert_eq!(budgeted.satisfying, cancelled.satisfying, "n={n}");
        assert_eq!(budgeted.annotations, cancelled.annotations, "n={n}");
    }
}

#[test]
fn an_already_expired_deadline_trips_before_any_work() {
    let im = figure3_microdata();
    let qi = figure2_qi_space();
    let budget = SearchBudget::unlimited().with_timeout(Duration::ZERO);
    let outcome = exhaustive_scan_budgeted(&im, &qi, 1, 2, 0, &budget, &NoopObserver).unwrap();
    assert_eq!(outcome.termination, Termination::DeadlineExceeded);
    assert_eq!(outcome.stats.nodes_evaluated, 0);
}

/// Panics on the first `node_checked` call only — whichever worker draws it.
struct PanicOnce(AtomicBool);

impl SearchObserver for PanicOnce {
    fn node_checked(&self, _h: usize, _s: CheckStage, _sup: usize, _e: Duration) {
        if !self.0.swap(true, Ordering::SeqCst) {
            panic!("injected observer failure");
        }
    }
}

#[test]
fn a_panicking_worker_loses_only_its_own_chunk() {
    let im = figure3_microdata();
    let qi = figure2_qi_space();
    // 6 lattice nodes across 4 requested workers -> 3 chunks of 2 nodes.
    let full = parallel_exhaustive_scan(&im, &qi, 1, 2, 0, 4).unwrap();
    assert_eq!(full.stats.nodes_evaluated, 6);
    assert_eq!(full.stats.worker_failures, 0);

    let observer = PanicOnce(AtomicBool::new(false));
    let outcome = parallel_exhaustive_scan_budgeted(
        &im,
        &qi,
        1,
        2,
        0,
        4,
        &SearchBudget::unlimited(),
        &observer,
    )
    .unwrap();
    // Exactly one worker panicked (on its first node), losing its 2-node
    // chunk; the other two chunks complete normally.
    assert_eq!(outcome.stats.worker_failures, 1);
    assert_eq!(outcome.stats.nodes_evaluated, 4);
    assert_eq!(outcome.termination, Termination::Completed);
    for node in &outcome.satisfying {
        assert!(full.satisfying.contains(node), "phantom result {node}");
    }
    for annotation in &outcome.annotations {
        assert!(full.annotations.contains(annotation));
    }
}

#[test]
fn replayed_verdicts_do_not_consume_the_node_budget() {
    let im = AdultGenerator::new(93).generate(200);
    let qi = adult_qi_space();
    let (p, k, ts) = (2u32, 2u32, 10usize);
    let lattice = qi.lattice();
    let budget = SearchBudget::unlimited().with_max_nodes(10);

    // Cold, the ten-node budget binds and every admission is a fresh check.
    let cold = exhaustive_scan_budgeted(&im, &qi, p, k, ts, &budget, &NoopObserver).unwrap();
    assert_eq!(cold.termination, Termination::NodeBudgetExhausted);
    assert_eq!(cold.stats.nodes_evaluated, 10);

    // Partial warm: the same budget with a store admits the same ten nodes.
    let store = VerdictStore::new(&lattice, ts);
    let tuning = Tuning {
        threads: 1,
        cache: Some(&store),
        chunk_rows: 0,
    };
    let first = exhaustive_scan_tuned(&im, &qi, p, k, ts, &budget, tuning, &NoopObserver).unwrap();
    assert_eq!(first.stats.nodes_evaluated, 10);
    assert_eq!(first.annotations, cold.annotations);

    // Rerunning under the *same* budget, the warm prefix replays without
    // consuming admissions, so ten new nodes are admitted and the scan gets
    // strictly further: producing the cold run's ten annotations cost zero
    // fresh evaluations this time.
    let second = exhaustive_scan_tuned(&im, &qi, p, k, ts, &budget, tuning, &NoopObserver).unwrap();
    assert_eq!(second.stats.cache_hits, 10);
    assert_eq!(second.stats.nodes_evaluated, 10);
    assert_eq!(second.annotations.len(), 20);
    assert_eq!(second.annotations[..10], cold.annotations[..]);

    // A fully warm store completes under the tripping budget with zero
    // fresh evaluations — strictly fewer than the cold run's ten.
    let unlimited = SearchBudget::unlimited();
    let full =
        exhaustive_scan_tuned(&im, &qi, p, k, ts, &unlimited, tuning, &NoopObserver).unwrap();
    let warm = exhaustive_scan_tuned(&im, &qi, p, k, ts, &budget, tuning, &NoopObserver).unwrap();
    assert_eq!(warm.termination, Termination::Completed);
    assert_eq!(warm.stats.nodes_evaluated, 0);
    assert!(warm.stats.nodes_evaluated < cold.stats.nodes_evaluated);
    assert_eq!(warm.stats.cache_hits, full.annotations.len());
    assert_eq!(warm.annotations, full.annotations);
    assert_eq!(warm.satisfying, full.satisfying);
}

#[test]
fn inferred_verdicts_never_count_against_the_budget() {
    // This (seed, p, k, TS) combination is chosen so the binary search's
    // probe path provably crosses a rolled-up stratum: with any other
    // verdict source the `cache_inferred > 0` assertion below would not
    // distinguish inferred replays from exact ones.
    let im = AdultGenerator::new(93).generate(200);
    let qi = adult_qi_space();
    let (p, k, ts) = (2u32, 5u32, 15usize);
    let lattice = qi.lattice();
    let store = VerdictStore::new(&lattice, ts);
    let tuning = Tuning {
        threads: 1,
        cache: Some(&store),
        chunk_rows: 0,
    };
    let unlimited = SearchBudget::unlimited();

    // A completed level-wise pass settles the whole lattice: evaluated nodes
    // hold exact verdicts, rolled-up nodes only inferred ones.
    levelwise_minimal_tuned(&im, &qi, p, k, ts, &unlimited, tuning, &NoopObserver).unwrap();

    // Under a zero-node budget any admission trips immediately, so the only
    // way the binary search can finish is if every probe — including those
    // answered purely by inference — bypasses budget accounting.
    let zero = SearchBudget::unlimited().with_max_nodes(0);
    let warm = pk_minimal_generalization_tuned(
        &im,
        &qi,
        p,
        k,
        ts,
        Pruning::NecessaryConditions,
        &zero,
        tuning,
        &NoopObserver,
    )
    .unwrap();
    assert_eq!(warm.termination, Termination::Completed);
    assert_eq!(warm.stats.nodes_evaluated, 0);
    assert!(
        warm.stats.cache_inferred > 0,
        "the probe must have consulted at least one rolled-up (inferred) verdict"
    );

    // Cold, the same zero budget trips before any work.
    let cold = pk_minimal_generalization_budgeted(
        &im,
        &qi,
        p,
        k,
        ts,
        Pruning::NecessaryConditions,
        &zero,
        &NoopObserver,
    )
    .unwrap();
    assert_eq!(cold.termination, Termination::NodeBudgetExhausted);
}
