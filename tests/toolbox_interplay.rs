//! Interplay between the disclosure-control toolbox, the risk metrics, and
//! the p-sensitive k-anonymity core: the pieces must compose the way a data
//! holder would actually use them.

use psens::datasets::AdultGenerator;
use psens::methods::{
    microaggregate_univariate, pram, rank_swap, simple_random_sample, PramMatrix,
};
use psens::metrics::{identity_risk, journalist_risk};
use psens::prelude::*;

#[test]
fn greedy_clustering_cross_validates_with_the_checker() {
    let im = AdultGenerator::new(71).generate(350);
    for (k, p) in [(2u32, 1u32), (3, 2), (6, 2)] {
        let outcome = psens::algorithms::greedy_pk_cluster(
            &im,
            psens::algorithms::GreedyClusterConfig { k, p },
        )
        .unwrap();
        let keys = outcome.masked.schema().key_indices();
        let conf = outcome.masked.schema().confidential_indices();
        assert!(
            is_p_sensitive_k_anonymous(&outcome.masked, &keys, &conf, p, k),
            "k={k} p={p}"
        );
        // Independent second opinion via the improved checker.
        let stats = ConfidentialStats::compute(&outcome.masked, &conf);
        let improved = check_improved(&outcome.masked, &keys, &conf, p, k, &stats);
        assert!(improved.satisfied, "k={k} p={p}");
    }
}

#[test]
fn three_local_recoders_ranked_by_group_count() {
    // Full-domain < Mondrian ~ greedy clustering in granularity.
    let im = AdultGenerator::new(72).generate(500);
    let qi = psens::datasets::hierarchies::adult_qi_space();
    let (k, p) = (4u32, 2u32);

    let full = pk_minimal_generalization(&im, &qi, p, k, 25, Pruning::NecessaryConditions).unwrap();
    let fd = full.masked.unwrap();
    let fd_groups = GroupBy::compute(&fd, &fd.schema().key_indices()).n_groups();

    let mondrian = mondrian_anonymize(&im, MondrianConfig { k, p }).unwrap();
    let greedy =
        psens::algorithms::greedy_pk_cluster(&im, psens::algorithms::GreedyClusterConfig { k, p })
            .unwrap();

    assert!(mondrian.partitions.len() >= fd_groups);
    assert!(greedy.partitions.len() >= fd_groups);
}

#[test]
fn sampling_lowers_journalist_risk_estimates() {
    let population = AdultGenerator::new(73).generate(3000).drop_identifiers();
    let released = simple_random_sample(&population, 300, 5);
    let keys = ["Age", "MaritalStatus", "Race", "Sex"];
    let journalist = journalist_risk(&released, &population, &keys)
        .unwrap()
        .expect("nonempty");
    let prosecutor = identity_risk(&released, &released.schema().key_indices());
    // The journalist (population) denominator dominates the sample one.
    assert!(journalist.avg_risk <= prosecutor.avg_risk + 1e-12);
    assert!(journalist.population_uniques <= prosecutor.uniques + released.n_rows());
}

#[test]
fn microaggregation_then_generalization_composes() {
    // A holder can microaggregate Age first (blunting exact ages) and then
    // run the lattice search; the pipeline still reaches the property.
    let im = AdultGenerator::new(74).generate(400);
    let age = im.schema().index_of("Age").unwrap();
    let pre = microaggregate_univariate(&im, age, 5).unwrap();
    let qi = psens::datasets::hierarchies::adult_qi_space();
    let outcome =
        pk_minimal_generalization(&pre, &qi, 2, 3, 20, Pruning::NecessaryConditions).unwrap();
    let masked = outcome.masked.expect("achievable");
    let keys = masked.schema().key_indices();
    let conf = masked.schema().confidential_indices();
    assert!(is_p_sensitive_k_anonymous(&masked, &keys, &conf, 2, 3));
}

#[test]
fn pram_on_confidential_attribute_preserves_key_structure() {
    let im = AdultGenerator::new(75).generate(500).drop_identifiers();
    let pay = im.schema().index_of("Pay").unwrap();
    let matrix = PramMatrix::uniform_retention(vec!["<=50K", ">50K"], 0.8).unwrap();
    let released = pram(&im, pay, &matrix, 6).unwrap();
    // Key attributes untouched: identical grouping structure.
    let keys = im.schema().key_indices();
    let before = GroupBy::compute(&im, &keys);
    let after = GroupBy::compute(&released, &keys);
    assert_eq!(before.n_groups(), after.n_groups());
    assert_eq!(before.sizes(), after.sizes());
}

#[test]
fn swapping_a_key_attribute_changes_groups_but_not_marginals() {
    let im = AdultGenerator::new(76).generate(500).drop_identifiers();
    let age = im.schema().index_of("Age").unwrap();
    let swapped = rank_swap(&im, age, 10, 7).unwrap();
    let mut before: Vec<i64> = (0..im.n_rows())
        .map(|r| im.value(r, age).as_int().unwrap())
        .collect();
    let mut after: Vec<i64> = (0..swapped.n_rows())
        .map(|r| swapped.value(r, age).as_int().unwrap())
        .collect();
    before.sort_unstable();
    after.sort_unstable();
    assert_eq!(before, after, "marginal preserved exactly");
    assert_ne!(im, swapped, "records perturbed");
}

#[test]
fn describe_profile_matches_condition_inputs() {
    let im = AdultGenerator::new(77).generate(300);
    let summaries = psens::microdata::describe(&im);
    let pay_summary = summaries.iter().find(|s| s.name == "Pay").unwrap();
    let conf = im.schema().confidential_indices();
    let stats = ConfidentialStats::compute(&im, &conf);
    let pay_stats = stats
        .per_attribute
        .iter()
        .find(|a| a.name == "Pay")
        .unwrap();
    assert_eq!(pay_summary.distinct, pay_stats.s);
    assert_eq!(pay_summary.top.as_ref().unwrap().1, pay_stats.descending[0]);
}
