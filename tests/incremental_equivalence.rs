//! Differential oracle for incremental re-anonymization under live updates.
//!
//! A [`LiveTable`] absorbs seeded random delta sequences — interleaved
//! appends and deletes, exact duplicate rows, QI-group births and deaths,
//! p/k boundary crossings — while a per-model [`VerdictStore`] is pruned by
//! the invalidation classifier after every batch. After *each* delta, for
//! every privacy model and thread count, the incremental path (maintained
//! statistics + surviving cached verdicts) must reproduce the from-scratch
//! recompute byte for byte:
//!
//! - the maintained [`ConfidentialStats`] equal
//!   [`ConfidentialStats::compute`] on the materialized table;
//! - every cached verdict that survives invalidation equals a fresh kernel
//!   [`NodeCheck`] at its node — field for field, not just `satisfied`;
//! - the search over the updated table with the pruned cache returns the
//!   same winning node, proven height bound, suppression count, and masked
//!   microdata as an uncached, stats-from-scratch search, at 1 and 8
//!   threads.
//!
//! The long deterministic sequence additionally pins the acceptance
//! counter: at least one batch must *keep* cached verdicts (net-zero churn
//! or a sterile append), or the whole incremental layer silently degrades
//! to drop-everything.

use proptest::prelude::*;
use psens::algorithms::{
    pk_minimal_generalization_model, pk_minimal_generalization_model_with_stats, Pruning, Tuning,
};
use psens::core::evaluator::EvalContext;
use psens::core::{
    invalidation_for, LiveTable, ModelSpec, NoopObserver, SearchBudget, VerdictStore,
};
use psens::prelude::*;
use psens_testkit::deltas::{delta_script, DeltaRng};
use psens_testkit::spaces::search_qi_space;
use psens_testkit::tables::{arb_wide_row, build_wide_table, WideRow};

/// Every model family: distinct-count (monotone, conditions-prunable),
/// entropy (histogram), and distribution-distance (histogram, non-monotone).
const MODELS: [ModelSpec; 4] = [
    ModelSpec::PSensitiveK { p: 2 },
    ModelSpec::DistinctL { l: 2 },
    ModelSpec::EntropyL { l: 2 },
    ModelSpec::TCloseness { t_ppm: 250_000 },
];

const THREADS: [usize; 2] = [1, 8];

/// A fresh row in the wide schema, with every value inside the search QI
/// space's domain (Y is restricted to the flat hierarchy's two leaves) and
/// occasional missing maskable cells.
fn fresh_wide_row(rng: &mut DeltaRng) -> Vec<Value> {
    let x = if rng.below(7) == 0 {
        Value::Missing
    } else {
        Value::Text(format!("x{}", rng.below(4)))
    };
    let a = if rng.below(7) == 0 {
        Value::Missing
    } else {
        Value::Int(rng.below(6) as i64)
    };
    let s = if rng.below(7) == 0 {
        Value::Missing
    } else {
        Value::Text(format!("s{}", rng.below(4)))
    };
    vec![
        Value::Text(format!("id-live-{}", rng.below(100_000))),
        x,
        a,
        Value::Text(format!("y{}", rng.below(2))),
        s,
        Value::Int(rng.below(3) as i64),
    ]
}

/// One uncached, stats-from-scratch search: the ground truth.
fn scratch_search(
    table: &Table,
    qi: &QiSpace,
    spec: ModelSpec,
    k: u32,
    ts: usize,
) -> psens::algorithms::SearchOutcome {
    pk_minimal_generalization_model(
        table,
        qi,
        spec,
        k,
        ts,
        Pruning::NecessaryConditions,
        &SearchBudget::unlimited(),
        Tuning::default(),
        &NoopObserver,
    )
    .expect("scratch search")
}

/// Sums of the per-store invalidation counters across a whole run.
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    kept: u64,
    invalidated: u64,
}

/// Drives `n_deltas` seeded batches through a [`LiveTable`] and per-model
/// verdict stores, asserting the incremental path against the scratch path
/// after every batch. Returns the summed invalidation counters.
fn assert_incremental_matches_scratch(
    base: &Table,
    n_deltas: usize,
    seed: u64,
    k: u32,
    ts: usize,
) -> Result<Counters, TestCaseError> {
    let qi = search_qi_space();
    let keys = base.schema().key_indices();
    let confs = base.schema().confidential_indices();
    let mut live = LiveTable::new(base.clone(), keys, confs.clone()).expect("valid columns");

    // One warm store per model, seeded by a baseline search so the very
    // first delta already has verdicts to keep or drop.
    let stores: Vec<(ModelSpec, VerdictStore)> = MODELS
        .iter()
        .map(|&spec| {
            let store = VerdictStore::for_model(&qi.lattice(), ts, spec.is_monotone());
            let baseline = pk_minimal_generalization_model(
                base,
                &qi,
                spec,
                k,
                ts,
                Pruning::NecessaryConditions,
                &SearchBudget::unlimited(),
                Tuning {
                    threads: 1,
                    cache: Some(&store),
                    chunk_rows: 0,
                },
                &NoopObserver,
            )
            .expect("baseline search");
            let truth = scratch_search(base, &qi, spec, k, ts);
            assert_eq!(baseline.node, truth.node, "baseline winner {spec:?}");
            (spec, store)
        })
        .collect();

    let mut totals = Counters::default();
    for (step_ix, step) in delta_script(base, n_deltas, seed, fresh_wide_row)
        .iter()
        .enumerate()
    {
        let effect = live.apply(&step.batch).expect("generated batch applies");
        prop_assert_eq!(
            live.table(),
            &step.after,
            "materialized table, step {}",
            step_ix
        );

        // Incrementally maintained statistics == from-scratch recompute.
        let stats = live.stats();
        prop_assert_eq!(
            &stats,
            &ConfidentialStats::compute(live.table(), &confs),
            "stats, step {}",
            step_ix
        );

        for (spec, store) in &stores {
            let outcome = store.invalidate(invalidation_for(&effect, &stats, spec, k as usize));
            totals.kept += outcome.kept;
            totals.invalidated += outcome.invalidated;

            // Every surviving exact verdict must equal a fresh kernel check
            // on the *new* table — the soundness claim of DESIGN.md §17,
            // asserted field by field.
            let kept_exact = store.export_exact();
            if !kept_exact.is_empty() {
                let ctx = MaskingContext {
                    initial: live.table(),
                    qi: &qi,
                    k,
                    p: 1,
                    ts,
                };
                let ectx = EvalContext::build(&ctx)
                    .expect("context builds")
                    .with_model(*spec);
                let mut eval = ectx.evaluator();
                for cached in kept_exact {
                    let fresh = eval.check(&cached.node, &stats).expect("kernel check");
                    prop_assert_eq!(
                        &cached,
                        &fresh,
                        "kept verdict vs fresh kernel, step {} model {:?}",
                        step_ix,
                        spec
                    );
                }
            }

            // The searches: cached + maintained stats vs scratch, at every
            // thread count.
            let truth = scratch_search(live.table(), &qi, *spec, k, ts);
            for threads in THREADS {
                let incremental = pk_minimal_generalization_model_with_stats(
                    live.table(),
                    &qi,
                    *spec,
                    k,
                    ts,
                    Pruning::NecessaryConditions,
                    &SearchBudget::unlimited(),
                    Tuning {
                        threads,
                        cache: Some(store),
                        chunk_rows: 0,
                    },
                    &NoopObserver,
                    &stats,
                )
                .expect("incremental search");
                let setting = format!("step {step_ix} model {spec:?} threads {threads}");
                prop_assert_eq!(&incremental.node, &truth.node, "winner: {}", &setting);
                prop_assert_eq!(
                    incremental.proven_min_height,
                    truth.proven_min_height,
                    "proven height: {}",
                    &setting
                );
                prop_assert_eq!(
                    incremental.suppressed,
                    truth.suppressed,
                    "suppressed: {}",
                    &setting
                );
                prop_assert_eq!(&incremental.masked, &truth.masked, "masked: {}", &setting);
            }
        }
    }
    Ok(totals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized tables, thresholds, and delta scripts: the incremental
    /// path must track the scratch path through every batch.
    #[test]
    fn incremental_matches_scratch_recompute(
        rows in prop::collection::vec(arb_wide_row(2), 5..25),
        seed in 1u64..1_000_000,
        n_deltas in 5usize..12,
        k in 1u32..4,
        ts in 0usize..4,
    ) {
        let base = build_wide_table(&rows);
        assert_incremental_matches_scratch(&base, n_deltas, seed, k, ts)?;
    }
}

/// The acceptance sequence: 120 deltas over a deterministic base, at the
/// paper's default (p=2, k=2)-style thresholds. Beyond byte-identity, the
/// incremental layer must actually *keep* verdicts somewhere along the
/// sequence — otherwise the classifier has degraded to drop-everything and
/// the whole machinery is dead weight.
#[test]
fn long_sequence_converges_and_keeps_verdicts() {
    let rows: Vec<WideRow> = (0..24)
        .map(|i| {
            (
                i % 4,
                false,
                i % 6,
                i % 5 == 0,
                i % 2,
                i % 4,
                i % 7 == 0,
                (i % 3) as i64,
            )
        })
        .collect();
    let base = build_wide_table(&rows);
    let totals = assert_incremental_matches_scratch(&base, 120, 0xDE17A, 2, 3).unwrap();
    assert!(
        totals.kept > 0,
        "no batch kept any cached verdict across 120 deltas: {totals:?}"
    );
    assert!(
        totals.invalidated > 0,
        "no batch invalidated anything across 120 deltas: {totals:?}"
    );
}

/// Group deaths and rebirths: deleting every row of a QI group and later
/// re-appending rows with the same key must leave the incremental stats
/// and search results byte-identical to scratch (first-appearance order is
/// deliberately *not* part of the contract — only counts are).
#[test]
fn group_death_and_rebirth_stay_equivalent() {
    let rows: Vec<WideRow> = (0..12)
        .map(|i| (i % 2, false, i % 3, false, i % 2, i % 4, false, 0i64))
        .collect();
    let base = build_wide_table(&rows);
    // Seed 7 exercises delete-heavy prefixes on this base (delete-only
    // batches fire as soon as the table has > 4 rows).
    let totals = assert_incremental_matches_scratch(&base, 60, 7, 2, 2).unwrap();
    assert!(totals.kept + totals.invalidated > 0);
}

/// k/p boundary crossings: with k just above the typical group size, small
/// batches repeatedly flip nodes between satisfiable and not.
#[test]
fn boundary_crossing_thresholds_stay_equivalent() {
    let rows: Vec<WideRow> = (0..10)
        .map(|i| (i % 4, false, i % 2, false, i % 2, i % 2, false, 1i64))
        .collect();
    let base = build_wide_table(&rows);
    assert_incremental_matches_scratch(&base, 40, 99, 3, 1).unwrap();
}
