//! Differential oracle for the chunked data layer: every chunked operator
//! must be byte-identical to its serial counterpart, for every chunk size
//! and thread count, and agree with the independent SQL backend.
//!
//! Chunked tables are exercised in both of their real-world forms — slices
//! of a buffered table (shared dictionaries) and independently interned
//! chunks exactly as streaming CSV ingest produces them (per-chunk
//! dictionaries that the merge pass must unify).

use proptest::prelude::*;
use psens::algorithms::{
    pk_minimal_generalization_budgeted, pk_minimal_generalization_tuned, Pruning, Tuning,
};
use psens::core::{NoopObserver, SearchBudget};
use psens::hierarchy::QiSpace;
use psens::prelude::*;
use psens::sql::{execute, Catalog};
use psens_testkit::spaces::narrow_qi_space;
use psens_testkit::tables::{arb_narrow_row, build_narrow_table, NarrowRow};

/// The chunk sizes the acceptance gate names: degenerate one-row chunks, a
/// ragged prime, and a size larger than any generated table (single chunk).
const CHUNK_SIZES: [usize; 3] = [1, 7, 4096];
const THREADS: [usize; 3] = [1, 2, 8];

/// The narrow testkit schema: categorical key X, integer key A, categorical
/// confidential S; the maskable cells can be missing (missing compares
/// equal to missing).
type Row = NarrowRow;

fn arb_row() -> impl Strategy<Value = Row> {
    arb_narrow_row()
}

fn build_table(rows: &[Row]) -> Table {
    build_narrow_table(rows)
}

/// The two ways chunked tables arise: sliced from a buffered table (chunks
/// share the source dictionaries) and built chunk by chunk with independent
/// interning, as `csv::read_chunked` produces them.
fn chunked_variants(t: &Table, rows: &[Row], chunk_rows: usize) -> [ChunkedTable; 2] {
    let sliced = ChunkedTable::from_table(t, chunk_rows);
    let mut interned = ChunkedTable::new(t.schema().clone(), chunk_rows);
    for slab in rows.chunks(chunk_rows.max(1)) {
        interned.push_chunk(build_table(slab));
    }
    [sliced, interned]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Group ids, sizes, and representatives: `compute_chunked` must equal
    /// the serial grouping for every chunk size × thread count × chunk
    /// provenance, on every key subset.
    #[test]
    fn chunked_groupby_equals_serial(
        rows in prop::collection::vec(arb_row(), 1..80),
    ) {
        let t = build_table(&rows);
        let by_sets: &[&[usize]] = &[&[0, 1], &[1, 0], &[0], &[1], &[2], &[]];
        for &by in by_sets {
            let serial = GroupBy::compute(&t, by);
            for chunk_rows in CHUNK_SIZES {
                for chunked in chunked_variants(&t, &rows, chunk_rows) {
                    for threads in THREADS {
                        let gb = GroupBy::compute_chunked(&chunked, by, threads);
                        let setting = format!(
                            "by={by:?} chunk_rows={chunk_rows} threads={threads}"
                        );
                        prop_assert_eq!(
                            gb.assignments(), serial.assignments(),
                            "assignments: {}", &setting
                        );
                        prop_assert_eq!(gb.sizes(), serial.sizes(), "sizes: {}", &setting);
                        prop_assert_eq!(
                            gb.representatives(), serial.representatives(),
                            "representatives: {}", &setting
                        );
                    }
                }
            }
        }
    }

    /// Frequencies and the Condition 1/2 precomputation: `of_chunked` /
    /// `compute_chunked` reports must equal the serial structs field by
    /// field (both derive `PartialEq`).
    #[test]
    fn chunked_frequencies_and_stats_equal_serial(
        rows in prop::collection::vec(arb_row(), 1..60),
    ) {
        let t = build_table(&rows);
        let fs = FrequencySet::of(&t, &[0, 1]);
        let cs = ConfidentialStats::compute(&t, &[2]);
        for chunk_rows in CHUNK_SIZES {
            for chunked in chunked_variants(&t, &rows, chunk_rows) {
                for threads in THREADS {
                    prop_assert_eq!(
                        &FrequencySet::of_chunked(&chunked, &[0, 1], threads), &fs,
                        "frequencies: chunk_rows={} threads={}", chunk_rows, threads
                    );
                    prop_assert_eq!(
                        &ConfidentialStats::compute_chunked(&chunked, &[2], threads), &cs,
                        "confidential stats: chunk_rows={} threads={}", chunk_rows, threads
                    );
                }
            }
        }
    }

    /// The full p-sensitivity report — per-group verdicts, violation lists,
    /// max_k and max_p — must not depend on chunking or thread count.
    #[test]
    fn chunked_p_sensitivity_report_equals_serial(
        rows in prop::collection::vec(arb_row(), 1..60),
        p in 1u32..4,
        k in 1u32..4,
    ) {
        let t = build_table(&rows);
        let report = check_p_sensitivity(&t, &[0, 1], &[2], p, k);
        let maxk = max_k(&t, &[0, 1]);
        let maxp = max_p_of_masked(&t, &[0, 1], &[2]);
        for chunk_rows in CHUNK_SIZES {
            for chunked in chunked_variants(&t, &rows, chunk_rows) {
                for threads in THREADS {
                    let setting = format!("chunk_rows={chunk_rows} threads={threads}");
                    prop_assert_eq!(
                        &check_p_sensitivity_chunked(&chunked, &[0, 1], &[2], p, k, threads),
                        &report,
                        "report: {}", &setting
                    );
                    prop_assert_eq!(
                        max_k_chunked(&chunked, &[0, 1], threads), maxk,
                        "max_k: {}", &setting
                    );
                    prop_assert_eq!(
                        max_p_of_masked_chunked(&chunked, &[0, 1], &[2], threads), maxp,
                        "max_p: {}", &setting
                    );
                }
            }
        }
    }

    /// Cross-backend: the SQL engine's `COUNT(*)` / `COUNT(DISTINCT S)`
    /// per group agree with the chunked group-by and the chunked dense
    /// codes. Missing cells are excluded — SQL NULL semantics differ from
    /// the checker's missing-equals-missing convention by design.
    #[test]
    fn sql_backend_agrees_with_chunked_groupby(
        rows in prop::collection::vec((0u8..4, 0i64..4, 0u8..4), 1..60),
    ) {
        let solid: Vec<Row> = rows.iter().map(|&(x, a, s)| (x, a, false, s, false)).collect();
        let t = build_table(&solid);
        let mut catalog = Catalog::new();
        catalog.register("T", &t);
        let counts = execute(&catalog, "SELECT COUNT(*) FROM T GROUP BY X, A").unwrap();
        let distinct = execute(
            &catalog,
            "SELECT COUNT(DISTINCT S) FROM T GROUP BY X, A",
        )
        .unwrap();
        for chunk_rows in CHUNK_SIZES {
            for chunked in chunked_variants(&t, &solid, chunk_rows) {
                for threads in THREADS {
                    let gb = GroupBy::compute_chunked(&chunked, &[0, 1], threads);
                    prop_assert_eq!(counts.n_rows(), gb.n_groups());
                    let mut sql_counts: Vec<i64> = (0..counts.n_rows())
                        .map(|r| counts.value(r, 0).as_int().unwrap())
                        .collect();
                    let mut native_counts: Vec<i64> =
                        gb.sizes().iter().map(|&s| i64::from(s)).collect();
                    sql_counts.sort_unstable();
                    native_counts.sort_unstable();
                    prop_assert_eq!(sql_counts, native_counts);

                    let (codes, n_codes) = chunked.dense_codes(2, threads);
                    let mut native_distinct: Vec<i64> = gb
                        .distinct_codes_per_group(&codes, n_codes)
                        .iter()
                        .map(|&d| i64::from(d))
                        .collect();
                    let mut sql_distinct: Vec<i64> = (0..distinct.n_rows())
                        .map(|r| distinct.value(r, 0).as_int().unwrap())
                        .collect();
                    native_distinct.sort_unstable();
                    sql_distinct.sort_unstable();
                    prop_assert_eq!(sql_distinct, native_distinct);
                }
            }
        }
    }
}

/// The morsel sizes the acceptance gate names: one-row morsels (maximum
/// cursor contention), a ragged prime, and a size larger than any generated
/// table (a single morsel, so one worker does everything).
const MORSEL_ROWS: [usize; 3] = [1, 7, 4096];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Morsel-executor differential oracle: for every morsel size × thread
    /// count × chunk provenance, the executor's group ids, sizes, and
    /// representatives must be byte-identical to the serial group-by —
    /// the canonical re-ordering pass makes first-appearance ids
    /// independent of how rows were partitioned.
    #[test]
    fn morsel_executor_equals_serial(
        rows in prop::collection::vec(arb_row(), 1..80),
    ) {
        let t = build_table(&rows);
        let by_sets: &[&[usize]] = &[&[0, 1], &[1], &[]];
        for &by in by_sets {
            let serial = GroupBy::compute(&t, by);
            for chunk_rows in CHUNK_SIZES {
                for chunked in chunked_variants(&t, &rows, chunk_rows) {
                    for threads in THREADS {
                        for morsel_rows in MORSEL_ROWS {
                            let gb = GroupBy::compute_chunked_morsels(
                                &chunked, by, threads, morsel_rows,
                            );
                            let setting = format!(
                                "by={by:?} chunk_rows={chunk_rows} \
                                 threads={threads} morsel_rows={morsel_rows}"
                            );
                            prop_assert_eq!(
                                gb.assignments(), serial.assignments(),
                                "assignments: {}", &setting
                            );
                            prop_assert_eq!(gb.sizes(), serial.sizes(), "sizes: {}", &setting);
                            prop_assert_eq!(
                                gb.representatives(), serial.representatives(),
                                "representatives: {}", &setting
                            );
                        }
                    }
                }
            }
        }
    }
}

mod injected_panic {
    //! Fault isolation: a worker whose morsel panics must not corrupt the
    //! result — the poisoned morsel's partial writes are rolled back and it
    //! re-runs serially, still yielding the byte-identical serial answer.

    use super::*;
    use psens::microdata::{group_codes, ChunkedKeyKernel, ChunkedTable, KeyKernel};
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Wraps a real kernel; the first `fill_*` call panics (simulating a
    /// worker fault mid-morsel), every later call delegates.
    struct PanicOnce<'a> {
        inner: ChunkedKeyKernel<'a>,
        fired: AtomicBool,
    }

    impl<'a> PanicOnce<'a> {
        fn new(inner: ChunkedKeyKernel<'a>) -> PanicOnce<'a> {
            PanicOnce {
                inner,
                fired: AtomicBool::new(false),
            }
        }

        fn trip(&self) {
            if !self.fired.swap(true, Ordering::SeqCst) {
                panic!("injected morsel failure");
            }
        }
    }

    impl KeyKernel for PanicOnce<'_> {
        fn n_rows(&self) -> usize {
            self.inner.n_rows()
        }
        fn dense_product(&self) -> Option<u32> {
            self.inner.dense_product()
        }
        fn fill_dense(&self, start: usize, out: &mut [u32]) {
            self.trip();
            self.inner.fill_dense(start, out);
        }
        fn fill_hashed(&self, start: usize, out: &mut [u64]) {
            self.trip();
            self.inner.fill_hashed(start, out);
        }
        fn rows_equal(&self, a: usize, b: usize) -> bool {
            self.inner.rows_equal(a, b)
        }
    }

    #[test]
    fn panicked_morsel_is_rerun_and_result_is_byte_identical() {
        let rows: Vec<Row> = (0..200)
            .map(|i| {
                (
                    i as u8 % 4,
                    i64::from(i % 5),
                    i % 7 == 0,
                    i as u8 % 3,
                    i % 11 == 0,
                )
            })
            .collect();
        let t = build_table(&rows);
        let serial = GroupBy::compute(&t, &[0, 1]);
        for threads in [2, 8] {
            for morsel_rows in MORSEL_ROWS {
                let chunked = ChunkedTable::from_table(&t, 64);
                let kernel = PanicOnce::new(ChunkedKeyKernel::new(&chunked, &[0, 1], threads));
                let (assignment, n_groups) = group_codes(&kernel, threads, morsel_rows);
                assert!(
                    kernel.fired.load(Ordering::SeqCst),
                    "the injected panic must actually fire"
                );
                assert_eq!(
                    assignment.as_slice(),
                    serial.assignments(),
                    "threads={threads} morsel_rows={morsel_rows}"
                );
                assert_eq!(n_groups as usize, serial.n_groups());
            }
        }
    }

    /// A morsel that panics on the serial retry too is a deterministic
    /// failure; the contract propagates it instead of masking it.
    struct AlwaysPanic {
        rows: usize,
    }

    impl KeyKernel for AlwaysPanic {
        fn n_rows(&self) -> usize {
            self.rows
        }
        fn dense_product(&self) -> Option<u32> {
            Some(4)
        }
        fn fill_dense(&self, _start: usize, _out: &mut [u32]) {
            panic!("deterministic kernel failure");
        }
        fn fill_hashed(&self, _start: usize, _out: &mut [u64]) {
            panic!("deterministic kernel failure");
        }
        fn rows_equal(&self, _a: usize, _b: usize) -> bool {
            true
        }
    }

    #[test]
    #[should_panic(expected = "deterministic kernel failure")]
    fn persistent_panic_propagates() {
        group_codes(&AlwaysPanic { rows: 100 }, 4, 7);
    }
}

/// QI space over X (3 levels) and A (2 levels): a 6-node lattice the
/// search-verdict oracle can walk quickly.
fn qi_space() -> QiSpace {
    narrow_qi_space()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End to end: routing the node-evaluation kernel through the chunked
    /// partition (`Tuning::chunk_rows`) must not change any search verdict —
    /// winning node, proven height bound, or suppression count.
    #[test]
    fn search_verdicts_survive_chunked_evaluation(
        rows in prop::collection::vec(arb_row(), 1..40),
        p in 1u32..4,
        k in 1u32..5,
        ts in 0usize..6,
    ) {
        let t = build_table(&rows);
        let qi = qi_space();
        let unlimited = SearchBudget::unlimited();
        let noop = NoopObserver;
        let pruning = Pruning::NecessaryConditions;
        let oracle =
            pk_minimal_generalization_budgeted(&t, &qi, p, k, ts, pruning, &unlimited, &noop)
                .unwrap();
        for chunk_rows in CHUNK_SIZES {
            for threads in THREADS {
                let tuning = Tuning { threads, cache: None, chunk_rows };
                let outcome = pk_minimal_generalization_tuned(
                    &t, &qi, p, k, ts, pruning, &unlimited, tuning, &noop,
                )
                .unwrap();
                let setting = format!(
                    "p={p} k={k} ts={ts} chunk_rows={chunk_rows} threads={threads}"
                );
                prop_assert_eq!(&outcome.node, &oracle.node, "node: {}", &setting);
                prop_assert_eq!(
                    outcome.proven_min_height, oracle.proven_min_height,
                    "height bound: {}", &setting
                );
                prop_assert_eq!(
                    outcome.suppressed, oracle.suppressed,
                    "suppressed: {}", &setting
                );
            }
        }
    }
}
