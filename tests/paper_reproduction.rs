//! End-to-end assertions for every table and figure of the paper — the
//! integration-level "golden" suite (EXPERIMENTS.md is its narrative twin).

use psens::core::conditions::{ConfidentialStats, MaxGroups};
use psens::core::{attribute_disclosure_count, max_k, max_p_of_masked};
use psens::datasets::hierarchies::{adult_qi_space, figure2_qi_space};
use psens::datasets::paper::*;
use psens::prelude::*;

#[test]
fn table1_is_2_anonymous_with_one_attribute_disclosure() {
    let mm = table1_patients();
    let keys = mm.schema().key_indices();
    let conf = mm.schema().confidential_indices();
    assert_eq!(max_k(&mm, &keys), 2);
    assert_eq!(attribute_disclosure_count(&mm, &keys, &conf), 1);
    // Identity disclosure is impossible (no singleton groups) — "there is no
    // identity disclosure in this microdata".
    assert_eq!(
        psens::core::disclosure::identity_disclosure_count(&mm, &keys),
        0
    );
}

#[test]
fn table2_attack_discloses_sam_and_eric() {
    use psens::core::attack::linkage_attack;
    use psens::hierarchy::{Hierarchy, IntHierarchy, IntLevel};

    let cuts: Vec<i64> = (1..=9).map(|d| d * 10).collect();
    let mut labels: Vec<String> = vec!["0".into()];
    labels.extend(cuts.iter().map(|c| c.to_string()));
    let qi = QiSpace::new(vec![
        (
            "Age".into(),
            Hierarchy::Int(IntHierarchy::new(vec![IntLevel::Ranges { cuts, labels }]).unwrap()),
        ),
        (
            "ZipCode".into(),
            builders::flat_hierarchy(vec!["43102"]).unwrap(),
        ),
        (
            "Sex".into(),
            builders::flat_hierarchy(vec!["M", "F"]).unwrap(),
        ),
    ])
    .unwrap();
    let findings = linkage_attack(
        &table1_patients(),
        &qi,
        &Node(vec![1, 0, 0]),
        &table2_external(),
        "Name",
    )
    .unwrap();
    // Nobody is re-identified (2-anonymity holds)...
    assert!(findings.iter().all(|f| !f.identity_disclosed));
    // ...but exactly Sam and Eric lose their diagnosis.
    let leaked: Vec<String> = findings
        .iter()
        .filter(|f| !f.learned.is_empty())
        .map(|f| f.individual.to_string())
        .collect();
    assert_eq!(leaked, vec!["Sam", "Eric"]);
}

#[test]
fn table3_walkthrough_values() {
    let mm = table3_psensitive_example();
    let keys = mm.schema().key_indices();
    let conf = mm.schema().confidential_indices();
    assert_eq!(max_k(&mm, &keys), 3);
    assert_eq!(max_p_of_masked(&mm, &keys, &conf), 1);
    let fixed = table3_fixed();
    assert_eq!(max_p_of_masked(&fixed, &keys, &conf), 2);
    // "p is always less than or equal to k".
    assert!(max_p_of_masked(&fixed, &keys, &conf) <= max_k(&fixed, &keys));
}

#[test]
fn figure2_lattice_heights() {
    let gl = figure2_qi_space().lattice();
    assert_eq!(gl.height(), 3);
    assert_eq!(gl.node_count(), 6);
    assert_eq!(Node(vec![0, 0]).height(), 0);
    assert_eq!(Node(vec![1, 0]).height(), 1);
    assert_eq!(Node(vec![0, 1]).height(), 1);
    assert_eq!(Node(vec![1, 1]).height(), 2);
    assert_eq!(Node(vec![1, 2]).height(), 3);
}

#[test]
fn figure3_violation_annotations() {
    let im = figure3_microdata();
    let qi = figure2_qi_space();
    let scan = exhaustive_scan(&im, &qi, 1, 3, 0).unwrap();
    let find = |levels: Vec<u8>| {
        scan.annotations
            .iter()
            .find(|(n, _)| n.levels() == levels.as_slice())
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert_eq!(find(vec![0, 0]), 10);
    assert_eq!(find(vec![1, 0]), 7);
    assert_eq!(find(vec![0, 1]), 7);
    assert_eq!(find(vec![1, 1]), 2);
    assert_eq!(find(vec![0, 2]), 0);
    assert_eq!(find(vec![1, 2]), 0);
}

#[test]
fn table4_cells_exact() {
    let im = figure3_microdata();
    let qi = figure2_qi_space();
    let cases: &[(usize, &[&[u8]])] = &[
        (0, &[&[0, 2]]),
        (1, &[&[0, 2]]),
        (2, &[&[0, 2], &[1, 1]]),
        (6, &[&[0, 2], &[1, 1]]),
        (7, &[&[0, 1], &[1, 0]]),
        (9, &[&[0, 1], &[1, 0]]),
        (10, &[&[0, 0]]),
    ];
    for &(ts, expected) in cases {
        let mut minimal = exhaustive_scan(&im, &qi, 1, 3, ts).unwrap().minimal;
        minimal.sort();
        let mut expected: Vec<Node> = expected.iter().map(|l| Node(l.to_vec())).collect();
        expected.sort();
        assert_eq!(minimal, expected, "TS = {ts}");
    }
}

#[test]
fn tables_5_and_6_exact() {
    let im = example1_microdata();
    let conf = im.schema().confidential_indices();
    let stats = ConfidentialStats::compute(&im, &conf);
    assert_eq!(stats.n, 1000);
    assert_eq!(stats.cf, vec![700, 900, 950, 960, 1000]);
    assert_eq!(stats.max_p(), 5);
    assert_eq!(stats.max_groups(2), MaxGroups::Bounded(300));
    assert_eq!(stats.max_groups(3), MaxGroups::Bounded(100));
    assert_eq!(stats.max_groups(4), MaxGroups::Bounded(50));
    assert_eq!(stats.max_groups(5), MaxGroups::Bounded(25));
    assert_eq!(stats.max_groups(6), MaxGroups::Unsatisfiable);
}

#[test]
fn table7_lattice_dimensions() {
    let qi = adult_qi_space();
    let gl = qi.lattice();
    assert_eq!(gl.node_count(), 96);
    assert_eq!(gl.height(), 9);
    // Distinct-value counts of Table 7: MaritalStatus 7, Race 5, Sex 2.
    use psens::datasets::hierarchies::{MARITAL_STATUS, RACE, SEX};
    assert_eq!(MARITAL_STATUS.len(), 7);
    assert_eq!(RACE.len(), 5);
    assert_eq!(SEX.len(), 2);
}

#[test]
fn table8_shape_holds() {
    // The experiment's conclusions, not its absolute numbers:
    // (a) k-anonymous maskings exhibit attribute disclosures;
    // (b) increasing k decreases them.
    let qi = adult_qi_space();
    let (s400, s4000) = psens::datasets::paper_samples();
    let mut by_k = Vec::new();
    for table in [&s400, &s4000] {
        let mut row = Vec::new();
        for k in [2u32, 3] {
            let outcome = k_minimal_generalization(table, &qi, k, 0).unwrap();
            let masked = outcome.masked.unwrap();
            let keys = masked.schema().key_indices();
            let conf = masked.schema().confidential_indices();
            // The masking the search returns genuinely satisfies k.
            assert!(is_k_anonymous(&masked, &keys, k));
            row.push(attribute_disclosure_count(&masked, &keys, &conf));
        }
        by_k.push(row);
    }
    for row in &by_k {
        assert!(
            row[0] >= row[1],
            "disclosures must not grow with k: {by_k:?}"
        );
    }
    assert!(
        by_k.iter().flatten().any(|&d| d > 0),
        "k-anonymity alone must exhibit attribute disclosure somewhere"
    );
}

#[test]
fn p_sensitive_search_eliminates_all_disclosures() {
    let qi = adult_qi_space();
    let (s400, _) = psens::datasets::paper_samples();
    let outcome =
        pk_minimal_generalization(&s400, &qi, 2, 2, 0, Pruning::NecessaryConditions).unwrap();
    let masked = outcome.masked.expect("p = 2 is achievable");
    let keys = masked.schema().key_indices();
    let conf = masked.schema().confidential_indices();
    assert_eq!(attribute_disclosure_count(&masked, &keys, &conf), 0);
    assert!(is_p_sensitive_k_anonymous(&masked, &keys, &conf, 2, 2));
}
