//! Totality and equivalence of the streaming CSV reader: `read_chunked`
//! must never panic on arbitrary bytes, must error exactly when the
//! buffered reader errors, and on success must produce the same table —
//! for every chunk size, and even when every byte arrives in its own read
//! (splitting quoted newlines, escaped quotes, and multi-byte UTF-8
//! sequences across read boundaries).

use proptest::prelude::*;
use psens::microdata::csv::{read_chunked, read_table_str};
use psens::prelude::*;
use std::io::{BufRead, Cursor, Read};

const CHUNK_SIZES: [usize; 4] = [1, 2, 7, 4096];

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::int_key("Age"),
        Attribute::cat_key("City"),
        Attribute::cat_confidential("Illness"),
    ])
    .unwrap()
}

/// Feeds the stream one byte per `read` call, so every quoted newline,
/// escaped quote, and multi-byte UTF-8 sequence crosses a read boundary.
struct TrickleReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Read for TrickleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos < self.data.len() && !buf.is_empty() {
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        } else {
            Ok(0)
        }
    }
}

impl BufRead for TrickleReader<'_> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        let end = (self.pos + 1).min(self.data.len());
        Ok(&self.data[self.pos..end])
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
    }
}

/// The oracle: stream and buffered reader agree on `input` — an error on
/// both sides, or equal tables (dictionaries included) on both, whether the
/// bytes arrive in bulk or one at a time.
fn assert_stream_matches_buffered(
    input: &str,
    has_header: bool,
    chunk_rows: usize,
) -> Result<(), TestCaseError> {
    let buffered = read_table_str(input, schema(), has_header);
    let bulk = read_chunked(
        Cursor::new(input.as_bytes()),
        schema(),
        has_header,
        chunk_rows,
    );
    let trickled = read_chunked(
        TrickleReader {
            data: input.as_bytes(),
            pos: 0,
        },
        schema(),
        has_header,
        chunk_rows,
    );
    match buffered {
        Ok(table) => {
            let bulk = bulk.map_err(|e| {
                TestCaseError::fail(format!("stream errored where buffered parsed: {e}"))
            })?;
            prop_assert_eq!(
                bulk.to_table(),
                table.clone(),
                "bulk stream diverged (chunk_rows={})",
                chunk_rows
            );
            let expected_chunks = table.n_rows().div_ceil(chunk_rows.max(1));
            prop_assert_eq!(bulk.n_chunks(), expected_chunks);
            let trickled = trickled.map_err(|e| {
                TestCaseError::fail(format!("trickle stream errored where buffered parsed: {e}"))
            })?;
            prop_assert_eq!(
                trickled.to_table(),
                table,
                "trickle stream diverged (chunk_rows={})",
                chunk_rows
            );
        }
        Err(_) => {
            prop_assert!(bulk.is_err(), "stream parsed where buffered errored");
            prop_assert!(trickled.is_err(), "trickle parsed where buffered errored");
        }
    }
    Ok(())
}

/// A CSV field rich in the grammar's special cases: plain tokens, quoted
/// fields holding commas, quotes, CR/LF, and multi-byte UTF-8, plus the
/// missing markers `?` and the empty field.
const CAT_FIELD: &str = "([a-c]{0,4}|\"[a-b\\\",éλ\n\r]{0,6}\"|\\?|)";

/// A (mostly) parseable integer field, `?`, or empty.
const INT_FIELD: &str = "(-?[0-9]{1,4}|\\?|)";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Totality + agreement on arbitrary bytes: whatever the input —
    /// malformed UTF-8, unbalanced quotes, ragged records — the streaming
    /// reader never panics and errors exactly when the buffered reader
    /// would.
    #[test]
    fn stream_and_buffered_agree_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
        has_header in any::<bool>(),
        chunk_pick in 0usize..CHUNK_SIZES.len(),
    ) {
        let chunk_rows = CHUNK_SIZES[chunk_pick];
        let buffered = match std::str::from_utf8(&bytes) {
            Ok(text) => read_table_str(text, schema(), has_header),
            // Invalid UTF-8: the buffered path fails in read_to_string.
            Err(_) => Err(psens::microdata::Error::from(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "stream did not contain valid UTF-8",
            ))),
        };
        let streamed = read_chunked(Cursor::new(&bytes[..]), schema(), has_header, chunk_rows);
        let trickled = read_chunked(
            TrickleReader { data: &bytes, pos: 0 },
            schema(),
            has_header,
            chunk_rows,
        );
        prop_assert_eq!(streamed.is_ok(), buffered.is_ok());
        prop_assert_eq!(trickled.is_ok(), buffered.is_ok());
        if let (Ok(stream), Ok(table)) = (streamed, buffered) {
            prop_assert_eq!(stream.to_table(), table);
        }
    }

    /// Structured CSV built from special-case-rich fields: quoted newlines
    /// and escaped quotes inside records, missing markers, signed integers
    /// — streamed chunks must reassemble the buffered table exactly.
    #[test]
    fn stream_equals_buffered_on_generated_csv(
        rows in prop::collection::vec((INT_FIELD, CAT_FIELD, CAT_FIELD), 0..30),
        has_header in any::<bool>(),
        chunk_pick in 0usize..CHUNK_SIZES.len(),
    ) {
        let chunk_rows = CHUNK_SIZES[chunk_pick];
        let mut text = String::new();
        if has_header {
            text.push_str("Age,City,Illness\n");
        }
        for (age, city, illness) in &rows {
            text.push_str(&format!("{age},{city},{illness}\n"));
        }
        assert_stream_matches_buffered(&text, has_header, chunk_rows)?;
    }
}

#[test]
fn quoted_newlines_span_chunk_boundaries() {
    // One-row chunks force every record onto its own chunk; the quoted
    // fields carry the record separator itself.
    let text = "Age,City,Illness\n\
                30,\"New\nport\",\"Fl\r\nu\"\n\
                40,\"Day,ton\",\"says \"\"hi\"\"\"\n\
                50,Euclid,HIV\n";
    for chunk_rows in CHUNK_SIZES {
        assert_stream_matches_buffered(text, true, chunk_rows).unwrap();
    }
    let chunked = read_chunked(Cursor::new(text.as_bytes()), schema(), true, 1).unwrap();
    assert_eq!(chunked.n_chunks(), 3);
    assert_eq!(
        chunked.to_table().value(0, 1),
        Value::Text("New\nport".into())
    );
    assert_eq!(
        chunked.to_table().value(1, 2),
        Value::Text("says \"hi\"".into())
    );
}

#[test]
fn ragged_trailing_record_agrees_with_buffered() {
    // A final record with too few fields: both readers must reject it, and
    // one with too many likewise.
    for text in [
        "1,a,b\n2,c\n",
        "1,a,b\n2\n",
        "1,a,b\n2,c,d,e\n",
        "1,a,b\n2,c,", // unterminated final record, short one field
    ] {
        assert_stream_matches_buffered(text, false, 2).unwrap();
    }
    // An unterminated but complete final record parses on both sides.
    assert_stream_matches_buffered("1,a,b\n2,c,d", false, 2).unwrap();
}

#[test]
fn empty_input_yields_empty_chunked_table() {
    let chunked = read_chunked(Cursor::new(&b""[..]), schema(), false, 4).unwrap();
    assert!(chunked.is_empty());
    assert_eq!(chunked.n_chunks(), 0);
    assert_eq!(chunked.to_table(), Table::empty(schema()));
}
