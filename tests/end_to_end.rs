//! Full-pipeline scenarios on synthetic Adult data: generate → anonymize →
//! independently verify → attack.

use psens::core::attack::linkage_attack;
use psens::datasets::hierarchies::adult_qi_space;
use psens::datasets::AdultGenerator;
use psens::metrics::{attribute_risk, identity_risk, precision};
use psens::microdata::csv;
use psens::prelude::*;

#[test]
fn masked_release_resists_the_linkage_attack_when_p_is_2() {
    let im = AdultGenerator::new(99).generate(500);
    let qi = adult_qi_space();
    let outcome =
        pk_minimal_generalization(&im, &qi, 2, 2, 0, Pruning::NecessaryConditions).unwrap();
    let node = outcome.node.expect("achievable");
    let masked = outcome.masked.unwrap();

    // The intruder's external knowledge: identifiers + raw key attributes of
    // everyone in the initial microdata.
    let external = im
        .project_names(&["Id", "Age", "MaritalStatus", "Race", "Sex"])
        .unwrap();
    let findings = linkage_attack(&masked, &qi, &node, &external, "Id").unwrap();
    // Nobody is re-identified and nobody's confidential attribute is learned
    // with certainty: every candidate set has >= 2 members and >= 2 distinct
    // values of every confidential attribute.
    for f in &findings {
        assert!(!f.identity_disclosed, "{:?}", f.individual);
        assert!(
            f.learned.is_empty(),
            "{:?} leaks {:?}",
            f.individual,
            f.learned
        );
    }
}

#[test]
fn k_only_release_is_attackable_p_release_is_not() {
    let im = AdultGenerator::new(77).generate(400);
    let qi = adult_qi_space();
    let external = im
        .project_names(&["Id", "Age", "MaritalStatus", "Race", "Sex"])
        .unwrap();

    let k_only = k_minimal_generalization(&im, &qi, 2, 0).unwrap();
    let k_node = k_only.node.unwrap();
    let k_masked = k_only.masked.unwrap();
    let k_findings = linkage_attack(&k_masked, &qi, &k_node, &external, "Id").unwrap();
    let k_leaks: usize = k_findings.iter().map(|f| f.learned.len()).sum();

    let p_sens =
        pk_minimal_generalization(&im, &qi, 2, 2, 0, Pruning::NecessaryConditions).unwrap();
    let p_node = p_sens.node.unwrap();
    let p_masked = p_sens.masked.unwrap();
    let p_findings = linkage_attack(&p_masked, &qi, &p_node, &external, "Id").unwrap();
    let p_leaks: usize = p_findings.iter().map(|f| f.learned.len()).sum();

    assert!(k_leaks > 0, "k-anonymity alone must leak on this sample");
    assert_eq!(p_leaks, 0, "2-sensitivity must stop certain inference");
}

#[test]
fn privacy_utility_tradeoff_is_monotone_in_k() {
    let im = AdultGenerator::new(55).generate(600);
    let qi = adult_qi_space();
    let mut last_height = 0usize;
    for k in [2u32, 5, 10, 25] {
        let outcome = k_minimal_generalization(&im, &qi, k, 30).unwrap();
        let node = outcome.node.expect("achievable with suppression");
        let masked = outcome.masked.unwrap();
        let keys = masked.schema().key_indices();
        // Stricter k never allows a lower minimal node...
        assert!(node.height() >= last_height, "height grows with k");
        // ...precision is genuinely lost somewhere along the way...
        assert!(precision(&node, &qi.lattice()) < 1.0);
        // ...and the paper's guarantee holds: linkage succeeds with
        // probability at most 1/k.
        let risk = identity_risk(&masked, &keys).max_risk;
        assert!(risk <= 1.0 / f64::from(k) + 1e-12, "risk bounded by 1/k");
        last_height = node.height();
    }
}

#[test]
fn csv_export_of_masked_release_reimports_identically() {
    let im = AdultGenerator::new(11).generate(300);
    let qi = adult_qi_space();
    let outcome =
        pk_minimal_generalization(&im, &qi, 2, 3, 10, Pruning::NecessaryConditions).unwrap();
    let masked = outcome.masked.expect("achievable");
    let text = csv::to_csv_string(&masked, true);
    let back = csv::read_table_str(&text, masked.schema().clone(), true).unwrap();
    assert_eq!(back, masked);
}

#[test]
fn attribute_risk_report_is_consistent_with_checker() {
    let im = AdultGenerator::new(13).generate(500);
    let qi = adult_qi_space();
    let outcome = k_minimal_generalization(&im, &qi, 2, 0).unwrap();
    let masked = outcome.masked.unwrap();
    let keys = masked.schema().key_indices();
    let conf = masked.schema().confidential_indices();
    let risk = attribute_risk(&masked, &keys, &conf);
    let report = psens::core::check_p_sensitivity(&masked, &keys, &conf, 2, 2);
    // 2-sensitivity violations are exactly the attribute disclosures.
    assert_eq!(risk.disclosures, report.violations.len());
    let per_attr_total: usize = risk.per_attribute.iter().map(|(_, c)| c).sum();
    assert_eq!(per_attr_total, risk.disclosures);
}
