//! Equivalence of the code-mapped evaluation kernel and the materializing
//! pipeline, on randomized inputs.
//!
//! For random tables (with missing cells), hierarchies (categorical and
//! integer, plus a key attribute outside the QI space), nodes, and
//! (k, p, TS) settings, `EvalContext`/`NodeEvaluator::check` must agree with
//! `MaskingContext::evaluate` on every reported field: satisfied, stage,
//! n_groups, violating_tuples, and suppressed.

use proptest::prelude::*;
use psens::core::evaluator::EvalContext;
use psens::core::masking::MaskingContext;
use psens::core::NoopObserver;
use psens::hierarchy::{builders, CatHierarchy, Hierarchy, IntHierarchy, IntLevel};
use psens::prelude::*;

/// Keys: categorical X (in QI space), integer A (in QI space), categorical
/// Y (key *outside* the QI space — grouped at ground level by both paths).
/// Confidential: categorical S and integer T. Plus one identifier column.
fn test_schema() -> Schema {
    Schema::new(vec![
        Attribute::cat_identifier("Id"),
        Attribute::cat_key("X"),
        Attribute::int_key("A"),
        Attribute::cat_key("Y"),
        Attribute::cat_confidential("S"),
        Attribute::int_confidential("T"),
    ])
    .unwrap()
}

/// One random row: domain indices, with independent missing flags for the
/// maskable cells (X, A, S — missing must group with missing at every level
/// in both paths).
type Row = (u8, bool, u8, bool, u8, u8, bool, i64);

fn arb_row() -> impl Strategy<Value = Row> {
    (
        0u8..4,        // X index
        any::<bool>(), // X missing?
        0u8..6,        // A value
        any::<bool>(), // A missing?
        0u8..3,        // Y index
        0u8..4,        // S index
        any::<bool>(), // S missing?
        0i64..3,       // T value
    )
}

fn build_table(rows: &[Row]) -> Table {
    let mut builder = TableBuilder::new(test_schema());
    for (i, &(x, x_miss, a, a_miss, y, s, s_miss, t)) in rows.iter().enumerate() {
        let x = if x_miss && x % 3 == 0 {
            Value::Missing
        } else {
            Value::Text(format!("x{x}"))
        };
        let a = if a_miss && a % 3 == 0 {
            Value::Missing
        } else {
            Value::Int(a as i64)
        };
        let s = if s_miss && s % 3 == 0 {
            Value::Missing
        } else {
            Value::Text(format!("s{s}"))
        };
        builder
            .push_row(vec![
                Value::Text(format!("id{i}")),
                x,
                a,
                Value::Text(format!("y{y}")),
                s,
                Value::Int(t),
            ])
            .unwrap();
    }
    builder.finish()
}

/// QI space over X (3 levels) and A (3 levels); Y is deliberately left out.
fn test_qi_space() -> QiSpace {
    let x = CatHierarchy::identity(["x0", "x1", "x2", "x3"])
        .unwrap()
        .push_level([("x0", "xa"), ("x1", "xa"), ("x2", "xb"), ("x3", "xb")])
        .unwrap()
        .push_top("*")
        .unwrap();
    let a = IntHierarchy::new(vec![
        IntLevel::Ranges {
            cuts: vec![2, 4],
            labels: vec!["0-1".into(), "2-3".into(), "4-5".into()],
        },
        IntLevel::Single("*".into()),
    ])
    .unwrap();
    QiSpace::new(vec![
        ("X".into(), Hierarchy::Cat(x)),
        ("A".into(), Hierarchy::Int(a)),
    ])
    .unwrap()
}

/// A flat one-attribute QI space used by the single-attribute variant.
fn flat_qi_space() -> QiSpace {
    QiSpace::new(vec![(
        "Y".into(),
        builders::flat_hierarchy(vec!["y0", "y1", "y2"]).unwrap(),
    )])
    .unwrap()
}

/// Asserts the two paths agree on every reported field for every node of
/// the whole lattice.
fn assert_paths_agree(
    table: &Table,
    qi: &QiSpace,
    k: u32,
    p: u32,
    ts: usize,
) -> Result<(), TestCaseError> {
    let ctx = MaskingContext {
        initial: table,
        qi,
        k,
        p,
        ts,
    };
    let stats = ctx.initial_stats();
    let ectx = EvalContext::build(&ctx).expect("context builds for valid bindings");
    let mut eval = ectx.evaluator();
    for node in qi.lattice().all_nodes() {
        let slow = ctx.evaluate(&node, &stats).expect("materializing path");
        let fast = eval.check(&node, &stats).expect("kernel path");
        let setting = format!("k={k} p={p} ts={ts} node={node}");
        prop_assert_eq!(fast.satisfied, slow.satisfied, "satisfied: {}", &setting);
        prop_assert_eq!(fast.stage, slow.stage, "stage: {}", &setting);
        prop_assert_eq!(fast.n_groups, slow.n_groups, "n_groups: {}", &setting);
        prop_assert_eq!(
            fast.violating_tuples,
            slow.violating_tuples,
            "violating_tuples: {}",
            &setting
        );
        prop_assert_eq!(fast.suppressed, slow.suppressed, "suppressed: {}", &setting);
        // The observed entry point with a no-op observer is the same check.
        let noop = eval
            .check_observed(&node, &stats, &NoopObserver)
            .expect("kernel path, observed");
        prop_assert_eq!(noop.satisfied, fast.satisfied, "observed: {}", &setting);
        prop_assert_eq!(noop.stage, fast.stage, "observed stage: {}", &setting);
        prop_assert_eq!(
            noop.suppressed,
            fast.suppressed,
            "observed suppressed: {}",
            &setting
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full configuration: cat + int QI hierarchies, a static key outside
    /// the QI space, missing cells, identifiers dropped.
    #[test]
    fn kernel_matches_materializing_path(
        rows in prop::collection::vec(arb_row(), 1..50),
        k in 1u32..6,
        p in 1u32..4,
        ts in 0usize..8,
    ) {
        let t = build_table(&rows);
        assert_paths_agree(&t, &test_qi_space(), k, p, ts)?;
    }

    /// Single flat QI attribute; X and A become static key columns.
    #[test]
    fn kernel_matches_on_flat_space(
        rows in prop::collection::vec(arb_row(), 1..40),
        k in 1u32..5,
        p in 1u32..4,
        ts in 0usize..6,
    ) {
        let t = build_table(&rows);
        assert_paths_agree(&t, &flat_qi_space(), k, p, ts)?;
    }

    /// Degenerate thresholds: TS large enough to suppress everything, and
    /// k larger than the table.
    #[test]
    fn kernel_matches_under_total_suppression(
        rows in prop::collection::vec(arb_row(), 1..20),
        p in 1u32..4,
    ) {
        let t = build_table(&rows);
        let k = t.n_rows() as u32 + 1;
        let ts = t.n_rows();
        assert_paths_agree(&t, &test_qi_space(), k, p, ts)?;
    }
}

/// The empty table: both paths must agree node for node (vacuous pass or a
/// Condition 1 rejection, depending on stats).
#[test]
fn kernel_matches_on_empty_table() {
    let t = build_table(&[]);
    assert_paths_agree(&t, &test_qi_space(), 2, 1, 0).unwrap();
    assert_paths_agree(&t, &test_qi_space(), 2, 2, 3).unwrap();
}
