//! Equivalence of the code-mapped evaluation kernel and the materializing
//! pipeline, on randomized inputs.
//!
//! For random tables (with missing cells), hierarchies (categorical and
//! integer, plus a key attribute outside the QI space), nodes, and
//! (k, p, TS) settings, `EvalContext`/`NodeEvaluator::check` must agree with
//! `MaskingContext::evaluate` on every reported field: satisfied, stage,
//! n_groups, violating_tuples, and suppressed.

use proptest::prelude::*;
use psens::core::evaluator::EvalContext;
use psens::core::masking::MaskingContext;
use psens::core::NoopObserver;
use psens::prelude::*;
use psens_testkit::spaces::{flat_y_qi_space, wide_qi_space};
use psens_testkit::tables::{arb_wide_row, build_wide_table, WideRow};

/// The wide testkit schema: keys X (in QI space), A (in QI space), Y (key
/// *outside* the QI space — grouped at ground level by both paths),
/// confidential S and T, plus one identifier column. Y uses its full
/// three-value domain here.
fn arb_row() -> impl Strategy<Value = WideRow> {
    arb_wide_row(3)
}

fn build_table(rows: &[WideRow]) -> Table {
    build_wide_table(rows)
}

/// QI space over X (3 levels) and A (3 levels); Y is deliberately left out.
fn test_qi_space() -> QiSpace {
    wide_qi_space()
}

/// A flat one-attribute QI space used by the single-attribute variant.
fn flat_qi_space() -> QiSpace {
    flat_y_qi_space()
}

/// Asserts the two paths agree on every reported field for every node of
/// the whole lattice.
fn assert_paths_agree(
    table: &Table,
    qi: &QiSpace,
    k: u32,
    p: u32,
    ts: usize,
) -> Result<(), TestCaseError> {
    let ctx = MaskingContext {
        initial: table,
        qi,
        k,
        p,
        ts,
    };
    let stats = ctx.initial_stats();
    let ectx = EvalContext::build(&ctx).expect("context builds for valid bindings");
    let mut eval = ectx.evaluator();
    for node in qi.lattice().all_nodes() {
        let slow = ctx.evaluate(&node, &stats).expect("materializing path");
        let fast = eval.check(&node, &stats).expect("kernel path");
        let setting = format!("k={k} p={p} ts={ts} node={node}");
        prop_assert_eq!(fast.satisfied, slow.satisfied, "satisfied: {}", &setting);
        prop_assert_eq!(fast.stage, slow.stage, "stage: {}", &setting);
        prop_assert_eq!(fast.n_groups, slow.n_groups, "n_groups: {}", &setting);
        prop_assert_eq!(
            fast.violating_tuples,
            slow.violating_tuples,
            "violating_tuples: {}",
            &setting
        );
        prop_assert_eq!(fast.suppressed, slow.suppressed, "suppressed: {}", &setting);
        // The observed entry point with a no-op observer is the same check.
        let noop = eval
            .check_observed(&node, &stats, &NoopObserver)
            .expect("kernel path, observed");
        prop_assert_eq!(noop.satisfied, fast.satisfied, "observed: {}", &setting);
        prop_assert_eq!(noop.stage, fast.stage, "observed stage: {}", &setting);
        prop_assert_eq!(
            noop.suppressed,
            fast.suppressed,
            "observed suppressed: {}",
            &setting
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full configuration: cat + int QI hierarchies, a static key outside
    /// the QI space, missing cells, identifiers dropped.
    #[test]
    fn kernel_matches_materializing_path(
        rows in prop::collection::vec(arb_row(), 1..50),
        k in 1u32..6,
        p in 1u32..4,
        ts in 0usize..8,
    ) {
        let t = build_table(&rows);
        assert_paths_agree(&t, &test_qi_space(), k, p, ts)?;
    }

    /// Single flat QI attribute; X and A become static key columns.
    #[test]
    fn kernel_matches_on_flat_space(
        rows in prop::collection::vec(arb_row(), 1..40),
        k in 1u32..5,
        p in 1u32..4,
        ts in 0usize..6,
    ) {
        let t = build_table(&rows);
        assert_paths_agree(&t, &flat_qi_space(), k, p, ts)?;
    }

    /// Degenerate thresholds: TS large enough to suppress everything, and
    /// k larger than the table.
    #[test]
    fn kernel_matches_under_total_suppression(
        rows in prop::collection::vec(arb_row(), 1..20),
        p in 1u32..4,
    ) {
        let t = build_table(&rows);
        let k = t.n_rows() as u32 + 1;
        let ts = t.n_rows();
        assert_paths_agree(&t, &test_qi_space(), k, p, ts)?;
    }
}

/// The empty table: both paths must agree node for node (vacuous pass or a
/// Condition 1 rejection, depending on stats).
#[test]
fn kernel_matches_on_empty_table() {
    let t = build_table(&[]);
    assert_paths_agree(&t, &test_qi_space(), 2, 1, 0).unwrap();
    assert_paths_agree(&t, &test_qi_space(), 2, 2, 3).unwrap();
}
