//! Property-based tests (proptest) of the core invariants, on randomly
//! generated microdata.

use proptest::prelude::*;
use psens::core::conditions::ConfidentialStats;
use psens::core::theorems::{theorem1_holds, theorems_hold};
use psens::core::{
    check_improved, is_p_sensitive_k_anonymous, max_k, max_p_of_masked, CheckStage, Invalidation,
    NodeCheck, VerdictStore,
};
use psens::hierarchy::CatHierarchy;
use psens::microdata::csv;
use psens::prelude::*;

/// Schema used by the random tables: two categorical keys with the small
/// domains `x0..x3` / `y0..y2`, one categorical and one integer confidential
/// attribute.
fn test_schema() -> Schema {
    Schema::new(vec![
        Attribute::cat_key("X"),
        Attribute::cat_key("Y"),
        Attribute::cat_confidential("S"),
        Attribute::int_confidential("T"),
    ])
    .unwrap()
}

/// One random row: indices into the small domains.
fn arb_row() -> impl Strategy<Value = (u8, u8, u8, i64)> {
    (0u8..4, 0u8..3, 0u8..4, 0i64..3)
}

fn build_table(rows: &[(u8, u8, u8, i64)]) -> Table {
    let mut builder = TableBuilder::new(test_schema());
    for &(x, y, s, t) in rows {
        builder
            .push_row(vec![
                Value::Text(format!("x{x}")),
                Value::Text(format!("y{y}")),
                Value::Text(format!("s{s}")),
                Value::Int(t),
            ])
            .unwrap();
    }
    builder.finish()
}

/// Hierarchies over the small domains: pairs, then everything.
fn test_qi_space() -> QiSpace {
    let x = CatHierarchy::identity(["x0", "x1", "x2", "x3"])
        .unwrap()
        .push_level([("x0", "xa"), ("x1", "xa"), ("x2", "xb"), ("x3", "xb")])
        .unwrap()
        .push_top("*")
        .unwrap();
    let y = CatHierarchy::identity(["y0", "y1", "y2"])
        .unwrap()
        .push_top("*")
        .unwrap();
    QiSpace::new(vec![
        ("X".into(), psens::hierarchy::Hierarchy::Cat(x)),
        ("Y".into(), psens::hierarchy::Hierarchy::Cat(y)),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn group_sizes_partition_the_table(rows in prop::collection::vec(arb_row(), 1..60)) {
        let t = build_table(&rows);
        let gb = GroupBy::compute(&t, &[0, 1]);
        let total: u32 = gb.sizes().iter().sum();
        prop_assert_eq!(total as usize, t.n_rows());
        for &attr in &[2usize, 3] {
            let distinct = gb.distinct_per_group(t.column(attr));
            for (g, &d) in distinct.iter().enumerate() {
                prop_assert!(d >= 1, "nonempty group has at least one value");
                prop_assert!(d <= gb.sizes()[g], "distinct cannot exceed size");
            }
        }
    }

    #[test]
    fn frequency_sets_are_consistent(rows in prop::collection::vec(arb_row(), 1..60)) {
        let t = build_table(&rows);
        let fs = FrequencySet::of(&t, &[2]);
        let sum: usize = fs.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(sum, t.n_rows());
        let desc = fs.descending_counts();
        prop_assert!(desc.windows(2).all(|w| w[0] >= w[1]));
        let cum = fs.cumulative_descending();
        prop_assert_eq!(*cum.last().unwrap(), t.n_rows());
        prop_assert!(cum.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn suppression_always_reaches_k(
        rows in prop::collection::vec(arb_row(), 1..60),
        k in 1u32..6,
    ) {
        let t = build_table(&rows);
        let before = GroupBy::compute(&t, &[0, 1]);
        let expected_removed = before.rows_in_small_groups(k);
        let result = psens::core::suppress_to_k(&t, &[0, 1], k);
        prop_assert_eq!(result.removed, expected_removed);
        prop_assert!(is_k_anonymous(&result.table, &[0, 1], k));
        prop_assert_eq!(result.table.n_rows(), t.n_rows() - expected_removed);
    }

    #[test]
    fn max_p_never_exceeds_max_k(rows in prop::collection::vec(arb_row(), 1..60)) {
        let t = build_table(&rows);
        let p = max_p_of_masked(&t, &[0, 1], &[2, 3]);
        let k = max_k(&t, &[0, 1]);
        prop_assert!(p <= k, "p = {} must be <= k = {}", p, k);
    }

    #[test]
    fn theorems_hold_under_any_suppression(
        rows in prop::collection::vec(arb_row(), 1..40),
        mask in prop::collection::vec(any::<bool>(), 40),
    ) {
        let im = build_table(&rows);
        let mm = im.filter(|row| !mask[row]);
        let im_stats = ConfidentialStats::compute(&im, &[2, 3]);
        let mm_stats = ConfidentialStats::compute(&mm, &[2, 3]);
        prop_assert!(theorem1_holds(&im_stats, &mm_stats));
        prop_assert!(theorems_hold(&im_stats, &mm_stats));
    }

    #[test]
    fn improved_checker_equals_basic_algorithm(
        rows in prop::collection::vec(arb_row(), 1..50),
        p in 1u32..5,
        k in 1u32..5,
    ) {
        let t = build_table(&rows);
        let stats = ConfidentialStats::compute(&t, &[2, 3]);
        let basic = is_p_sensitive_k_anonymous(&t, &[0, 1], &[2, 3], p, k);
        let improved = check_improved(&t, &[0, 1], &[2, 3], p, k, &stats);
        prop_assert_eq!(basic, improved.satisfied);
    }

    #[test]
    fn generalization_is_monotone(
        rows in prop::collection::vec(arb_row(), 1..50),
        k in 1u32..5,
    ) {
        // If node X satisfies k-anonymity (no suppression), every dominating
        // node Y does too, and the violation count never increases upward.
        let t = build_table(&rows);
        let qi = test_qi_space();
        let lattice = qi.lattice();
        let nodes = lattice.all_nodes();
        let results: Vec<(Node, usize)> = nodes
            .iter()
            .map(|node| {
                let masked = qi.apply(&t, node).unwrap();
                let keys = masked.schema().key_indices();
                let report = psens::core::check_k_anonymity(&masked, &keys, k);
                (node.clone(), report.violating_tuples)
            })
            .collect();
        for (x, vx) in &results {
            for (y, vy) in &results {
                if y.dominates(x) {
                    prop_assert!(
                        vy <= vx,
                        "violations must not increase upward: {} has {}, {} has {}",
                        x, vx, y, vy
                    );
                }
            }
        }
    }

    #[test]
    fn csv_roundtrip_is_lossless(
        rows in prop::collection::vec(
            (
                prop::option::of("[a-zA-Z0-9 ,\"\n\\-|]{0,12}"),
                prop::option::of(-1000i64..1000),
            ),
            0..30,
        )
    ) {
        let schema = Schema::new(vec![
            Attribute::cat_key("Text"),
            Attribute::int_confidential("Number"),
        ]).unwrap();
        let mut builder = TableBuilder::new(schema.clone());
        for (text, number) in &rows {
            // The reader trims fields and treats empty / "?" as missing, so
            // normalize the expectation the same way.
            let text_value = match text {
                Some(s) if !s.trim().is_empty() && s.trim() != "?" => {
                    Value::Text(s.trim().to_owned())
                }
                _ => Value::Missing,
            };
            builder.push_row(vec![text_value, Value::from(*number)]).unwrap();
        }
        let table = builder.finish();
        let written = csv::to_csv_string(&table, true);
        let back = csv::read_table_str(&written, schema, true).unwrap();
        prop_assert_eq!(back, table);
    }

    #[test]
    fn lattice_enumeration_is_sound(dims in prop::collection::vec(0u8..4, 1..5)) {
        let lattice = Lattice::new(dims.clone());
        let all = lattice.all_nodes();
        let expected: usize = dims.iter().map(|&d| d as usize + 1).product();
        prop_assert_eq!(all.len(), expected);
        let unique: std::collections::HashSet<_> = all.iter().cloned().collect();
        prop_assert_eq!(unique.len(), expected);
        for node in &all {
            prop_assert!(lattice.contains(node));
            prop_assert!(lattice.top().dominates(node));
            prop_assert!(node.dominates(&lattice.bottom()));
        }
        // Strata partition the lattice by height.
        let by_height: usize = (0..=lattice.height())
            .map(|h| lattice.nodes_at_height(h).len())
            .sum();
        prop_assert_eq!(by_height, expected);
    }

    #[test]
    fn minimal_elements_are_an_antichain(
        dims in prop::collection::vec(1u8..4, 2..4),
        picks in prop::collection::vec(any::<u8>(), 1..20),
    ) {
        let lattice = Lattice::new(dims);
        let all = lattice.all_nodes();
        let subset: Vec<Node> = picks
            .iter()
            .map(|&i| all[i as usize % all.len()].clone())
            .collect();
        let minimal = lattice.minimal_elements(&subset);
        prop_assert!(!minimal.is_empty());
        for a in &minimal {
            prop_assert!(subset.contains(a));
            for b in &minimal {
                prop_assert!(!a.strictly_dominates(b), "{} dominates {}", a, b);
            }
        }
        // Every subset member is dominated by... dominates some minimal one.
        for node in &subset {
            prop_assert!(
                minimal.iter().any(|m| node.dominates(m)),
                "{} must dominate a minimal element",
                node
            );
        }
    }

    #[test]
    fn mondrian_outputs_are_valid_partitions(
        rows in prop::collection::vec(arb_row(), 1..80),
        k in 1u32..5,
        p in 1u32..3,
    ) {
        let t = build_table(&rows);
        let outcome = mondrian_anonymize(&t, MondrianConfig { k, p }).unwrap();
        // Disjoint cover.
        let mut seen = vec![false; t.n_rows()];
        for partition in &outcome.partitions {
            for &row in partition {
                prop_assert!(!seen[row]);
                seen[row] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // If any split happened, every partition satisfies the constraint.
        if outcome.partitions.len() > 1 {
            for partition in &outcome.partitions {
                prop_assert!(partition.len() as u32 >= k);
            }
            let keys = outcome.masked.schema().key_indices();
            let conf = outcome.masked.schema().confidential_indices();
            prop_assert!(is_p_sensitive_k_anonymous(&outcome.masked, &keys, &conf, p, k));
        }
    }

    #[test]
    fn verdict_store_approx_bytes_never_drifts(
        ops in prop::collection::vec(
            (0u8..3, 0u8..3, 0u8..7, 0usize..8, 1usize..6, 1u32..5, any::<bool>()),
            1..40,
        ),
        stat_rows in prop::collection::vec(arb_row(), 1..20),
        ts in 0usize..4,
        monotone in any::<bool>(),
    ) {
        // `approx_bytes` backs the server's memory-pressure accounting, so
        // it must be a pure function of the store's *contents*: after any
        // sequence of records (with closure) and invalidations, a store
        // rebuilt raw from the snapshot must report the identical footprint
        // — any drift means the estimate depends on operation history and
        // the eviction budget silently rots.
        let lattice = Lattice::new(vec![2, 2]);
        let stats = ConfidentialStats::compute(&build_table(&stat_rows), &[2, 3]);
        let store = VerdictStore::for_model(&lattice, ts, monotone);
        for &(xl, yl, kind, vt, g, p, pass) in &ops {
            match kind {
                0..=3 => {
                    let (stage, n_groups) = match kind {
                        0 => (CheckStage::Condition1, None),
                        1 => (CheckStage::Condition2, Some(g)),
                        2 => (CheckStage::KAnonymity, Some(g)),
                        _ => (CheckStage::Passed, Some(g)),
                    };
                    store.record(&NodeCheck {
                        node: Node(vec![xl, yl]),
                        violating_tuples: vt,
                        suppressed: vt.min(ts),
                        satisfied: pass && matches!(stage, CheckStage::Passed),
                        stage,
                        n_groups,
                        detail: None,
                    });
                }
                4 => {
                    store.invalidate(Invalidation::KeepAll);
                }
                5 => {
                    store.invalidate(Invalidation::DropAll);
                }
                _ => {
                    store.invalidate(Invalidation::Conditions { stats: &stats, p });
                }
            }
            let rebuilt = VerdictStore::for_model(&lattice, ts, monotone);
            for (node, verdict) in store.snapshot_entries() {
                rebuilt.insert_raw(node, verdict);
            }
            prop_assert_eq!(store.len(), rebuilt.len(), "entry count drifted");
            prop_assert_eq!(
                store.approx_bytes(),
                rebuilt.approx_bytes(),
                "approx_bytes drifted from a rebuilt store"
            );
        }
    }

    #[test]
    fn apply_preserves_confidential_and_row_count(
        rows in prop::collection::vec(arb_row(), 1..50),
        xl in 0u8..3,
        yl in 0u8..2,
    ) {
        let t = build_table(&rows);
        let qi = test_qi_space();
        let masked = qi.apply(&t, &Node(vec![xl, yl])).unwrap();
        prop_assert_eq!(masked.n_rows(), t.n_rows());
        // Confidential columns are untouched by generalization.
        prop_assert_eq!(masked.column(2), t.column(2));
        prop_assert_eq!(masked.column(3), t.column(3));
    }
}
