//! Differential-oracle equivalence of the tuned searches against their
//! serial, uncached counterparts.
//!
//! For proptest-generated tables and (p, k, TS) configurations, every
//! combination of `threads ∈ {1, 2, 8}` and cache on/off must reproduce the
//! historical results node-for-node:
//!
//! - Samarati's binary search returns the same winning node and the same
//!   proven height bound;
//! - the level-wise search returns the same minimal set in the same order,
//!   with the same completed height;
//! - the exhaustive scans (serial and parallel) return identical per-node
//!   annotations — the strongest form of "cached verdicts equal uncached
//!   verdicts", since every `(node, violating_tuples)` pair is compared;
//! - Incognito returns the same minimal set.
//!
//! One [`VerdictStore`] is shared across all strategies and thread counts
//! within a configuration: replayed and inferred verdicts must never change
//! any result, only skip work.

use proptest::prelude::*;
use psens::algorithms::{
    exhaustive_scan_budgeted, exhaustive_scan_tuned, incognito_minimal_budgeted,
    incognito_minimal_tuned, levelwise_minimal_budgeted, levelwise_minimal_tuned,
    parallel_exhaustive_scan_tuned, pk_minimal_generalization_budgeted,
    pk_minimal_generalization_tuned, Pruning, SearchStats, Tuning,
};
use psens::core::{NoopObserver, SearchBudget, VerdictStore};
use psens::hierarchy::QiSpace;
use psens::prelude::*;
use psens_testkit::spaces::search_qi_space;
use psens_testkit::tables::{arb_wide_row, build_wide_table, WideRow};

/// The wide testkit schema: keys X and A (both in the QI space) plus flat
/// categorical Y, confidential S and T. Y's domain is restricted to the two
/// leaves of the flat Y hierarchy below.
fn arb_row() -> impl Strategy<Value = WideRow> {
    arb_wide_row(2)
}

fn build_table(rows: &[WideRow]) -> Table {
    build_wide_table(rows)
}

/// QI space over X (3 levels), A (2 levels), and flat Y (2 levels): a
/// 12-node lattice of height 4 — small enough for exhaustive oracles, big
/// enough that 8-thread chunking splits real strata.
fn test_qi_space() -> QiSpace {
    search_qi_space()
}

/// The stage partition must survive every tuning: cache hits and inferred
/// verdicts stay outside it.
fn assert_partition_holds(stats: &SearchStats, setting: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        stats.total_rejections() + stats.nodes_passed,
        stats.nodes_evaluated,
        "stage partition: {}",
        setting
    );
    Ok(())
}

/// Runs every tuned search under every `(threads, cache)` combination and
/// compares each against its serial, uncached oracle.
fn assert_tuned_searches_match_serial(
    table: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
) -> Result<(), TestCaseError> {
    let unlimited = SearchBudget::unlimited();
    let noop = NoopObserver;
    let pruning = Pruning::NecessaryConditions;

    let sam0 = pk_minimal_generalization_budgeted(table, qi, p, k, ts, pruning, &unlimited, &noop)
        .unwrap();
    let lw0 = levelwise_minimal_budgeted(table, qi, p, k, ts, &unlimited, &noop).unwrap();
    let ex0 = exhaustive_scan_budgeted(table, qi, p, k, ts, &unlimited, &noop).unwrap();
    let mut inc0 = incognito_minimal_budgeted(table, qi, p, k, ts, &unlimited, &noop)
        .unwrap()
        .minimal;
    inc0.sort();

    let lattice = qi.lattice();
    let store = VerdictStore::new(&lattice, ts);
    for cache in [None, Some(&store)] {
        for threads in [1usize, 2, 8] {
            let tuning = Tuning {
                threads,
                cache,
                chunk_rows: 0,
            };
            let setting = format!(
                "p={p} k={k} ts={ts} threads={threads} cache={}",
                cache.is_some()
            );

            let sam = pk_minimal_generalization_tuned(
                table, qi, p, k, ts, pruning, &unlimited, tuning, &noop,
            )
            .unwrap();
            prop_assert_eq!(&sam.node, &sam0.node, "samarati node: {}", &setting);
            prop_assert_eq!(
                sam.proven_min_height,
                sam0.proven_min_height,
                "samarati height bound: {}",
                &setting
            );
            prop_assert_eq!(sam.suppressed, sam0.suppressed, "suppressed: {}", &setting);
            assert_partition_holds(&sam.stats, &setting)?;

            let lw =
                levelwise_minimal_tuned(table, qi, p, k, ts, &unlimited, tuning, &noop).unwrap();
            prop_assert_eq!(&lw.minimal, &lw0.minimal, "levelwise minimal: {}", &setting);
            prop_assert_eq!(
                lw.completed_height,
                lw0.completed_height,
                "levelwise completed height: {}",
                &setting
            );
            assert_partition_holds(&lw.stats, &setting)?;

            let ex = exhaustive_scan_tuned(table, qi, p, k, ts, &unlimited, tuning, &noop).unwrap();
            prop_assert_eq!(
                &ex.annotations,
                &ex0.annotations,
                "exhaustive annotations: {}",
                &setting
            );
            prop_assert_eq!(
                &ex.minimal,
                &ex0.minimal,
                "exhaustive minimal: {}",
                &setting
            );
            assert_partition_holds(&ex.stats, &setting)?;

            let par =
                parallel_exhaustive_scan_tuned(table, qi, p, k, ts, &unlimited, tuning, &noop)
                    .unwrap();
            prop_assert_eq!(
                &par.annotations,
                &ex0.annotations,
                "parallel annotations: {}",
                &setting
            );
            prop_assert_eq!(
                &par.satisfying,
                &ex0.satisfying,
                "parallel satisfying: {}",
                &setting
            );
            assert_partition_holds(&par.stats, &setting)?;

            let mut inc = incognito_minimal_tuned(table, qi, p, k, ts, &unlimited, tuning, &noop)
                .unwrap()
                .minimal;
            inc.sort();
            prop_assert_eq!(&inc, &inc0, "incognito minimal: {}", &setting);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The main oracle: random tables, random thresholds, all strategies,
    /// all tunings, one shared store.
    #[test]
    fn tuned_searches_equal_serial_uncached_oracles(
        rows in prop::collection::vec(arb_row(), 1..40),
        k in 1u32..5,
        p in 1u32..4,
        ts in 0usize..6,
    ) {
        let t = build_table(&rows);
        assert_tuned_searches_match_serial(&t, &test_qi_space(), p, k, ts)?;
    }

    /// Degenerate thresholds: k beyond the table size (everything fails
    /// k-anonymity, exercising downward closure on every node) and TS large
    /// enough to suppress whole tables.
    #[test]
    fn tuned_searches_agree_under_extreme_thresholds(
        rows in prop::collection::vec(arb_row(), 1..16),
        p in 1u32..4,
    ) {
        let t = build_table(&rows);
        let k = t.n_rows() as u32 + 1;
        let ts = t.n_rows();
        assert_tuned_searches_match_serial(&t, &test_qi_space(), p, k, ts)?;
        assert_tuned_searches_match_serial(&t, &test_qi_space(), p, k, 0)?;
    }
}

/// A store fully warmed by one strategy answers a different strategy's whole
/// search: cross-strategy reuse is the cache's raison d'être on a
/// single-visit lattice search.
#[test]
fn a_levelwise_warmed_store_answers_the_whole_binary_search() {
    let im = psens::datasets::AdultGenerator::new(77).generate(250);
    let qi = psens::datasets::hierarchies::adult_qi_space();
    let (p, k, ts) = (2u32, 2u32, 15usize);
    let lattice = qi.lattice();
    let store = VerdictStore::new(&lattice, ts);
    let tuning = Tuning {
        threads: 1,
        cache: Some(&store),
        chunk_rows: 0,
    };
    let unlimited = SearchBudget::unlimited();

    // A completed level-wise run settles every lattice node: evaluated
    // nodes exactly, rolled-up nodes by upward closure from their children.
    let lw =
        levelwise_minimal_tuned(&im, &qi, p, k, ts, &unlimited, tuning, &NoopObserver).unwrap();
    assert!(lw.stats.nodes_evaluated > 0);

    // Samarati then completes without a single fresh kernel check, even
    // under a zero-node budget.
    let zero = SearchBudget::unlimited().with_max_nodes(0);
    let warm = pk_minimal_generalization_tuned(
        &im,
        &qi,
        p,
        k,
        ts,
        Pruning::NecessaryConditions,
        &zero,
        tuning,
        &NoopObserver,
    )
    .unwrap();
    assert_eq!(warm.termination, psens::core::Termination::Completed);
    assert_eq!(warm.stats.nodes_evaluated, 0);
    assert!(warm.stats.cache_hits + warm.stats.cache_inferred > 0);

    // And its answer matches the cold serial oracle.
    let cold = pk_minimal_generalization_budgeted(
        &im,
        &qi,
        p,
        k,
        ts,
        Pruning::NecessaryConditions,
        &unlimited,
        &NoopObserver,
    )
    .unwrap();
    assert_eq!(warm.node, cold.node);
    assert_eq!(warm.proven_min_height, cold.proven_min_height);
}
