//! The observer layer end to end: telemetry recorded by a
//! [`RecordingObserver`] must agree with each search's own `SearchStats`,
//! events must arrive in Algorithm 2 stage order, and observing a search
//! (with a recording or a no-op observer) must never change its outcome.

use psens::algorithms::{
    exhaustive_scan, exhaustive_scan_observed, levelwise_minimal, levelwise_minimal_observed,
    mondrian_anonymize, mondrian_anonymize_observed, parallel_exhaustive_scan_observed,
    pk_minimal_generalization, pk_minimal_generalization_observed, MondrianConfig, Pruning,
};
use psens::core::observe::stage_index;
use psens::core::{CheckStage, RecordingObserver};
use psens::datasets::hierarchies::figure2_qi_space;
use psens::datasets::paper::figure3_microdata;
use psens::datasets::AdultGenerator;

/// Per-stage telemetry must mirror the search's stage counters exactly: the
/// observer saw every node check settle in the stage the stats recorded.
#[test]
fn exhaustive_telemetry_mirrors_search_stats() {
    let im = figure3_microdata();
    let qi = figure2_qi_space();
    let obs = RecordingObserver::new();
    let outcome = exhaustive_scan_observed(&im, &qi, 2, 2, 0, &obs).unwrap();
    let t = obs.telemetry();

    assert_eq!(t.nodes_checked() as usize, outcome.stats.nodes_evaluated);
    let by_stage = |stage: CheckStage| t.stages[stage_index(stage)].nodes as usize;
    assert_eq!(
        by_stage(CheckStage::Condition1),
        outcome.stats.rejected_condition1
    );
    assert_eq!(
        by_stage(CheckStage::Condition2),
        outcome.stats.rejected_condition2
    );
    assert_eq!(by_stage(CheckStage::KAnonymity), outcome.stats.rejected_k);
    assert_eq!(
        by_stage(CheckStage::DetailedScan),
        outcome.stats.rejected_detailed
    );
    assert_eq!(by_stage(CheckStage::Passed), outcome.stats.nodes_passed);
    // STAGES order is the Algorithm 2 check order, so the rendered stage
    // entries come out condition1 .. passed.
    assert_eq!(t.stages[0].stage, CheckStage::Condition1);
    assert_eq!(t.stages[4].stage, CheckStage::Passed);
    // Per-height counts cover the same node checks.
    let height_nodes: u64 = t.heights.iter().map(|h| h.nodes).sum();
    assert_eq!(height_nodes, t.nodes_checked());
}

/// Samarati's binary search enters heights in probe order; the observer must
/// see the same sequence the stats record, and the winner materialization
/// must be counted.
#[test]
fn samarati_telemetry_follows_probe_order() {
    let im = figure3_microdata();
    let qi = figure2_qi_space();
    let obs = RecordingObserver::new();
    let outcome =
        pk_minimal_generalization_observed(&im, &qi, 2, 2, 0, Pruning::NecessaryConditions, &obs)
            .unwrap();
    assert!(outcome.node.is_some());
    let t = obs.telemetry();
    assert_eq!(t.heights_entered, outcome.stats.heights_probed);
    assert_eq!(t.nodes_checked() as usize, outcome.stats.nodes_evaluated);
    // The winning node's masked table is materialized exactly once.
    assert_eq!(t.tables_materialized, 1);
}

/// The level-wise sweep visits heights bottom-up; `height_entered` events
/// must arrive in ascending order.
#[test]
fn levelwise_heights_are_entered_bottom_up() {
    let im = figure3_microdata();
    let qi = figure2_qi_space();
    let obs = RecordingObserver::new();
    let outcome = levelwise_minimal_observed(&im, &qi, 2, 2, 0, &obs).unwrap();
    let t = obs.telemetry();
    assert!(!t.heights_entered.is_empty());
    assert!(t.heights_entered.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(t.heights_entered, outcome.stats.heights_probed);
    assert_eq!(t.nodes_checked() as usize, outcome.stats.nodes_evaluated);
}

/// One recording observer shared by all workers of a parallel scan sees
/// every node check exactly once.
#[test]
fn parallel_scan_shares_one_observer_across_workers() {
    let im = AdultGenerator::new(3).generate(400);
    let qi = psens::datasets::hierarchies::adult_qi_space();
    let obs = RecordingObserver::new();
    let outcome = parallel_exhaustive_scan_observed(&im, &qi, 2, 3, 20, 4, &obs).unwrap();
    let t = obs.telemetry();
    assert_eq!(t.nodes_checked() as usize, outcome.stats.nodes_evaluated);
    assert_eq!(outcome.stats.nodes_evaluated, outcome.stats.lattice_nodes);
}

/// Mondrian reports one `partition_finalized` event per output partition,
/// covering every row.
#[test]
fn mondrian_partitions_are_all_reported() {
    let im = AdultGenerator::new(4).generate(300);
    let obs = RecordingObserver::new();
    let outcome = mondrian_anonymize_observed(&im, MondrianConfig { k: 5, p: 2 }, &obs).unwrap();
    let t = obs.telemetry();
    assert_eq!(t.partitions_finalized as usize, outcome.partitions.len());
    assert_eq!(t.partition_rows as usize, im.n_rows());
}

/// Observing a search — with a no-op or a recording observer — must not
/// change what it finds: same minimal nodes, same counters, same masking.
#[test]
fn observers_change_no_search_outcome() {
    let im = figure3_microdata();
    let qi = figure2_qi_space();

    let plain = exhaustive_scan(&im, &qi, 2, 2, 0).unwrap();
    let observed = exhaustive_scan_observed(&im, &qi, 2, 2, 0, &RecordingObserver::new()).unwrap();
    assert_eq!(plain.minimal, observed.minimal);
    assert_eq!(plain.satisfying, observed.satisfying);
    assert_eq!(plain.annotations, observed.annotations);
    assert_eq!(plain.stats, observed.stats);

    let plain = pk_minimal_generalization(&im, &qi, 2, 2, 0, Pruning::NecessaryConditions).unwrap();
    let observed = pk_minimal_generalization_observed(
        &im,
        &qi,
        2,
        2,
        0,
        Pruning::NecessaryConditions,
        &RecordingObserver::new(),
    )
    .unwrap();
    assert_eq!(plain.node, observed.node);
    assert_eq!(plain.suppressed, observed.suppressed);
    assert_eq!(plain.stats, observed.stats);

    let plain = levelwise_minimal(&im, &qi, 2, 2, 0).unwrap();
    let observed =
        levelwise_minimal_observed(&im, &qi, 2, 2, 0, &RecordingObserver::new()).unwrap();
    assert_eq!(plain.minimal, observed.minimal);
    assert_eq!(plain.stats, observed.stats);

    let plain = mondrian_anonymize(&im, MondrianConfig { k: 2, p: 1 }).unwrap();
    let observed = mondrian_anonymize_observed(
        &im,
        MondrianConfig { k: 2, p: 1 },
        &RecordingObserver::new(),
    )
    .unwrap();
    assert_eq!(plain.partitions, observed.partitions);
    assert_eq!(plain.splits, observed.splits);
    assert_eq!(plain.masked, observed.masked);
}
