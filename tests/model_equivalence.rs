//! Cross-model differential suite: the reductions every pluggable model
//! must honor.
//!
//! - `psens-k` with p = 1 **is** plain k-anonymity. The trait-driven search
//!   must reproduce `k_minimal_generalization`'s winner byte for byte —
//!   same node, same suppression count, same proven height bound, same
//!   released table — on the Adult space and the wide 8-QI Adult space,
//!   for proptest-chosen (seed, k, TS).
//! - `distinct-l` with l = 1 demands one distinct value per group, which
//!   every non-empty group has: it reduces to the same k-grouping truth.
//! - Node for node, the three reduced models return identical
//!   [`NodeCheck`] records (stage classification included) across whole
//!   lattices, not just at winners.

use proptest::prelude::*;
use psens::algorithms::{pk_minimal_generalization_model, Pruning, Tuning};
use psens::core::{EvalContext, ModelSpec, NodeCheck, NoopObserver, SearchBudget};
use psens::datasets::hierarchies::{adult_qi_space, adult_wide_qi_space};
use psens::datasets::AdultGenerator;
use psens::hierarchy::QiSpace;
use psens::prelude::*;

/// The serial, trait-driven search for `spec` with everything else fixed.
fn search_model(
    table: &Table,
    qi: &QiSpace,
    spec: ModelSpec,
    k: u32,
    ts: usize,
) -> psens::algorithms::SearchOutcome {
    pk_minimal_generalization_model(
        table,
        qi,
        spec,
        k,
        ts,
        Pruning::NecessaryConditions,
        &SearchBudget::unlimited(),
        Tuning {
            threads: 1,
            cache: None,
            chunk_rows: 0,
        },
        &NoopObserver,
    )
    .unwrap()
}

/// Asserts the p = 1 / l = 1 reductions against the plain k-anonymity
/// search on one (table, space, k, ts) configuration.
fn assert_reductions_match_k_anonymity(
    table: &Table,
    qi: &QiSpace,
    k: u32,
    ts: usize,
) -> Result<(), TestCaseError> {
    let k_only = k_minimal_generalization(table, qi, k, ts).unwrap();
    for spec in [
        ModelSpec::PSensitiveK { p: 1 },
        ModelSpec::DistinctL { l: 1 },
    ] {
        let run = search_model(table, qi, spec, k, ts);
        let setting = format!("{} k={k} ts={ts}", spec.describe());
        prop_assert_eq!(&run.node, &k_only.node, "winner node: {}", &setting);
        prop_assert_eq!(
            run.suppressed,
            k_only.suppressed,
            "suppressed: {}",
            &setting
        );
        prop_assert_eq!(
            run.proven_min_height,
            k_only.proven_min_height,
            "proven height bound: {}",
            &setting
        );
        prop_assert_eq!(
            &run.masked,
            &k_only.masked,
            "released table bytes: {}",
            &setting
        );
    }
    Ok(())
}

/// Per-node verdicts for `spec` across every lattice node, via the same
/// evaluator the searches use.
fn all_node_checks(
    table: &Table,
    qi: &QiSpace,
    spec: ModelSpec,
    k: u32,
    ts: usize,
) -> Vec<NodeCheck> {
    let ctx = MaskingContext {
        initial: table,
        qi,
        k,
        p: spec.conditions_p(),
        ts,
    };
    let ectx = EvalContext::build(&ctx).unwrap().with_model(spec);
    let stats = ConfidentialStats::compute(table, &table.schema().confidential_indices());
    let mut evaluator = ectx.evaluator();
    qi.lattice()
        .all_nodes()
        .into_iter()
        .map(|node| evaluator.check(&node, &stats).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// p = 1 (and l = 1) winners equal the plain k-anonymity search on the
    /// 4-QI Adult space.
    #[test]
    fn p1_reduction_holds_on_adult(
        seed in 0u64..1000,
        k in 1u32..5,
        ts in 0usize..12,
    ) {
        let table = AdultGenerator::new(seed).generate(120);
        assert_reductions_match_k_anonymity(&table, &adult_qi_space(), k, ts)?;
    }

    /// The same reduction on the wide 8-QI Adult space, whose much larger
    /// lattice exercises the binary search's height probing.
    #[test]
    fn p1_reduction_holds_on_wide_adult(
        seed in 0u64..1000,
        k in 1u32..4,
        ts in 0usize..8,
    ) {
        let table = AdultGenerator::new(seed).generate_wide(90);
        assert_reductions_match_k_anonymity(&table, &adult_wide_qi_space(), k, ts)?;
    }

    /// Every lattice node — not just winners — gets a byte-identical
    /// verdict record from psens-k p=1 and distinct-l l=1, including the
    /// Algorithm 2 stage that settled it.
    #[test]
    fn p1_reduction_holds_node_for_node(
        seed in 0u64..1000,
        k in 1u32..5,
        ts in 0usize..12,
    ) {
        let table = AdultGenerator::new(seed).generate(120);
        let qi = adult_qi_space();
        let psens = all_node_checks(&table, &qi, ModelSpec::PSensitiveK { p: 1 }, k, ts);
        let distinct = all_node_checks(&table, &qi, ModelSpec::DistinctL { l: 1 }, k, ts);
        prop_assert_eq!(psens, distinct, "k={} ts={}", k, ts);
    }
}

/// l = 1 against groups that exist: any 1-anonymous grouping is 1-diverse,
/// so the distinct-l l=1 verdict at the lattice bottom equals the raw
/// k-grouping truth computed independently.
#[test]
fn l1_bottom_verdict_equals_raw_k_grouping_truth() {
    for (seed, k) in [(3u64, 2u32), (9, 3), (21, 4)] {
        let table = AdultGenerator::new(seed).generate(150);
        let qi = adult_qi_space();
        let checks = all_node_checks(&table, &qi, ModelSpec::DistinctL { l: 1 }, k, 0);
        let bottom = checks
            .iter()
            .find(|c| c.node == qi.lattice().bottom())
            .expect("bottom node is in the lattice");
        let keys = table.schema().key_indices();
        assert_eq!(
            bottom.satisfied,
            is_k_anonymous(&table, &keys, k),
            "seed {seed} k {k}"
        );
    }
}
