//! Cross-validation: every search algorithm must agree with the exhaustive
//! ground truth, and every produced masking must pass an independent check.

use psens::datasets::hierarchies::{adult_qi_space, figure2_qi_space};
use psens::datasets::paper::figure3_microdata;
use psens::datasets::AdultGenerator;
use psens::prelude::*;

#[test]
fn samarati_height_matches_exhaustive_minimal_height() {
    let im = figure3_microdata();
    let qi = figure2_qi_space();
    for p in 1..=3u32 {
        for k in [2u32, 3] {
            for ts in [0usize, 2, 5, 10] {
                let exhaustive = exhaustive_scan(&im, &qi, p, k, ts).unwrap();
                let samarati =
                    pk_minimal_generalization(&im, &qi, p, k, ts, Pruning::NecessaryConditions)
                        .unwrap();
                match (exhaustive.minimal.first(), &samarati.node) {
                    (Some(truth), Some(found)) => {
                        assert_eq!(
                            truth.height(),
                            found.height(),
                            "p={p} k={k} ts={ts}: heights must agree"
                        );
                        assert!(
                            exhaustive.minimal.contains(found),
                            "p={p} k={k} ts={ts}: {found} must be one of the minimal nodes"
                        );
                    }
                    (None, None) => {}
                    (truth, found) => {
                        panic!("p={p} k={k} ts={ts}: exhaustive={truth:?} samarati={found:?}")
                    }
                }
            }
        }
    }
}

#[test]
fn levelwise_equals_exhaustive_on_adult_sample() {
    let im = AdultGenerator::new(17).generate(250);
    let qi = adult_qi_space();
    for (p, k, ts) in [(1u32, 2u32, 0usize), (1, 3, 25), (2, 2, 25)] {
        let mut a = exhaustive_scan(&im, &qi, p, k, ts).unwrap().minimal;
        let mut b = levelwise_minimal(&im, &qi, p, k, ts).unwrap().minimal;
        a.sort();
        b.sort();
        assert_eq!(a, b, "p={p} k={k} ts={ts}");
    }
}

#[test]
fn every_algorithm_output_passes_independent_check() {
    let im = AdultGenerator::new(23).generate(400);
    let qi = adult_qi_space();
    let (p, k, ts) = (2u32, 3u32, 20usize);

    let samarati = pk_minimal_generalization(&im, &qi, p, k, ts, Pruning::None).unwrap();
    let masked = samarati.masked.expect("achievable");
    let keys = masked.schema().key_indices();
    let conf = masked.schema().confidential_indices();
    assert!(is_p_sensitive_k_anonymous(&masked, &keys, &conf, p, k));

    let mondrian = mondrian_anonymize(&im, MondrianConfig { k, p }).unwrap();
    let keys = mondrian.masked.schema().key_indices();
    let conf = mondrian.masked.schema().confidential_indices();
    assert!(is_p_sensitive_k_anonymous(
        &mondrian.masked,
        &keys,
        &conf,
        p,
        k
    ));
}

#[test]
fn mondrian_dominates_full_domain_on_group_count() {
    // Local recoding refines full-domain recoding: at equal constraints it
    // should keep at least as many QI-groups (more detail), and suppress
    // nothing.
    let im = AdultGenerator::new(29).generate(600);
    let qi = adult_qi_space();
    let (p, k) = (1u32, 5u32);
    let full = pk_minimal_generalization(&im, &qi, p, k, 0, Pruning::None).unwrap();
    let masked = full.masked.expect("achievable");
    let fd_groups = GroupBy::compute(&masked, &masked.schema().key_indices()).n_groups();

    let mondrian = mondrian_anonymize(&im, MondrianConfig { k, p }).unwrap();
    assert_eq!(mondrian.masked.n_rows(), im.n_rows(), "no suppression");
    assert!(
        mondrian.partitions.len() >= fd_groups,
        "mondrian {} partitions vs full-domain {fd_groups} groups",
        mondrian.partitions.len()
    );
}

#[test]
fn pruning_never_changes_search_answers() {
    let im = AdultGenerator::new(31).generate(300);
    let qi = adult_qi_space();
    for p in 1..=3u32 {
        for k in [2u32, 4] {
            for ts in [0usize, 15] {
                let a = pk_minimal_generalization(&im, &qi, p, k, ts, Pruning::None).unwrap();
                let b = pk_minimal_generalization(&im, &qi, p, k, ts, Pruning::NecessaryConditions)
                    .unwrap();
                assert_eq!(
                    a.node.as_ref().map(Node::height),
                    b.node.as_ref().map(Node::height),
                    "p={p} k={k} ts={ts}"
                );
                assert_eq!(a.node.is_some(), b.node.is_some());
            }
        }
    }
}

#[test]
fn deeper_suppression_budgets_never_raise_the_minimal_height() {
    let im = AdultGenerator::new(37).generate(300);
    let qi = adult_qi_space();
    let mut last_height = usize::MAX;
    for ts in [0usize, 10, 30, 100] {
        let outcome = k_minimal_generalization(&im, &qi, 3, ts).unwrap();
        let height = outcome.node.expect("achievable").height();
        assert!(
            height <= last_height,
            "larger TS must allow equal-or-lower nodes (ts={ts})"
        );
        last_height = height;
    }
}
