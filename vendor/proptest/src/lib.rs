//! Offline stand-in for proptest: deterministic random sampling, no
//! shrinking. Supports the subset of the API this workspace uses, including
//! failure persistence: seeds of failing cases are appended to a sibling
//! `<test-file>.proptest-regressions` file and replayed before any novel
//! cases on later runs.

pub mod test_runner {
    use std::fmt;

    /// splitmix64-backed test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0xA076_1D64_78BD_642F,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }

    /// Why a test case failed.
    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(reason) => write!(f, "{reason}"),
            }
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. Unlike real proptest there is no shrinking: a
    /// strategy is just a sampling function.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// String strategies from a small regex subset: literals, `\x` escapes,
    /// `.`, `[a-z0-9]` classes, top-level `(a|b|c)` groups, and the
    /// quantifiers `{n}`, `{m,n}`, `*`, `+`, `?`.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let nodes = parse_seq(&self.chars().collect::<Vec<_>>());
            let mut out = String::new();
            gen_seq(&nodes, rng, &mut out);
            out
        }
    }

    enum Re {
        Lit(char),
        Dot,
        Class(Vec<char>),
        Alt(Vec<Vec<Quantified>>),
    }

    struct Quantified {
        node: Re,
        min: u32,
        max: u32,
    }

    fn parse_seq(chars: &[char]) -> Vec<Quantified> {
        let mut nodes = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let node = match chars[i] {
                '(' => {
                    let close = matching_paren(chars, i);
                    let mut alts = Vec::new();
                    let mut start = i + 1;
                    let mut depth = 0usize;
                    for (j, &c) in chars.iter().enumerate().take(close).skip(i + 1) {
                        match c {
                            '(' => depth += 1,
                            ')' => depth -= 1,
                            '|' if depth == 0 => {
                                alts.push(parse_seq(&chars[start..j]));
                                start = j + 1;
                            }
                            '\\' => {} // escape consumed by inner parse
                            _ => {}
                        }
                    }
                    alts.push(parse_seq(&chars[start..close]));
                    i = close + 1;
                    Re::Alt(alts)
                }
                '[' => {
                    let close = chars[i..].iter().position(|&c| c == ']').expect("]") + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if chars[j] == '\\' {
                            set.push(chars[j + 1]);
                            j += 2;
                        } else if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j], chars[j + 2]);
                            set.extend((lo..=hi).filter(|c| c.is_ascii()));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Re::Class(set)
                }
                '.' => {
                    i += 1;
                    Re::Dot
                }
                '\\' => {
                    i += 2;
                    Re::Lit(chars[i - 1])
                }
                c => {
                    i += 1;
                    Re::Lit(c)
                }
            };
            let (min, max) = parse_quantifier(chars, &mut i);
            nodes.push(Quantified { node, min, max });
        }
        nodes
    }

    fn matching_paren(chars: &[char], open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 1,
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        panic!("unbalanced parens in pattern");
    }

    fn parse_quantifier(chars: &[char], i: &mut usize) -> (u32, u32) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..].iter().position(|&c| c == '}').expect("}") + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (m.parse().expect("int"), n.parse().expect("int")),
                    None => {
                        let n: u32 = body.parse().expect("int");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn gen_seq(nodes: &[Quantified], rng: &mut TestRng, out: &mut String) {
        for q in nodes {
            let span = u64::from(q.max - q.min) + 1;
            let reps = q.min + rng.below(span) as u32;
            for _ in 0..reps {
                match &q.node {
                    Re::Lit(c) => out.push(*c),
                    Re::Dot => {
                        out.push(char::from(0x20 + rng.below(0x5F) as u8));
                    }
                    Re::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Re::Alt(alts) => {
                        let pick = rng.below(alts.len() as u64) as usize;
                        gen_seq(&alts[pick], rng, out);
                    }
                }
            }
        }
    }

    /// Types with a canonical strategy, for [`crate::arbitrary::any`].
    pub trait Arbitrary: Sized {
        fn generate(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn generate(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn generate(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index(rng.next_u64())
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub fn new() -> Any<T> {
            Any(std::marker::PhantomData)
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }
}

pub mod arbitrary {
    /// The canonical strategy for `T`.
    pub fn any<T: crate::strategy::Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any::new()
    }
}

pub mod sample {
    /// A deferred index: resolved against a concrete length at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Collection sizes: a fixed length or a range of lengths.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
        fn lower(&self) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
        fn lower(&self) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
        fn lower(&self) -> usize {
            self.start
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
        fn lower(&self) -> usize {
            *self.start()
        }
    }

    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S, L> {
        elem: S,
        len: L,
    }

    pub fn hash_set<S, L>(elem: S, len: L) -> HashSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
        L: SizeRange,
    {
        HashSetStrategy { elem, len }
    }

    impl<S, L> Strategy for HashSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
        L: SizeRange,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.len.pick(rng);
            let floor = self.len.lower();
            let mut set = std::collections::HashSet::new();
            // Inserting may collide; keep drawing until the minimum size is
            // met (bounded so degenerate element domains cannot hang).
            for _ in 0..target.max(floor) * 20 + 20 {
                if set.len() >= target {
                    break;
                }
                set.insert(self.elem.sample(rng));
            }
            assert!(
                set.len() >= floor,
                "hash_set strategy could not reach minimum size {floor}"
            );
            set
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod persistence {
    //! Failure-seed persistence, mirroring the real crate's
    //! `FileFailurePersistence::SourceParallel`: failing seeds live in a
    //! `.proptest-regressions` file next to the test source and are replayed
    //! before any novel cases.

    use std::path::{Path, PathBuf};

    /// Locates `source` — a `file!()` path, which is relative to the
    /// workspace root while tests may run from a member package's directory —
    /// and returns the path of its sibling `.proptest-regressions` file.
    /// `None` when the source file cannot be found from the current working
    /// directory; persistence is then silently disabled.
    pub fn resolve(source: &str, manifest_dir: &str) -> Option<PathBuf> {
        let manifest = Path::new(manifest_dir);
        let candidates = [
            PathBuf::from(source),
            manifest.join(source),
            manifest.join("..").join("..").join(source),
        ];
        candidates
            .into_iter()
            .find(|c| c.is_file())
            .map(|c| c.with_extension("proptest-regressions"))
    }

    /// Seeds recorded by earlier failing runs: `cc <16-hex-digit-seed>`
    /// lines. Entries that do not parse as exactly 16 hex digits (e.g.
    /// 256-bit hashes written by the real proptest crate) are skipped.
    pub fn load(path: &Path) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let token = line.strip_prefix("cc ")?.split_whitespace().next()?;
                if token.len() != 16 {
                    return None;
                }
                u64::from_str_radix(token, 16).ok()
            })
            .collect()
    }

    const HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
";

    /// Records `seed` for `test`, creating the file (with the standard
    /// header) on first use and deduplicating repeats. I/O failures are
    /// swallowed: a read-only checkout must not turn a test failure into a
    /// persistence panic.
    pub fn save(path: &Path, seed: u64, test: &str) {
        if load(path).contains(&seed) {
            return;
        }
        let mut text = std::fs::read_to_string(path).unwrap_or_default();
        if text.is_empty() {
            text.push_str(HEADER);
        }
        text.push_str(&format!("cc {seed:016x} # {test}\n"));
        let _ = std::fs::write(path, text);
    }
}

/// Namespace mirror of the real crate's `prop` module.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let regressions =
                    $crate::persistence::resolve(file!(), env!("CARGO_MANIFEST_DIR"));
                let saved: ::std::vec::Vec<u64> = regressions
                    .as_deref()
                    .map($crate::persistence::load)
                    .unwrap_or_default();
                let fresh = (0..u64::from(config.cases)).map(|case| {
                    case.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (line!() as u64) << 32
                });
                let replays = saved.into_iter().map(|seed| (true, seed));
                for (replayed, seed) in replays.chain(fresh.map(|seed| (false, seed))) {
                    let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                    $(let $parm =
                        $crate::strategy::Strategy::sample(&$strategy, &mut rng);)+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(err) = outcome {
                        if !replayed {
                            if let Some(path) = regressions.as_deref() {
                                $crate::persistence::save(path, seed, stringify!($name));
                            }
                        }
                        let kind = if replayed { "persisted" } else { "novel" };
                        panic!("proptest case failed ({kind} seed {seed:#018x}): {err}");
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($parm in $strategy),+) $body)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} == {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {:?} != {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}
