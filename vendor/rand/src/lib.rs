//! Offline stand-in for rand 0.8: a splitmix64-backed StdRng with the small
//! API surface the workspace uses (seed_from_u64, gen, gen_range).

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    /// splitmix64; statistically fine for synthetic workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state ^ 0xA076_1D64_78BD_642F,
            }
        }
    }
}

mod sealed {
    pub trait Standard {
        fn from_rng<R: crate::RngCore>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn from_rng<R: crate::RngCore>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Standard for u64 {
        fn from_rng<R: crate::RngCore>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Standard for bool {
        fn from_rng<R: crate::RngCore>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub trait UniformRange {
        type Output;
        fn pick<R: crate::RngCore>(self, rng: &mut R) -> Self::Output;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl UniformRange for std::ops::Range<$t> {
                type Output = $t;
                fn pick<R: crate::RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl UniformRange for std::ops::RangeInclusive<$t> {
                type Output = $t;
                fn pick<R: crate::RngCore>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl UniformRange for std::ops::Range<f64> {
        type Output = f64;
        fn pick<R: crate::RngCore>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }
}

pub trait Rng: RngCore {
    fn gen<T: sealed::Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T: sealed::UniformRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.pick(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}
