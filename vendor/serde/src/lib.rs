//! Offline stand-in for serde: traits only, no real (de)serialization.

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl Serialize for String {}
impl Serialize for str {}
impl Serialize for bool {}
impl Serialize for u8 {}
impl Serialize for u16 {}
impl Serialize for u32 {}
impl Serialize for u64 {}
impl Serialize for usize {}
impl Serialize for i8 {}
impl Serialize for i16 {}
impl Serialize for i32 {}
impl Serialize for i64 {}
impl Serialize for isize {}
impl Serialize for f32 {}
impl Serialize for f64 {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<'de> Deserialize<'de> for String {}
impl<'de> Deserialize<'de> for bool {}
impl<'de> Deserialize<'de> for u8 {}
impl<'de> Deserialize<'de> for u32 {}
impl<'de> Deserialize<'de> for u64 {}
impl<'de> Deserialize<'de> for usize {}
impl<'de> Deserialize<'de> for i64 {}
impl<'de> Deserialize<'de> for f64 {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
