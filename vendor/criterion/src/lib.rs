//! Offline placeholder so dependency resolution succeeds; benches are not
//! compiled in the hermetic build (crates/bench is not a default member).
