//! Offline stand-in for serde_json: serialization returns placeholders,
//! deserialization always errors. Tests that round-trip through JSON fail
//! under this stub by design.

use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Ok("null".to_owned())
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Ok("null".to_owned())
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error("deserialization unavailable offline".to_owned()))
}
