//! Offline stand-in for serde_derive: emits marker-trait impls only.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name: the identifier following `struct` or `enum`.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(ident) = tt {
            let s = ident.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("struct or enum");
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("struct or enum");
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl")
}
