//! # psens — p-Sensitive k-Anonymity in Rust
//!
//! A from-scratch reproduction of Truta & Vinay, *"Privacy Protection:
//! p-Sensitive k-Anonymity Property"* (ICDE 2006 Workshops), as a
//! production-quality library: an in-memory columnar microdata engine,
//! generalization hierarchies and lattices, the p-sensitive k-anonymity
//! property with its two necessary conditions, search algorithms
//! (Samarati binary search / Algorithm 3, Incognito-style level-wise,
//! exhaustive, Mondrian), utility/risk metrics, and the paper's datasets.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! names and offers a [`prelude`].
//!
//! ## Quickstart
//!
//! ```
//! use psens::prelude::*;
//!
//! // Initial microdata: Figure 3 of the paper.
//! let im = psens::datasets::paper::figure3_microdata();
//! // Hierarchies for Sex and ZipCode (Figure 1) spanning Figure 2's lattice.
//! let qi = psens::datasets::hierarchies::figure2_qi_space();
//!
//! // Find a 2-sensitive 2-anonymous masking with no suppression.
//! let outcome =
//!     pk_minimal_generalization(&im, &qi, 2, 2, 0, Pruning::NecessaryConditions).unwrap();
//! let masked = outcome.masked.expect("achievable");
//!
//! let keys = masked.schema().key_indices();
//! let conf = masked.schema().confidential_indices();
//! assert!(is_p_sensitive_k_anonymous(&masked, &keys, &conf, 2, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use psens_algorithms as algorithms;
pub use psens_core as core;
pub use psens_datasets as datasets;
pub use psens_hierarchy as hierarchy;
pub use psens_methods as methods;
pub use psens_metrics as metrics;
pub use psens_microdata as microdata;
pub use psens_sql as sql;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use psens_algorithms::{
        exhaustive_scan, k_minimal_generalization, levelwise_minimal, mondrian_anonymize,
        pk_minimal_generalization, MondrianConfig, Pruning,
    };
    pub use psens_core::{
        attribute_disclosure_count, check_improved, check_k_anonymity, check_p_sensitivity,
        check_p_sensitivity_chunked, is_k_anonymous, is_p_sensitive_k_anonymous, max_k,
        max_k_chunked, max_p_of_masked, max_p_of_masked_chunked, ConfidentialStats, MaskingContext,
        MaxGroups,
    };
    pub use psens_hierarchy::{builders, Hierarchy, Lattice, Node, QiSpace};
    pub use psens_metrics::{avg_class_size, discernibility, identity_risk, precision};
    pub use psens_microdata::{
        table_from_str_rows, Attribute, ChunkedTable, Column, DictionaryMerger, FrequencySet,
        GroupBy, Kind, Role, Schema, Table, TableBuilder, Value,
    };
}
